"""Seeded corpus cases for the differential harness.

A corpus case is one self-contained reconstruction problem: a site
graph, the ρ/δ thresholds, and a request stream — plus, once pinned, the
*expected* canonical output so the corpus doubles as a golden-file
regression suite.  Cases serialize to single JSON documents under
``tests/data/diffcheck/`` (one file per case, committed), so a
divergence fixed once can never silently return.

:func:`generate_corpus` builds the adversarial family the tentpole calls
for: ρ/δ-boundary timestamps (threshold-exactly and threshold-plus-
epsilon gaps), duplicate events, equal timestamps, single-page sessions
(including pages unknown to the topology), many interleaved users
spanning parallel chunk boundaries, cyclic topologies (2-cycles, rings
and a dense complete core, so pages repeat within one candidate), and a
simulator population — all seeded, so regenerating with the same seed
reproduces the committed corpus byte for byte.
"""

from __future__ import annotations

import dataclasses
import json
import random
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.config import SmartSRAConfig
from repro.exceptions import ConfigurationError
from repro.sessions.model import Request, SessionSet
from repro.simulator import SimulationConfig, simulate_population
from repro.topology.generators import random_site
from repro.topology.graph import WebGraph
from repro.topology.io import graph_from_jsonable, graph_to_jsonable

__all__ = [
    "CORPUS_SCHEMA",
    "CorpusCase",
    "case_from_jsonable",
    "case_to_jsonable",
    "generate_corpus",
    "load_corpus",
    "save_corpus",
]

#: bump when the on-disk case layout changes incompatibly.
CORPUS_SCHEMA = 1


@dataclass(frozen=True, slots=True)
class CorpusCase:
    """One reconstruction problem, optionally with pinned expectations.

    Attributes:
        name: unique identifier; doubles as the JSON filename stem.
        description: what the case stresses.
        seed: seed the engines receive (reorder shuffle, retry jitter).
        config: the ρ/δ thresholds for this case.
        topology: the site graph.
        requests: the stream, sorted by ``(timestamp, user, page)``.
        expected_form: pinned canonical output
            (:meth:`~repro.sessions.model.SessionSet.canonical_form` as a
            sorted item list), or ``None`` before pinning.
        expected_digest: pinned
            :meth:`~repro.sessions.model.SessionSet.canonical_digest`.
        expected_amp_digest: pinned canonical digest of the
            All-Maximal-Paths output (the ``amp-reference`` engine's) —
            a *second*, algorithm-independent golden over the same case,
            or ``None`` before pinning.  Optional in the JSON document,
            so pre-AMP corpus files still load.
    """

    name: str
    description: str
    seed: int
    config: SmartSRAConfig
    topology: WebGraph
    requests: tuple[Request, ...]
    expected_form: tuple[tuple[str, tuple[tuple[tuple[float, str, bool],
                                                ...], ...]], ...] | None = None
    expected_digest: str | None = None
    expected_amp_digest: str | None = None

    def with_expected(self, reference: SessionSet,
                      amp_reference: SessionSet | None = None
                      ) -> "CorpusCase":
        """Pin the reference output (normally the serial engine's).

        ``amp_reference`` additionally pins the All-Maximal-Paths golden
        (normally the ``amp-reference`` engine's output).
        """
        form = tuple(
            (user, tuple(bodies))
            for user, bodies in sorted(reference.canonical_form().items()))
        return dataclasses.replace(
            self, expected_form=form,
            expected_digest=reference.canonical_digest(),
            expected_amp_digest=(amp_reference.canonical_digest()
                                 if amp_reference is not None
                                 else self.expected_amp_digest))


def case_to_jsonable(case: CorpusCase) -> dict[str, Any]:
    """Encode a case as a plain JSON document."""
    document: dict[str, Any] = {
        "schema": CORPUS_SCHEMA,
        "name": case.name,
        "description": case.description,
        "seed": case.seed,
        "config": {
            "max_gap": case.config.max_gap,
            "max_duration": case.config.max_duration,
            "rescue_orphans": case.config.rescue_orphans,
        },
        "topology": graph_to_jsonable(case.topology),
        "requests": [[request.timestamp, request.user_id, request.page]
                     for request in case.requests],
    }
    if case.expected_digest is not None:
        document["expected"] = {
            "digest": case.expected_digest,
            "sessions": [[user, [list(map(list, body)) for body in bodies]]
                         for user, bodies in (case.expected_form or ())],
        }
    if case.expected_amp_digest is not None:
        document["expected_amp"] = {"digest": case.expected_amp_digest}
    return document


def case_from_jsonable(data: Mapping[str, Any]) -> CorpusCase:
    """Decode :func:`case_to_jsonable` output.

    Raises:
        ConfigurationError: for a schema the reader does not understand.
    """
    if data.get("schema") != CORPUS_SCHEMA:
        raise ConfigurationError(
            f"corpus case schema {data.get('schema')!r} does not match "
            f"this reader ({CORPUS_SCHEMA})")
    config = data.get("config", {})
    expected = data.get("expected")
    expected_amp = data.get("expected_amp")
    expected_form = None
    expected_digest = None
    if expected is not None:
        expected_digest = str(expected["digest"])
        expected_form = tuple(
            (str(user), tuple(tuple((float(t), str(page), bool(synthetic))
                                    for t, page, synthetic in body)
                              for body in bodies))
            for user, bodies in expected["sessions"])
    return CorpusCase(
        name=str(data["name"]),
        description=str(data.get("description", "")),
        seed=int(data.get("seed", 0)),
        config=SmartSRAConfig(
            max_duration=float(config.get("max_duration", 1800.0)),
            max_gap=float(config.get("max_gap", 600.0)),
            rescue_orphans=bool(config.get("rescue_orphans", False))),
        topology=graph_from_jsonable(data["topology"]),
        requests=tuple(sorted(
            Request(float(t), str(user), str(page))
            for t, user, page in data["requests"])),
        expected_form=expected_form,
        expected_digest=expected_digest,
        expected_amp_digest=(str(expected_amp["digest"])
                             if expected_amp is not None else None),
    )


def save_corpus(cases: Iterable[CorpusCase], directory: str | Path) -> list[str]:
    """Write one ``<name>.json`` per case; returns the paths written."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    paths = []
    for case in cases:
        path = target / f"{case.name}.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(case_to_jsonable(case), handle, indent=1,
                      sort_keys=True)
            handle.write("\n")
        paths.append(str(path))
    return paths


def load_corpus(directory: str | Path) -> list[CorpusCase]:
    """Load every ``*.json`` case in ``directory``, sorted by filename.

    Raises:
        ConfigurationError: for a missing/empty directory or a case file
            that does not parse — a corpus that silently loads as empty
            would make the harness vacuously green.
    """
    source = Path(directory)
    paths = sorted(source.glob("*.json"))
    if not paths:
        raise ConfigurationError(
            f"no corpus cases (*.json) found in {str(source)!r}")
    cases = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                cases.append(case_from_jsonable(json.load(handle)))
        except (OSError, json.JSONDecodeError, KeyError,
                TypeError, ValueError) as error:
            raise ConfigurationError(
                f"corpus case {str(path)!r} is unreadable: {error}") from error
    return cases


# -- generation --------------------------------------------------------------


def _sorted(requests: Iterable[Request]) -> tuple[Request, ...]:
    return tuple(sorted(requests))


def _chain_topology(length: int = 6) -> WebGraph:
    """A linear site A0 -> A1 -> ... plus one isolated page."""
    pages = [f"A{i}" for i in range(length)] + ["LONE"]
    edges = [(f"A{i}", f"A{i + 1}") for i in range(length - 1)]
    return WebGraph(edges, pages=pages, start_pages=["A0"])


def _boundary_case(config: SmartSRAConfig, seed: int) -> CorpusCase:
    """Gaps and spans landing exactly on, and just past, ρ and δ."""
    rho, delta = config.max_gap, config.max_duration
    eps = 1e-6
    requests = []
    # exactly-on-threshold gaps: one unbroken chain until δ is exceeded.
    t = 0.0
    for i in range(4):
        requests.append(Request(t, "u-gap-eq", f"A{i}"))
        t += rho
    # a gap of ρ+ε must split, however the engine buffers.
    requests += [Request(0.0, "u-gap-over", "A0"),
                 Request(rho + eps, "u-gap-over", "A1"),
                 Request(rho + eps + 1.0, "u-gap-over", "A2")]
    # span exactly δ stays whole; one ε more must split.
    requests += [Request(0.0, "u-span-eq", "A0"),
                 Request(delta / 2, "u-span-eq", "A1"),
                 Request(delta, "u-span-eq", "A2")]
    requests += [Request(0.0, "u-span-over", "A0"),
                 Request(delta / 2, "u-span-over", "A1"),
                 Request(delta + eps, "u-span-over", "A2")]
    return CorpusCase(
        name="boundary-rho-delta",
        description="gaps/spans exactly on and just past the inclusive "
                    "rho and delta thresholds",
        seed=seed, config=config, topology=_chain_topology(),
        requests=_sorted(requests))


def _tie_case(config: SmartSRAConfig, seed: int) -> CorpusCase:
    """Equal timestamps within and across users."""
    requests = []
    for user in ("tie-a", "tie-b"):
        requests += [Request(100.0, user, "A0"),
                     Request(100.0, user, "A1"),
                     Request(100.0, user, "A2"),
                     Request(160.0, user, "A3")]
    # a third user whose every hit collides with the others' clock.
    requests += [Request(100.0, "tie-c", "A0"),
                 Request(160.0, "tie-c", "A1")]
    return CorpusCase(
        name="equal-timestamps",
        description="zero-gap requests within a user and identical "
                    "clocks across users",
        seed=seed, config=config, topology=_chain_topology(),
        requests=_sorted(requests))


def _duplicate_case(config: SmartSRAConfig, seed: int) -> CorpusCase:
    """Literal duplicate events and same-instant different-page hits."""
    requests = [
        Request(10.0, "dup", "A0"),
        Request(10.0, "dup", "A0"),       # the double-logging artifact
        Request(20.0, "dup", "A1"),
        Request(20.0, "dup", "A2"),       # same instant, different page
        Request(700.0, "dup", "A0"),
        Request(700.0, "dup", "A0"),
    ]
    return CorpusCase(
        name="duplicate-events",
        description="exact duplicates and same-timestamp distinct pages "
                    "must flow through every engine identically",
        seed=seed, config=config, topology=_chain_topology(),
        requests=_sorted(requests))


def _single_page_case(config: SmartSRAConfig, seed: int) -> CorpusCase:
    """One-hit users: linked pages, a linkless page, an off-site page."""
    requests = [
        Request(5.0, "solo-1", "A0"),
        Request(6.0, "solo-2", "LONE"),
        Request(7.0, "solo-3", "OFFSITE"),   # not in the topology at all
        Request(8.0, "solo-4", "A3"),
    ]
    return CorpusCase(
        name="single-page-sessions",
        description="singleton sessions, including pages without links "
                    "and pages unknown to the site graph",
        seed=seed, config=config, topology=_chain_topology(),
        requests=_sorted(requests))


def _chunk_spanning_case(config: SmartSRAConfig, seed: int) -> CorpusCase:
    """Many interleaved users so parallel chunking splits between them."""
    topology = random_site(20, 4.0, seed=seed)
    pages = sorted(topology.pages)
    rng = random.Random(seed)
    requests = []
    for u in range(12):
        t = float(rng.randrange(0, 50))
        page = rng.choice(pages)
        for _ in range(rng.randint(2, 9)):
            requests.append(Request(t, f"w{u:02d}", page))
            successors = sorted(topology.successors(page))
            page = (rng.choice(successors) if successors
                    else rng.choice(pages))
            t += rng.choice([0.0, 30.0, 60.0, config.max_gap,
                             config.max_gap + 1.0])
    return CorpusCase(
        name="chunk-spanning-users",
        description="12 interleaved users so worker counts 2/3/auto cut "
                    "chunk boundaries between different user shards",
        seed=seed, config=config, topology=topology,
        requests=_sorted(requests))


def _cyclic_case(config: SmartSRAConfig, seed: int) -> CorpusCase:
    """Cyclic topologies: 2-cycles, a ring, and a dense complete core.

    Page graphs are cyclic in practice (nav bars link back to the home
    page) even though the *session DAGs* built over request ordinals are
    acyclic by construction.  A user ping-ponging a 2-cycle, or lapping a
    ring, repeats the same page inside one candidate — exactly where an
    id-keyed index (``by_last``, trie backfill, interned symbol reuse)
    can conflate two visits to one page.  The dense K4 core additionally
    branches every wave, and a duplicate event sits *on* the 2-cycle.
    """
    cycles = [f"C{i}" for i in range(5)]
    dense = [f"D{i}" for i in range(4)]
    edges = [("C0", "C1"), ("C1", "C0"),                 # 2-cycle
             ("C1", "C2"), ("C2", "C3"), ("C3", "C1"),   # 3-ring
             ("C3", "C4"), ("C4", "C0"),                 # closing arc
             ("C4", "D0")]
    edges += [(a, b) for a in dense for b in dense if a != b]  # K4 core
    topology = WebGraph(edges, pages=cycles + dense, start_pages=["C0"])
    requests = [
        # ping-pong the 2-cycle: the same two pages alternate within ρ.
        Request(0.0, "cyc-pong", "C0"), Request(30.0, "cyc-pong", "C1"),
        Request(60.0, "cyc-pong", "C0"), Request(90.0, "cyc-pong", "C1"),
        Request(120.0, "cyc-pong", "C0"),
        # two full laps of the 3-ring: every page repeats once.
        Request(0.0, "cyc-ring", "C1"), Request(20.0, "cyc-ring", "C2"),
        Request(40.0, "cyc-ring", "C3"), Request(60.0, "cyc-ring", "C1"),
        Request(80.0, "cyc-ring", "C2"), Request(100.0, "cyc-ring", "C3"),
        # dense complete core with a revisit and a same-instant tie.
        Request(0.0, "cyc-dense", "D0"), Request(15.0, "cyc-dense", "D1"),
        Request(15.0, "cyc-dense", "D2"), Request(30.0, "cyc-dense", "D3"),
        Request(45.0, "cyc-dense", "D0"), Request(60.0, "cyc-dense", "D2"),
        # a literal duplicate event sitting on the 2-cycle.
        Request(10.0, "cyc-dup", "C0"), Request(40.0, "cyc-dup", "C1"),
        Request(40.0, "cyc-dup", "C1"), Request(70.0, "cyc-dup", "C0"),
    ]
    return CorpusCase(
        name="cyclic-topologies",
        description="2-cycle ping-pong, ring laps and a dense complete "
                    "core: repeated pages within one candidate stress "
                    "id-keyed session indexes in every engine",
        seed=seed, config=config, topology=topology,
        requests=_sorted(requests))


def _simulated_case(config: SmartSRAConfig, seed: int) -> CorpusCase:
    """A small simulator population — realistic branching navigation."""
    topology = random_site(30, 4.0, seed=seed + 1)
    result = simulate_population(
        topology,
        SimulationConfig(n_agents=40, seed=seed + 2),
        horizon=7_200.0)
    return CorpusCase(
        name="simulated-population",
        description="40 simulated agents on a 30-page random site "
                    "(paper-style workload)",
        seed=seed, config=config, topology=topology,
        requests=_sorted(result.log_requests))


def generate_corpus(seed: int = 0,
                    config: SmartSRAConfig | None = None) -> list[CorpusCase]:
    """Build the full adversarial corpus (without pinned expectations).

    Deterministic in ``seed``: the committed golden corpus is exactly
    ``generate_corpus(seed=0)`` pinned against the serial engine.
    """
    cfg = config if config is not None else SmartSRAConfig()
    return [
        _boundary_case(cfg, seed),
        _tie_case(cfg, seed),
        _duplicate_case(cfg, seed),
        _single_page_case(cfg, seed),
        _chunk_spanning_case(cfg, seed),
        _cyclic_case(cfg, seed),
        _simulated_case(cfg, seed),
    ]
