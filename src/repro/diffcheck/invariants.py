"""The Smart-SRA output contract, checkable after the fact.

The paper defines a valid session by construction; Bayir & Toroslu's
follow-up (arXiv:1307.1927, *Link Based Session Reconstruction: Finding
All Maximal Paths*) states the same contract as postconditions on the
output.  :func:`verify_sessions` checks those postconditions — the five
rules below — against *any* session list, independent of which execution
path produced it, so every engine (serial, parallel, supervised,
resumed, streaming) is held to one definition of correct:

1. **ordering** — requests within a session are in non-decreasing
   timestamp order (PAPER.md §Smart-SRA, rule 1);
2. **topology** — every consecutive page pair is connected by a
   hyperlink of the site graph (rule 2);
3. **max-gap** — no inter-request gap exceeds the page-stay threshold
   ρ (rule 3; the threshold itself is *inclusive*: a gap of exactly ρ
   is legal);
4. **max-duration** — the session spans at most the duration threshold
   δ (rule 4; inclusive likewise);
5. **maximality** — sessions are maximal paths: no session is a proper
   prefix of another session of the same user (it could have been
   extended), and no request is synthetic — Smart-SRA never fabricates
   the backward movements heur3 inserts.

The maximality rule is **engine-aware** (``semantics=``): Smart-SRA's
Phase 2 extends every open session each wave, so a proper prefix of a
sibling proves the prefix was extendable.  All-Maximal-Paths output is
different — ``[P1, P3]`` is legal *alongside* ``[P1, P2, P3]`` when the
link ``P1 → P3`` exists (both are root-to-sink paths), and with equal
timestamps one path's body can even be a proper prefix of a sibling's.
What AMP does promise is that no emitted path is a proper **contiguous
infix** of another (its endpoints are in-degree-0 / out-degree-0 nodes),
so ``semantics="amp"`` checks containment instead of prefixes — strong
enough to catch a deliberately truncated session, weak enough to accept
overlapping maximal paths (both directions are mutation-tested).

The verifier deliberately consumes bare request sequences (anything
iterable yielding :class:`~repro.sessions.model.Request`), not just
:class:`~repro.sessions.model.Session` — a session list deserialized
from a checkpoint or produced by a buggy engine may violate even the
constraints ``Session.__init__`` would enforce.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.config import SmartSRAConfig
from repro.sessions.model import Request
from repro.topology.graph import WebGraph

__all__ = ["INVARIANT_RULES", "InvariantViolation", "verify_sessions"]

#: The five rule identifiers, in the order the paper states them.
INVARIANT_RULES = ("ordering", "topology", "max-gap", "max-duration",
                   "maximality")


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One broken rule in one session.

    Attributes:
        rule: which of :data:`INVARIANT_RULES` was violated.
        session_index: position of the offending session in the input.
        user_id: user owning the session (``""`` for an empty session).
        detail: human-readable specifics (timestamps, pages, thresholds).
    """

    rule: str
    session_index: int
    user_id: str
    detail: str

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for JSON reports."""
        return dataclasses.asdict(self)


def verify_sessions(sessions: Iterable[Sequence[Request]],
                    topology: WebGraph | None = None,
                    config: SmartSRAConfig | None = None, *,
                    semantics: str = "smart-sra",
                    ) -> tuple[InvariantViolation, ...]:
    """Check a session list against the paper's five output rules.

    Args:
        sessions: the reconstructed sessions, each an ordered request
            sequence (:class:`~repro.sessions.model.Session` qualifies).
        topology: the site graph for the hyperlink rule; ``None`` skips
            rule 2 (e.g. when checking bare Phase-1 candidates, which do
            not promise connectivity).
        config: the ρ/δ thresholds the run used (paper defaults when
            omitted).
        semantics: which maximality contract applies — ``"smart-sra"``
            (the default: a proper prefix of a same-user sibling is a
            violation) or ``"amp"`` (overlapping maximal paths are legal;
            a proper *contiguous infix* of a sibling with a strictly
            later/earlier neighbor at the boundary is a violation — the
            strict boundary is what proves the contained path's endpoint
            still had an edge available, while tie-timestamp boundaries
            stay legal because duplicate requests make them ambiguous).
            Rules 1-4 and the synthetic-request check are identical in
            both.

    Returns:
        Every violation found, in session order — empty for a compliant
        list.  One session may contribute several violations.

    Raises:
        ValueError: for an unknown ``semantics`` name.
    """
    if semantics not in ("smart-sra", "amp"):
        raise ValueError(
            f"unknown semantics {semantics!r}; use 'smart-sra' or 'amp'")
    cfg = config if config is not None else SmartSRAConfig()
    materialized = [tuple(session) for session in sessions]
    violations: list[InvariantViolation] = []

    # Per-user canonical bodies for the maximality (proper-prefix) rule.
    bodies_by_user: dict[str, list[tuple[tuple[float, str], ...]]] = {}
    for requests in materialized:
        if requests:
            bodies_by_user.setdefault(requests[0].user_id, []).append(
                tuple((r.timestamp, r.page) for r in requests))

    for index, requests in enumerate(materialized):
        user = requests[0].user_id if requests else ""

        for earlier, later in zip(requests, requests[1:]):
            if later.timestamp < earlier.timestamp:
                violations.append(InvariantViolation(
                    "ordering", index, user,
                    f"timestamp {later.timestamp} follows "
                    f"{earlier.timestamp}"))
            gap = later.timestamp - earlier.timestamp
            if gap > cfg.max_gap:
                violations.append(InvariantViolation(
                    "max-gap", index, user,
                    f"gap {gap}s between {earlier.page!r} and "
                    f"{later.page!r} exceeds rho={cfg.max_gap}s"))
            if topology is not None and not topology.has_link(
                    earlier.page, later.page):
                violations.append(InvariantViolation(
                    "topology", index, user,
                    f"no hyperlink {earlier.page!r} -> {later.page!r}"))

        if requests:
            span = requests[-1].timestamp - requests[0].timestamp
            if span > cfg.max_duration:
                violations.append(InvariantViolation(
                    "max-duration", index, user,
                    f"span {span}s exceeds delta={cfg.max_duration}s"))
            for request in requests:
                if request.synthetic:
                    violations.append(InvariantViolation(
                        "maximality", index, user,
                        f"synthetic request for {request.page!r} at "
                        f"t={request.timestamp} — Smart-SRA never inserts "
                        f"back-movements"))
                    break
            body = tuple((r.timestamp, r.page) for r in requests)
            if semantics == "smart-sra":
                for other in bodies_by_user.get(user, ()):
                    if (len(other) > len(body)
                            and other[:len(body)] == body):
                        violations.append(InvariantViolation(
                            "maximality", index, user,
                            f"session is a proper prefix of a longer "
                            f"session (next request would be "
                            f"{other[len(body)][1]!r} at "
                            f"t={other[len(body)][0]}) — it was extendable"))
                        break
            else:
                violation = _amp_containment(body, bodies_by_user.get(
                    user, ()))
                if violation is not None:
                    violations.append(InvariantViolation(
                        "maximality", index, user, violation))

    return tuple(violations)


def _amp_containment(body: tuple[tuple[float, str], ...],
                     siblings: Sequence[tuple[tuple[float, str], ...]]
                     ) -> str | None:
    """AMP maximality: is ``body`` provably contained in a sibling?

    A correct All-Maximal-Paths output never emits a path whose body
    occurs as a proper contiguous infix of a sibling's with a *strictly*
    earlier predecessor or strictly later successor at the boundary:
    the sibling's adjacent element then witnesses a hyperlink within ρ
    from/to the contained path's endpoint in the same candidate — so the
    endpoint was not a root/sink and the path could not have been
    enumerated.  Tie-timestamp boundaries are not flagged: with duplicate
    requests (same user, timestamp and page) a legal root can share its
    body with a mid-path node, making the occurrence ambiguous.

    Returns a violation detail string, or ``None`` when compliant.
    Quadratic in the user's session count — fine for corpus-sized cases,
    which is where the verifier runs.
    """
    length = len(body)
    if length == 0:
        return None
    for other in siblings:
        if len(other) <= length:
            continue
        for offset in range(len(other) - length + 1):
            if other[offset:offset + length] != body:
                continue
            left_strict = (offset > 0
                           and other[offset - 1][0] < body[0][0])
            right_strict = (offset + length < len(other)
                            and other[offset + length][0] > body[-1][0])
            if left_strict or right_strict:
                end = offset + length
                witness = (other[offset - 1] if left_strict
                           else other[end])
                return (f"session is a proper contiguous infix of a "
                        f"longer session with a strict boundary "
                        f"(neighboring request {witness[1]!r} at "
                        f"t={witness[0]} proves an endpoint was "
                        f"extendable)")
    return None
