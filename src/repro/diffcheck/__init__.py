"""repro.diffcheck — the differential correctness oracle.

Smart-SRA now runs through five structurally different execution paths
(serial batch, parallel fan-out, supervised execution under injected
faults, checkpoint/resume, streaming).  This package holds them to one
definition of correct:

* :mod:`repro.diffcheck.invariants` — verify any session list against
  the paper's five output rules (ordering, hyperlink topology, gap ≤ ρ,
  duration ≤ δ, maximality/no-synthetic), engine-independent;
* :mod:`repro.diffcheck.engines` — each execution path wrapped as a
  deterministic ``context -> SessionSet`` function;
* :mod:`repro.diffcheck.corpus` — seeded adversarial corpus cases
  (ρ/δ-boundary timestamps, duplicates, ties, single-page sessions,
  chunk-spanning users, simulator populations) with pinned golden
  expectations, serialized under ``tests/data/diffcheck/``;
* :mod:`repro.diffcheck.harness` — run corpus × engines, canonicalize,
  and report structured per-user divergences and rule violations.

Quickstart::

    from repro.diffcheck import generate_corpus, run_diffcheck

    report = run_diffcheck(generate_corpus(seed=0), engines="all")
    assert report.ok, report.render()

or from the command line: ``repro diffcheck --corpus tests/data/diffcheck``.
"""

from repro.diffcheck.corpus import (
    CORPUS_SCHEMA,
    CorpusCase,
    case_from_jsonable,
    case_to_jsonable,
    generate_corpus,
    load_corpus,
    save_corpus,
)
from repro.diffcheck.engines import (
    ENGINE_BASELINE,
    ENGINE_REGISTRY,
    ENGINE_SEMANTICS,
    INVARIANT_ONLY_ENGINES,
    EngineContext,
    available_engines,
    resolve_engines,
    run_engine,
)
from repro.diffcheck.harness import (
    CaseOutcome,
    DiffcheckReport,
    Divergence,
    run_diffcheck,
)
from repro.diffcheck.invariants import (
    INVARIANT_RULES,
    InvariantViolation,
    verify_sessions,
)

__all__ = [
    "CORPUS_SCHEMA",
    "CaseOutcome",
    "CorpusCase",
    "DiffcheckReport",
    "Divergence",
    "ENGINE_BASELINE",
    "ENGINE_REGISTRY",
    "ENGINE_SEMANTICS",
    "INVARIANT_ONLY_ENGINES",
    "EngineContext",
    "INVARIANT_RULES",
    "InvariantViolation",
    "available_engines",
    "case_from_jsonable",
    "case_to_jsonable",
    "generate_corpus",
    "load_corpus",
    "resolve_engines",
    "run_diffcheck",
    "run_engine",
    "save_corpus",
    "verify_sessions",
]
