"""The execution paths under differential test, behind one interface.

After PRs 3-4 the same request log can be reconstructed five
structurally different ways — serial batch, chunked parallel fan-out,
supervised execution that survives injected worker crashes, a
checkpoint/resume round trip through persisted work units, and the
incremental streaming pipeline.  Each is wrapped here as an *engine*: a
function from one :class:`EngineContext` to one
:class:`~repro.sessions.model.SessionSet`, so the harness can canonical-
compare their outputs pairwise without knowing how any of them executes.

Every engine is deterministic given the context ``seed`` — including the
supervised leg (fault injection plus seeded retry jitter) and the
reorder leg (seeded bounded shuffle) — so a divergence is always a bug,
never noise.
"""

from __future__ import annotations

import random
import tempfile
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import SmartSRAConfig
from repro.core.smart_sra import SmartSRA
from repro.exceptions import ConfigurationError
from repro.faults.execution import use_execution_faults
from repro.parallel import CheckpointStore, RetryPolicy, shard_by_user
from repro.sessions.model import Request, Session, SessionSet
from repro.streaming import streaming_smart_sra
from repro.topology.graph import WebGraph

__all__ = [
    "ENGINE_REGISTRY",
    "ENGINE_BASELINE",
    "ENGINE_SEMANTICS",
    "INVARIANT_ONLY_ENGINES",
    "EngineContext",
    "available_engines",
    "resolve_engines",
    "run_engine",
]

EngineFn = Callable[["EngineContext"], SessionSet]


@dataclass(frozen=True, slots=True)
class EngineContext:
    """Everything an engine needs to reconstruct one corpus case.

    Attributes:
        requests: the request stream, already in ``(timestamp, user,
            page)`` sort order — each engine applies its own execution
            discipline on top (chunking, sharding, bounded shuffling).
        topology: the site graph.
        config: the ρ/δ thresholds.
        seed: drives every seeded choice an engine makes (retry jitter,
            reorder shuffle), so reruns are reproducible.
        workdir: scratch directory for engines that persist state (the
            resume leg); a fresh temporary directory when ``None``.
    """

    requests: tuple[Request, ...]
    topology: WebGraph
    config: SmartSRAConfig = field(default_factory=SmartSRAConfig)
    seed: int = 0
    workdir: str | None = None


def _serial(ctx: EngineContext) -> SessionSet:
    return SmartSRA(ctx.topology, ctx.config).reconstruct(ctx.requests)


def _parallel(workers: int) -> EngineFn:
    def run(ctx: EngineContext) -> SessionSet:
        return SmartSRA(ctx.topology, ctx.config).reconstruct(
            ctx.requests, workers=workers, mode="auto")
    return run


def _columnar(ctx: EngineContext) -> SessionSet:
    """The vectorized columnar data plane (:mod:`repro.core.columnar`).

    Same heuristic, entirely different execution substrate — interned
    int columns, batched array passes, a DAG reformulation of the
    Phase-2 wave loop — so canonical equivalence here is the correctness
    contract gating every columnar optimization.  Honors the
    ``REPRO_COLUMNAR_FALLBACK`` environment variable, so one diffcheck
    run covers whichever backend the environment selects.
    """
    return SmartSRA(ctx.topology, ctx.config).reconstruct(
        ctx.requests, engine="columnar")


def _columnar_parallel(ctx: EngineContext) -> SessionSet:
    """Columnar plane fanned out over user blocks of column buffers."""
    return SmartSRA(ctx.topology, ctx.config).reconstruct(
        ctx.requests, engine="columnar", workers=2, mode="auto")


def _supervised(ctx: EngineContext) -> SessionSet:
    """Parallel reconstruction that must survive injected worker faults.

    Chunk 0 crashes its worker on the first attempt (transient — the
    canonical recoverable fault) and chunk 1 is slowed; the supervisor
    has to retry, respawn the pool and still produce output identical to
    every other engine.  Faults only fire inside pool worker processes,
    so on platforms where the process pool is unavailable this leg
    degrades to a plain supervised thread run — still a valid engine,
    just without the crash exercised.
    """
    policy = RetryPolicy(max_retries=3, deadline=30.0, backoff_base=0.01,
                         backoff_cap=0.1, seed=ctx.seed)
    with use_execution_faults("crash-chunk:0", "slow-chunk:1:0.02"):
        return SmartSRA(ctx.topology, ctx.config).reconstruct(
            ctx.requests, workers=2, mode="auto", supervision=policy)


def _resume(ctx: EngineContext) -> SessionSet:
    """Checkpoint/resume round trip, with one unit corrupted on disk.

    Simulates an interrupted run: the first half of the per-user shards
    is computed and persisted (with a ``corrupt-checkpoint`` fault
    flipping the first unit's integrity digest after the atomic write),
    then a second pass resumes against the same directory — it must
    reject the corrupted unit, reuse the trustworthy ones, recompute the
    rest, and reassemble output identical to the serial engine.
    """
    shards = shard_by_user(ctx.requests)
    smart = SmartSRA(ctx.topology, ctx.config)
    workdir = ctx.workdir or tempfile.mkdtemp(prefix="diffcheck-resume-")
    directory = str(Path(workdir) / "checkpoints")
    fingerprint = (f"diffcheck:{ctx.topology.fingerprint()}:"
                   f"{ctx.config.max_gap}:{ctx.config.max_duration}:"
                   f"{len(ctx.requests)}")

    def reconstruct_shard(shard: Sequence[Request]) -> list[Session]:
        ordered = sorted(shard, key=lambda request: request.timestamp)
        return smart.reconstruct_user(ordered)

    first_pass = CheckpointStore(directory)
    first_pass.begin(fingerprint, label="diffcheck-resume")
    interrupted_at = (len(shards) + 1) // 2
    with use_execution_faults("corrupt-checkpoint:0"):
        for index, shard in enumerate(shards[:interrupted_at]):
            payload = SessionSet(reconstruct_shard(shard)).to_jsonable()
            first_pass.save_unit("user-shard", f"{index:06d}", payload)
    # The run "dies" here; a fresh store resumes the same directory.
    second_pass = CheckpointStore(directory)
    second_pass.begin(fingerprint, label="diffcheck-resume", resume=True)
    sessions: list[Session] = []
    for index, shard in enumerate(shards):
        unit = second_pass.load_unit("user-shard", f"{index:06d}")
        if unit is not None:
            sessions.extend(SessionSet.from_jsonable(unit["payload"]))
        else:
            recomputed = reconstruct_shard(shard)
            second_pass.save_unit(
                "user-shard", f"{index:06d}",
                SessionSet(recomputed).to_jsonable())
            sessions.extend(recomputed)
    second_pass.mark("complete")
    return SessionSet(sessions)


def _streaming(ctx: EngineContext) -> SessionSet:
    pipeline = streaming_smart_sra(ctx.topology, ctx.config)
    sessions = pipeline.feed_many(ctx.requests)
    sessions.extend(pipeline.flush())
    return SessionSet(sessions)


def _streaming_watermark(ctx: EngineContext) -> SessionSet:
    """Streaming with periodic watermark flushes between feeds.

    Emitting eagerly at watermarks exercises the incremental closing
    logic (`flush(watermark)`) rather than the end-of-stream drain; the
    session *set* must not depend on when flushes happen.
    """
    pipeline = streaming_smart_sra(ctx.topology, ctx.config)
    step = max(ctx.config.max_gap * 0.75, 1.0)
    sessions: list[Session] = []
    next_watermark = step
    for request in ctx.requests:
        while request.timestamp >= next_watermark:
            sessions.extend(pipeline.flush(next_watermark))
            next_watermark += step
        sessions.extend(pipeline.feed(request))
    sessions.extend(pipeline.flush())
    return SessionSet(sessions)


def _streaming_reorder(ctx: EngineContext) -> SessionSet:
    """Streaming over a seeded, time-bounded shuffle of the stream.

    The stream is partitioned into blocks spanning at most the reorder
    window; each block is shuffled (seeded by the context), so arrival
    order differs from event order by a bounded amount.  The reorder
    buffer must restore the deterministic total order and reproduce the
    batch output exactly — ``late_policy="raise"`` turns any miscounted
    bound into a loud failure instead of a quietly dropped request.
    """
    window = max(ctx.config.max_gap / 2.0, 1.0)
    rng = random.Random(ctx.seed)
    shuffled: list[Request] = []
    block: list[Request] = []
    for request in ctx.requests:
        if block and request.timestamp - block[0].timestamp > window:
            rng.shuffle(block)
            shuffled.extend(block)
            block = []
        block.append(request)
    rng.shuffle(block)
    shuffled.extend(block)
    pipeline = streaming_smart_sra(ctx.topology, ctx.config,
                                   reorder_window=window)
    sessions = pipeline.feed_many(shuffled)
    sessions.extend(pipeline.flush())
    return SessionSet(sessions)


def _streaming_governed(ctx: EngineContext) -> SessionSet:
    """Streaming under a resource governor whose budget is never hit.

    The governance layer must be a pure pass-through until pressure
    exists: with an effectively unlimited budget the governed output has
    to be byte-identical to every other engine's — any divergence means
    the governor rewrote behavior it promised not to touch.
    """
    from repro.streaming.governor import GovernorConfig
    governor = GovernorConfig(memory_budget=1 << 30)
    pipeline = streaming_smart_sra(ctx.topology, ctx.config,
                                   governor=governor)
    sessions = pipeline.feed_many(ctx.requests)
    sessions.extend(pipeline.flush())
    if not pipeline.stats().reconciles():   # surfaces as a divergence
        return SessionSet([])
    return SessionSet(sessions)


def _streaming_evicting(ctx: EngineContext) -> SessionSet:
    """Streaming under a budget small enough to force degradation.

    Eviction splits candidates early, so the session *set* legitimately
    differs from the batch output — this engine is invariant-only (see
    :data:`INVARIANT_ONLY_ENGINES`): the harness checks that every
    emitted session still satisfies the five output rules and that the
    stats ledger reconciles, not that the segmentation matches serial.
    """
    from repro.streaming.governor import GovernorConfig
    governor = GovernorConfig(memory_budget=2048, per_user_cap=8,
                              quarantine_after=2, quarantine_cap=16)
    pipeline = streaming_smart_sra(ctx.topology, ctx.config,
                                   governor=governor, late_policy="drop")
    sessions = pipeline.feed_many(ctx.requests)
    sessions.extend(pipeline.flush())
    if not pipeline.stats().reconciles():   # surfaces as a violation
        raise ConfigurationError(
            "streaming-evicting stats failed to reconcile: "
            f"{pipeline.stats()}")
    return SessionSet(sessions)


def _streaming_sharded(ctx: EngineContext) -> SessionSet:
    """The crash-safe sharded runtime, fault-free.

    Users hash across two forked worker processes, each running its own
    governed pipeline; the coordinator seals at the global low-watermark
    and reassembles.  With no faults injected the sealed output must be
    byte-identical to serial — partitioning and the wire protocol are
    pure plumbing.
    """
    from repro.streaming import ShardedConfig, ShardedStreamingRuntime
    from repro.streaming.governor import GovernorConfig
    runtime = ShardedStreamingRuntime(
        ctx.topology, ctx.config,
        sharded=ShardedConfig(shards=2, ack_interval=16),
        governor=GovernorConfig(memory_budget=1 << 30))
    result = runtime.run(ctx.requests,
                         flush_interval=max(ctx.config.max_gap, 1.0))
    if not result.stats.reconciles():   # surfaces as a divergence
        return SessionSet([])
    return result.sessions


def _amp_reference(ctx: EngineContext) -> SessionSet:
    """All-Maximal-Paths, clear DFS enumerator.

    A *different algorithm* from Smart-SRA, not a different execution of
    it: AMP emits every maximal link-consistent path of each Phase-1
    candidate (arXiv 1307.1927), so its output is deliberately not
    diffed against serial.  It serves as an independent Phase-2-semantics
    oracle — the harness diffs ``amp-optimized`` against this engine
    instead (see :data:`ENGINE_BASELINE`) and verifies its output under
    AMP maximality semantics (see :data:`ENGINE_SEMANTICS`).
    """
    from repro.sessions.maximal_paths import AllMaximalPaths
    return AllMaximalPaths(
        ctx.topology, ctx.config,
        implementation="reference").reconstruct(ctx.requests)


def _amp_optimized(ctx: EngineContext) -> SessionSet:
    """All-Maximal-Paths, interned-adjacency memoized enumerator.

    Must be byte-identical to ``amp-reference`` on every corpus case —
    including truncated output, because both implementations share one
    deterministic enumeration order.
    """
    from repro.sessions.maximal_paths import AllMaximalPaths
    return AllMaximalPaths(
        ctx.topology, ctx.config,
        implementation="optimized").reconstruct(ctx.requests)


def _streaming_sharded_chaos(ctx: EngineContext) -> SessionSet:
    """The sharded runtime with both workers killed mid-stream.

    Each shard's worker is crashed once at a low event ordinal; failover
    must restore acked state, replay the unsealed tail and still produce
    sealed output byte-identical to serial.  This is the repo's hardest
    determinism claim exercised on every diffcheck corpus case.
    """
    from repro.parallel import RetryPolicy
    from repro.streaming import ShardedConfig, ShardedStreamingRuntime
    from repro.streaming.governor import GovernorConfig
    retry = RetryPolicy(max_retries=3, deadline=30.0, backoff_base=0.01,
                        backoff_cap=0.1, seed=ctx.seed)
    runtime = ShardedStreamingRuntime(
        ctx.topology, ctx.config,
        sharded=ShardedConfig(shards=2, ack_interval=16, retry=retry),
        governor=GovernorConfig(memory_budget=1 << 30))
    with use_execution_faults("kill-worker:0:5", "kill-worker:1:9"):
        result = runtime.run(ctx.requests,
                             flush_interval=max(ctx.config.max_gap, 1.0))
    if not result.stats.reconciles():   # surfaces as a divergence
        return SessionSet([])
    return result.sessions


#: name -> engine, in report order.  ``serial`` is the baseline every
#: other engine is diffed against and must stay first.
ENGINE_REGISTRY: dict[str, EngineFn] = {
    "serial": _serial,
    "parallel-2": _parallel(2),
    "parallel-3": _parallel(3),
    "parallel-auto": _parallel(0),
    "columnar": _columnar,
    "columnar-parallel": _columnar_parallel,
    "supervised": _supervised,
    "resume": _resume,
    "streaming": _streaming,
    "streaming-watermark": _streaming_watermark,
    "streaming-reorder": _streaming_reorder,
    "streaming-governed": _streaming_governed,
    "streaming-evicting": _streaming_evicting,
    "streaming-sharded": _streaming_sharded,
    "streaming-sharded-chaos": _streaming_sharded_chaos,
    "amp-reference": _amp_reference,
    "amp-optimized": _amp_optimized,
}

#: engines whose output is *intentionally* not canonical-identical to
#: serial (forced degradation changes segmentation).  The harness still
#: runs the invariant verifier over them but skips the canonical diff
#: and the golden-digest comparison.
INVARIANT_ONLY_ENGINES = frozenset({"streaming-evicting"})

#: engines diffed against a baseline other than ``serial``.  The amp
#: engines run a *different algorithm* (All-Maximal-Paths), so comparing
#: them to Smart-SRA output would flag every case; instead the optimized
#: implementation is held byte-identical to the reference one, and the
#: reference engine itself is pinned by the corpus's
#: ``expected_amp_digest`` golden (its own baseline entry is ``None``).
ENGINE_BASELINE: dict[str, str | None] = {
    "amp-reference": None,
    "amp-optimized": "amp-reference",
}

#: which output-rule semantics the invariant verifier applies per engine
#: (:func:`repro.diffcheck.invariants.verify_sessions` ``semantics=``).
#: Engines not listed use ``"smart-sra"``.  AMP's overlapping maximal
#: paths are legal output, so its maximality rule checks contiguous-infix
#: containment instead of the prefix rule.
ENGINE_SEMANTICS: dict[str, str] = {
    "amp-reference": "amp",
    "amp-optimized": "amp",
}


def available_engines() -> tuple[str, ...]:
    """Every registered engine name, baseline first."""
    return tuple(ENGINE_REGISTRY)


def resolve_engines(spec: str | Sequence[str]) -> tuple[str, ...]:
    """Expand an ``--engines`` value into registry names.

    Accepts ``"all"``, a comma-separated string, or a sequence of names.
    The serial baseline is always included (a diff needs its reference),
    as is any selected engine's own baseline (``amp-optimized`` pulls in
    ``amp-reference``), and ordering follows the registry, not the spec.

    Raises:
        ConfigurationError: for an unknown engine name.
    """
    if isinstance(spec, str):
        names = ([name.strip() for name in spec.split(",") if name.strip()]
                 if spec != "all" else list(ENGINE_REGISTRY))
    else:
        names = list(spec)
    unknown = [name for name in names if name not in ENGINE_REGISTRY]
    if unknown:
        known = ", ".join(ENGINE_REGISTRY)
        raise ConfigurationError(
            f"unknown engine(s) {', '.join(sorted(unknown))} "
            f"(known: {known})")
    chosen = set(names) | {"serial"}
    for name in names:
        baseline = ENGINE_BASELINE.get(name, "serial")
        if baseline is not None:
            chosen.add(baseline)
    return tuple(name for name in ENGINE_REGISTRY if name in chosen)


def run_engine(name: str, ctx: EngineContext) -> SessionSet:
    """Run one registered engine over a context.

    Raises:
        ConfigurationError: for an unknown engine name.
    """
    try:
        engine = ENGINE_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r} "
            f"(known: {', '.join(ENGINE_REGISTRY)})") from None
    return engine(ctx)
