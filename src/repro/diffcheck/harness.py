"""The differential oracle: run every engine, diff everything.

For each corpus case the harness runs the selected engines
(:mod:`repro.diffcheck.engines`), canonicalizes each output
(:meth:`~repro.sessions.model.SessionSet.canonical_form`), and reports

* **divergences** — the first session where an engine's canonical output
  for some user differs from the serial baseline's (or from the pinned
  golden expectation), with the engine pair and, when the divergent
  session itself breaks one of the five output rules, the rule violated;
* **invariant violations** — every rule breach in every engine's output,
  via :func:`repro.diffcheck.invariants.verify_sessions`, so an engine
  that is *consistently* wrong (all engines agree, all break rule 3) is
  still caught.

A clean report means: all engines agree with each other, with the golden
corpus where pinned, and with the paper's output contract.
"""

from __future__ import annotations

import dataclasses
import tempfile
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.diffcheck.corpus import CorpusCase
from repro.diffcheck.engines import (
    ENGINE_BASELINE,
    ENGINE_SEMANTICS,
    INVARIANT_ONLY_ENGINES,
    EngineContext,
    resolve_engines,
    run_engine,
)
from repro.diffcheck.invariants import InvariantViolation, verify_sessions
from repro.obs import get_registry

__all__ = [
    "CaseOutcome",
    "DiffcheckReport",
    "Divergence",
    "run_diffcheck",
]

#: canonical body of one session: ((timestamp, page, synthetic), ...)
_Body = tuple[tuple[float, str, bool], ...]


@dataclass(frozen=True, slots=True)
class Divergence:
    """First point where two engines disagree about one user.

    Attributes:
        case: corpus case name.
        baseline: reference engine (``"serial"``, or ``"golden"`` when
            diffing against the pinned corpus expectation).
        engine: the diverging engine.
        user_id: the user whose session list first differs.
        session_index: position in the user's *sorted* canonical session
            list where the difference starts.
        baseline_session: the baseline's session body at that position
            (``None`` when the baseline has fewer sessions).
        engine_session: the engine's session body at that position
            (``None`` when the engine has fewer sessions).
        rule: the invariant the divergent engine session breaks, when it
            breaks one; ``"equivalence"`` when both sides are
            individually rule-compliant and merely segment differently.
    """

    case: str
    baseline: str
    engine: str
    user_id: str
    session_index: int
    baseline_session: _Body | None
    engine_session: _Body | None
    rule: str = "equivalence"

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def describe(self) -> str:
        def shown(body: _Body | None) -> str:
            if body is None:
                return "<absent>"
            return "[" + ", ".join(f"{page}@{t:g}" for t, page, _ in body) + "]"
        return (f"{self.case}: {self.engine} vs {self.baseline}, user "
                f"{self.user_id!r}, session #{self.session_index}: "
                f"{shown(self.engine_session)} != "
                f"{shown(self.baseline_session)} (rule: {self.rule})")


@dataclass(frozen=True, slots=True)
class CaseOutcome:
    """Everything the harness learned about one corpus case."""

    case: str
    engines: tuple[str, ...]
    digests: dict[str, str]
    divergences: tuple[Divergence, ...]
    violations: dict[str, tuple[InvariantViolation, ...]]
    expected_digest: str | None = None
    expected_amp_digest: str | None = None

    @property
    def ok(self) -> bool:
        return (not self.divergences
                and not any(self.violations.values()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "case": self.case,
            "engines": list(self.engines),
            "digests": dict(self.digests),
            "expected_digest": self.expected_digest,
            "expected_amp_digest": self.expected_amp_digest,
            "divergences": [d.to_dict() for d in self.divergences],
            "violations": {engine: [v.to_dict() for v in found]
                           for engine, found in self.violations.items()},
            "ok": self.ok,
        }


@dataclass(frozen=True, slots=True)
class DiffcheckReport:
    """The oracle's verdict over a whole corpus."""

    outcomes: tuple[CaseOutcome, ...]
    engines: tuple[str, ...]
    seed: int = 0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def total_divergences(self) -> int:
        return sum(len(outcome.divergences) for outcome in self.outcomes)

    @property
    def total_violations(self) -> int:
        return sum(len(found) for outcome in self.outcomes
                   for found in outcome.violations.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "engines": list(self.engines),
            "cases": [outcome.to_dict() for outcome in self.outcomes],
            "total_divergences": self.total_divergences,
            "total_violations": self.total_violations,
        }

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"diffcheck: {len(self.outcomes)} case(s) x "
                 f"{len(self.engines)} engine(s) "
                 f"[{', '.join(self.engines)}]"]
        for outcome in self.outcomes:
            status = "ok" if outcome.ok else "DIVERGED"
            golden = (" golden" if outcome.expected_digest is not None
                      else "")
            lines.append(f"  {outcome.case}: {status}{golden} "
                         f"(digest {outcome.digests.get('serial', '?')[:12]})")
            for divergence in outcome.divergences:
                lines.append(f"    ! {divergence.describe()}")
            for engine, found in outcome.violations.items():
                for violation in found:
                    lines.append(
                        f"    ! {outcome.case}: {engine} breaks "
                        f"{violation.rule} in session "
                        f"#{violation.session_index} "
                        f"(user {violation.user_id!r}): {violation.detail}")
        verdict = ("all engines equivalent, all invariants hold"
                   if self.ok else
                   f"{self.total_divergences} divergence(s), "
                   f"{self.total_violations} invariant violation(s)")
        lines.append(f"diffcheck: {verdict}")
        return "\n".join(lines)


def _first_divergence(case: str, baseline_name: str, engine_name: str,
                      baseline_form: dict[str, list[_Body]],
                      engine_form: dict[str, list[_Body]],
                      rules_hint: dict[str, str],
                      ) -> Divergence | None:
    """Locate the first per-user difference between two canonical forms."""
    for user in sorted(set(baseline_form) | set(engine_form)):
        ours = baseline_form.get(user, [])
        theirs = engine_form.get(user, [])
        if ours == theirs:
            continue
        index = next((i for i, (a, b)
                      in enumerate(zip(ours, theirs)) if a != b),
                     min(len(ours), len(theirs)))
        return Divergence(
            case=case, baseline=baseline_name, engine=engine_name,
            user_id=user, session_index=index,
            baseline_session=ours[index] if index < len(ours) else None,
            engine_session=theirs[index] if index < len(theirs) else None,
            rule=rules_hint.get(user, "equivalence"))
    return None


def run_diffcheck(cases: Iterable[CorpusCase],
                  engines: str | Sequence[str] = "all",
                  seed: int | None = None) -> DiffcheckReport:
    """Run the full differential oracle over a corpus.

    Args:
        cases: corpus cases (loaded from disk or freshly generated).
        engines: ``"all"``, a comma-separated string, or a name sequence
            (see :func:`repro.diffcheck.engines.resolve_engines`); the
            serial baseline is always included.
        seed: overrides every case's own seed when given (useful to
            re-shake the seeded engines without editing the corpus).

    Raises:
        ConfigurationError: for unknown engine names.
    """
    chosen = resolve_engines(engines)
    counter = get_registry().counter("diffcheck.cases")
    outcomes: list[CaseOutcome] = []
    for case in cases:
        counter.inc()
        case_seed = case.seed if seed is None else seed
        outputs = {}
        with tempfile.TemporaryDirectory(prefix="diffcheck-") as workdir:
            for name in chosen:
                ctx = EngineContext(
                    requests=case.requests, topology=case.topology,
                    config=case.config, seed=case_seed,
                    workdir=str(workdir))
                outputs[name] = run_engine(name, ctx)
        forms = {name: output.canonical_form()
                 for name, output in outputs.items()}
        digests = {name: output.canonical_digest()
                   for name, output in outputs.items()}
        violations = {
            name: verify_sessions(
                output, case.topology, case.config,
                semantics=ENGINE_SEMANTICS.get(name, "smart-sra"))
            for name, output in outputs.items()}

        divergences: list[Divergence] = []
        for name in chosen:
            if name == "serial" or name in INVARIANT_ONLY_ENGINES:
                # invariant-only engines degrade segmentation on purpose;
                # their outputs are rule-checked above, not diffed.
                continue
            # each engine diffs against its own semantic baseline:
            # Smart-SRA engines against serial, amp-optimized against
            # amp-reference; amp-reference itself has no in-run baseline
            # (it is held to the pinned golden digest below).
            baseline_name = ENGINE_BASELINE.get(name, "serial")
            if baseline_name is None:
                continue
            # attribute a rule to the diff when the engine's own output
            # breaks one for that user; else it is a pure segmentation
            # difference between two individually-valid outputs.
            rules_hint = {violation.user_id: violation.rule
                          for violation in reversed(violations[name])}
            found = _first_divergence(case.name, baseline_name, name,
                                      forms[baseline_name], forms[name],
                                      rules_hint)
            if found is not None:
                divergences.append(found)
        if case.expected_form is not None:
            golden_form = {user: list(bodies)
                           for user, bodies in case.expected_form}
            for name in chosen:
                if (name in INVARIANT_ONLY_ENGINES
                        or ENGINE_SEMANTICS.get(name, "smart-sra") != "smart-sra"
                        or digests[name] == case.expected_digest):
                    continue
                found = _first_divergence(case.name, "golden", name,
                                          golden_form, forms[name], {})
                divergences.append(found if found is not None else
                                   Divergence(case.name, "golden", name,
                                              "", 0, None, None,
                                              rule="digest"))
        if case.expected_amp_digest is not None:
            for name in chosen:
                if (ENGINE_SEMANTICS.get(name, "smart-sra") == "amp"
                        and digests[name] != case.expected_amp_digest):
                    divergences.append(
                        Divergence(case.name, "golden-amp", name,
                                   "", 0, None, None, rule="digest"))
        outcomes.append(CaseOutcome(
            case=case.name, engines=chosen, digests=digests,
            divergences=tuple(divergences), violations=violations,
            expected_digest=case.expected_digest,
            expected_amp_digest=case.expected_amp_digest))
    return DiffcheckReport(outcomes=tuple(outcomes), engines=chosen,
                           seed=seed if seed is not None else 0)
