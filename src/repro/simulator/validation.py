"""Statistical validation of the simulator against its specification.

A reproduction's simulator is itself a claim: "agents behave as §4
describes".  This module audits a :class:`~repro.simulator.population.
SimulationResult` with standard goodness-of-fit tests (scipy):

* **termination rate** — every landing terminates the agent with
  probability at least STP (dead ends and exhausted start pools only add
  stops), so the empirical agents-per-landing rate must not fall
  significantly below STP (one-sided z-test);
* **stay times** — inter-request gaps must match the configured truncated
  normal (Kolmogorov-Smirnov against the analytic CDF);
* **NIP jump rate** — fresh session boundaries (NIP jumps) can occur at
  most ``(1 - STP)·NIP`` per landing; exceeding that bound is a behavior
  bug (one-sided binomial test).

:func:`validate_simulation` runs all checks and returns a report; the
test suite asserts it passes on default populations, so any future edit
that bends the behavior model trips a statistical alarm, not just golden
numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

try:                                    # optional: only the statistical
    from scipy import stats             # validation layer needs scipy
except ImportError:                     # (numpy-less installs run the
    stats = None                        # columnar fallback without it)

from repro.exceptions import SimulationError
from repro.simulator.population import SimulationResult

__all__ = ["ValidationCheck", "ValidationReport", "validate_simulation"]


@dataclass(frozen=True, slots=True)
class ValidationCheck:
    """One goodness-of-fit check.

    Attributes:
        name: what was tested.
        statistic: the test statistic (KS distance or |z|).
        p_value: the test's p-value (high = consistent with the spec).
        passed: whether the check passed at the report's alpha.
        detail: human-readable summary.
    """

    name: str
    statistic: float
    p_value: float
    passed: bool
    detail: str


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """All checks plus the overall verdict."""

    checks: tuple[ValidationCheck, ...]
    alpha: float

    @property
    def passed(self) -> bool:
        """True when every check passed."""
        return all(check.passed for check in self.checks)

    def __str__(self) -> str:
        lines = [f"simulator validation (alpha={self.alpha}):"]
        for check in self.checks:
            status = "ok" if check.passed else "FAILED"
            lines.append(f"  {check.name}: {status} "
                         f"(p={check.p_value:.3f}) — {check.detail}")
        return "\n".join(lines)


def _truncated_normal_cdf(value, mean: float, deviation: float,
                          upper: float):
    """CDF of a normal truncated to (0, upper]; vectorized over ``value``
    (``scipy.stats.ks_1samp`` calls it with the whole sample array)."""
    import numpy

    normal = stats.norm(mean, deviation)
    mass = normal.cdf(upper) - normal.cdf(0.0)
    clipped = numpy.clip(value, 0.0, upper)
    return (normal.cdf(clipped) - normal.cdf(0.0)) / mass


def validate_simulation(result: SimulationResult,
                        alpha: float = 0.001) -> ValidationReport:
    """Audit a simulation against its own configuration.

    Args:
        result: the simulation to audit (needs ≥ 100 ground-truth
            landings for the tests to have any power).
        alpha: significance level — checks fail when their p-value drops
            below it.  The default is deliberately strict-ish but tolerant
            of multiple testing across three checks.

    Raises:
        SimulationError: if the simulation is too small to test.
    """
    if stats is None:
        raise SimulationError(
            "simulation validation needs scipy (goodness-of-fit tests); "
            "install it or skip validate_simulation")
    config = result.config
    gaps: list[float] = []
    landings = 0
    for session in result.ground_truth:
        landings += len(session)
        for earlier, later in zip(session.requests, session.requests[1:]):
            gaps.append(later.timestamp - earlier.timestamp)
    if landings < 100:
        raise SimulationError(
            f"too few landings ({landings}) to validate; simulate more "
            "agents")

    checks: list[ValidationCheck] = []

    # 1) stay times ~ truncated normal (only valid for the unimodal model).
    if config.content_fraction == 0 and gaps:
        ks = stats.ks_1samp(
            gaps, lambda value: _truncated_normal_cdf(
                value, config.mean_stay, config.stay_deviation,
                config.max_stay))
        checks.append(ValidationCheck(
            name="stay-time distribution",
            statistic=float(ks.statistic),
            p_value=float(ks.pvalue),
            passed=bool(ks.pvalue >= alpha),
            detail=(f"KS distance {ks.statistic:.4f} vs truncated normal "
                    f"({config.mean_stay / 60:.2f} ± "
                    f"{config.stay_deviation / 60:.2f} min) over "
                    f"{len(gaps)} gaps"),
        ))

    # 2) termination rate: each landing (below the cap) terminates the
    # agent with probability STP; dead-end terminations add extra stops, so
    # the empirical rate may exceed STP but must never fall below it.
    terminations = len(result.traces)
    z_denominator = math.sqrt(config.stp * (1 - config.stp) * landings)
    expected = config.stp * landings
    z_value = (terminations - expected) / z_denominator
    # one-sided: flag only a termination rate significantly BELOW stp.
    p_low = float(stats.norm.cdf(z_value))
    checks.append(ValidationCheck(
        name="termination rate (lower bound)",
        statistic=float(z_value),
        p_value=p_low,
        passed=bool(p_low >= alpha),
        detail=(f"{terminations} agents over {landings} landings; "
                f"empirical rate {terminations / landings:.4f} vs "
                f"STP {config.stp}"),
    ))

    # 3) NIP jump rate: a session boundary opened by a *fresh* (non-cache)
    # landing can only come from an NIP draw, and the draw fires at most
    # (1-STP)·NIP per landing (fall-throughs — exhausted start pools —
    # only lower it).  Observed fresh boundaries significantly ABOVE that
    # bound indicate a behavior-model bug.  Only meaningful when revisit
    # jumps are disabled (revisit jumps open with a cache-served landing
    # and would be miscounted).
    if config.nip > 0 and not config.nip_revisits:
        nip_boundaries = 0
        for trace in result.traces:
            for nxt in trace.real_sessions[1:]:
                if nxt and not nxt.requests[0].synthetic:
                    nip_boundaries += 1
        ceiling = (1 - config.stp) * config.nip
        binom = stats.binomtest(nip_boundaries, landings, ceiling,
                                alternative="greater")
        checks.append(ValidationCheck(
            name="NIP jump rate (upper bound)",
            statistic=float(nip_boundaries / landings),
            p_value=float(binom.pvalue),
            passed=bool(binom.pvalue >= alpha),
            detail=(f"{nip_boundaries} fresh boundaries over {landings} "
                    f"landings vs per-landing ceiling {ceiling:.3f}"),
        ))

    return ValidationReport(checks=tuple(checks), alpha=alpha)
