"""Browser/proxy cache model.

The reactive-processing problem exists because browsers and proxies serve
repeated requests locally: those requests never reach the server and are
therefore invisible in the access log.  :class:`BrowserCache` models the
idealized infinite browser cache the paper assumes — the first request for
a page is a **miss** (forwarded to the server, logged) and every later
request for the same page is a **hit** (served locally, unlogged).

The cache also doubles as the agent's per-lifetime *visited set*: the
navigation behaviors choose among "new pages not accessed before", i.e.
pages not yet in the cache.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["BrowserCache"]


class BrowserCache:
    """An infinite, per-agent page cache with hit/miss accounting."""

    __slots__ = ("_pages", "hits", "misses")

    def __init__(self, pages: Iterable[str] = ()) -> None:
        self._pages: set[str] = set(pages)
        #: requests served locally so far.
        self.hits = 0
        #: requests forwarded to the server so far.
        self.misses = 0

    def __contains__(self, page: str) -> bool:
        return page in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def __iter__(self) -> Iterator[str]:
        return iter(self._pages)

    def request(self, page: str) -> bool:
        """Record a request for ``page``.

        Returns:
            ``True`` if the request reached the server (cache miss; the
            page is now cached), ``False`` for a cache hit.
        """
        if page in self._pages:
            self.hits += 1
            return False
        self._pages.add(page)
        self.misses += 1
        return True

    def unvisited(self, pages: Iterable[str]) -> list[str]:
        """The subset of ``pages`` not yet cached, in input order."""
        return [page for page in pages if page not in self._pages]

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served locally (0.0 before any request)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
