"""Arrival-time profiles for agent populations.

:func:`repro.simulator.population.simulate_population` spreads agents'
first requests over a horizon.  The *uniform* profile (the default) is the
paper's implicit model; the *diurnal* profile reproduces the day/night
traffic wave of real sites — arrivals follow a raised cosine peaking
mid-horizon — which concentrates concurrent users and therefore stresses
anything that depends on traffic density (proxy caches, streaming buffer
sizes).

Sampling is by inverse transform on the profile's CDF so a single uniform
draw per agent suffices and determinism is preserved.
"""

from __future__ import annotations

import math

from repro.exceptions import SimulationError

__all__ = ["sample_arrival", "ARRIVAL_PROFILES"]


def _uniform(unit: float) -> float:
    return unit


def _diurnal(unit: float) -> float:
    """Inverse CDF of a raised-cosine density over [0, 1].

    Density ``f(x) = 1 - cos(2πx)`` (zero at the horizon edges — deep
    night, peak mid-horizon).  CDF ``F(x) = x - sin(2πx) / 2π``; inverted
    numerically by bisection (monotone, 40 iterations ≈ 1e-12 precision).
    """
    low, high = 0.0, 1.0
    for __ in range(40):
        middle = (low + high) / 2
        cdf = middle - math.sin(2 * math.pi * middle) / (2 * math.pi)
        if cdf < unit:
            low = middle
        else:
            high = middle
    return (low + high) / 2


ARRIVAL_PROFILES = {
    "uniform": _uniform,
    "diurnal": _diurnal,
}


def sample_arrival(unit: float, horizon: float,
                   profile: str = "uniform") -> float:
    """Map a uniform draw in [0, 1) to an arrival time in [0, horizon).

    Args:
        unit: a uniform random draw.
        horizon: the arrival window length, seconds.
        profile: ``"uniform"`` or ``"diurnal"``.

    Raises:
        SimulationError: for an unknown profile or a draw outside [0, 1].
    """
    transform = ARRIVAL_PROFILES.get(profile)
    if transform is None:
        known = ", ".join(sorted(ARRIVAL_PROFILES))
        raise SimulationError(
            f"unknown arrival profile {profile!r}; known: {known}")
    if not 0 <= unit <= 1:
        raise SimulationError(f"unit draw must be in [0, 1], got {unit}")
    return transform(unit) * horizon
