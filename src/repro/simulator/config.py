"""Simulation configuration (paper Table 5 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError

__all__ = ["SimulationConfig", "PAPER_SIMULATION_DEFAULTS"]


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Behavioral parameters of the agent simulator.

    Attributes:
        stp: Session Termination Probability — per-request probability that
            the agent stops navigating (so the probability a session has
            terminated by its *n*-th request is ``1 - (1 - STP)^n``).
        lpp: Link-from-Previous-pages Probability — probability that the
            next request branches from an earlier page of the session via
            the browser cache (behavior 3).
        nip: New Initial-page Probability — probability that the agent jumps
            to a site start page, ending the current session (behavior 1).
        nip_revisits: whether a NIP jump may target an *already visited*
            start page.  ``True`` (default) follows the behavior-1 prose
            ("any one of the possible entry pages"); a revisited entry page
            is served from the browser cache, hiding the session boundary
            from the log — which is what makes large NIP values hard for
            every heuristic (Figure 10).  ``False`` follows the Figure 7
            pseudocode comment ("new, un-accessed initial page"); the agent
            then terminates once all start pages have been visited.  The
            difference is measured by ``bench_ablation_nip_revisits``.
        mean_stay: mean page-stay time in seconds (Table 5: 2.2 minutes).
        stay_deviation: standard deviation of the page-stay time in seconds
            (Table 5: 0.5 minutes).
        max_stay: hard upper truncation of a single stay, seconds.  The
            paper states behaviors 2 and 3 always stay under the 10-minute
            page-stay threshold; the truncated-normal sampler enforces it.
        content_fraction: fraction of pages treated as *content* pages with
            their own (longer) stay-time distribution.  ``0.0`` (default)
            reproduces the paper's single-distribution timing; a positive
            value enables the bimodal auxiliary/content model that
            transaction-identification methods (reference length, Cooley
            et al. 1999) assume.  Content pages are chosen
            deterministically from the topology via
            :func:`repro.simulator.pages.select_content_pages`.
        content_mean_stay / content_stay_deviation: the content pages'
            stay-time distribution, seconds (defaults: 7 ± 2 minutes).
        proxy_group_size: number of agents sharing one caching proxy.
            ``1`` (default) means no proxy — the paper's base setting.
            With ``k > 1``, agents are grouped ``k`` at a time behind a
            shared cache: a page any group member already fetched is served
            by the proxy and **never reaches the server log**, which is
            exactly the proxy unreliability the paper's §1 describes
            ("caching performed by ... proxy servers will make web log data
            even less reliable").  Group members are simulated in
            start-time order, so proxy warm-up is approximated at agent
            granularity (overlapping sessions within a group are not
            interleaved request-by-request).
        n_agents: number of simulated agents (Table 5: 10,000).
        max_requests_per_agent: safety bound on one agent's navigation
            length.  With the paper's parameters an agent terminates after
            ~1/STP requests in expectation; the bound only exists to keep
            degenerate configurations (STP ≈ 0) from running away.
        seed: base RNG seed; agent *i* uses an independent stream derived
            from ``seed`` and *i*, so results are reproducible and
            population prefixes are stable (agent 7 behaves identically in
            a 100-agent and a 10,000-agent run).

    Raises:
        ConfigurationError: for probabilities outside their documented
            ranges or non-positive times/counts.  STP must be strictly
            positive — a zero termination probability would let agents
            navigate forever.
    """

    stp: float = 0.05
    lpp: float = 0.30
    nip: float = 0.30
    nip_revisits: bool = True
    mean_stay: float = 2.2 * 60.0
    stay_deviation: float = 0.5 * 60.0
    max_stay: float = 10.0 * 60.0
    content_fraction: float = 0.0
    content_mean_stay: float = 7.0 * 60.0
    content_stay_deviation: float = 2.0 * 60.0
    proxy_group_size: int = 1
    n_agents: int = 10_000
    max_requests_per_agent: int = 500
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.stp <= 1:
            raise ConfigurationError(
                f"stp must be in (0, 1], got {self.stp}")
        if not 0 <= self.lpp < 1:
            raise ConfigurationError(
                f"lpp must be in [0, 1), got {self.lpp}")
        if not 0 <= self.nip < 1:
            raise ConfigurationError(
                f"nip must be in [0, 1), got {self.nip}")
        if self.mean_stay <= 0:
            raise ConfigurationError(
                f"mean_stay must be positive, got {self.mean_stay}")
        if self.stay_deviation < 0:
            raise ConfigurationError(
                f"stay_deviation must be >= 0, got {self.stay_deviation}")
        if self.max_stay <= 0:
            raise ConfigurationError(
                f"max_stay must be positive, got {self.max_stay}")
        if not 0 <= self.content_fraction <= 1:
            raise ConfigurationError(
                "content_fraction must be in [0, 1], got "
                f"{self.content_fraction}")
        if self.content_mean_stay <= 0:
            raise ConfigurationError(
                "content_mean_stay must be positive, got "
                f"{self.content_mean_stay}")
        if self.content_stay_deviation < 0:
            raise ConfigurationError(
                "content_stay_deviation must be >= 0, got "
                f"{self.content_stay_deviation}")
        if self.content_fraction > 0 and self.content_mean_stay > self.max_stay:
            raise ConfigurationError(
                f"content_mean_stay {self.content_mean_stay}s exceeds "
                f"max_stay {self.max_stay}s")
        if self.proxy_group_size <= 0:
            raise ConfigurationError(
                "proxy_group_size must be positive, got "
                f"{self.proxy_group_size}")
        if self.n_agents <= 0:
            raise ConfigurationError(
                f"n_agents must be positive, got {self.n_agents}")
        if self.max_requests_per_agent <= 0:
            raise ConfigurationError(
                "max_requests_per_agent must be positive, got "
                f"{self.max_requests_per_agent}")

    def with_(self, **overrides: object) -> "SimulationConfig":
        """Return a copy with the given fields replaced.

        The experiment sweeps use this to vary one probability while
        holding the rest at the paper's defaults::

            >>> PAPER_SIMULATION_DEFAULTS.with_(stp=0.10).stp
            0.1
        """
        return replace(self, **overrides)  # type: ignore[arg-type]


#: Table 5 of the paper verbatim: STP 5%, LPP 30%, NIP 30%, stay
#: 2.2 ± 0.5 minutes, 10,000 agents.
PAPER_SIMULATION_DEFAULTS = SimulationConfig()
