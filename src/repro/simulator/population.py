"""Multi-agent simulation.

:func:`simulate_population` runs :func:`~repro.simulator.agent.simulate_agent`
for ``config.n_agents`` independent agents over one topology and bundles

* the ground-truth :class:`~repro.sessions.model.SessionSet`, and
* the merged, time-sorted server request stream (the access log content)

into a :class:`SimulationResult` — the input pairing every evaluation in
the paper's §5 consumes.

Each agent draws from an RNG seeded by ``(config.seed, agent index)``, so
individual agents are reproducible and *prefix-stable*: agent 41 behaves
identically whether the population has 100 or 10,000 members.  Agents start
at independent uniformly random offsets within ``horizon`` (default: one
day), like real visitors arriving over a day.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any

from repro.exceptions import SimulationError
from repro.obs import get_registry
from repro.sessions.model import Request, Session, SessionSet
from repro.simulator.arrivals import sample_arrival
from repro.simulator.agent import AgentTrace, simulate_agent
from repro.simulator.config import SimulationConfig
from repro.topology.graph import WebGraph

__all__ = ["SimulationResult", "simulate_population"]


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of simulating a whole agent population.

    Attributes:
        topology: the site the agents browsed.
        config: the behavioral configuration used.
        ground_truth: every agent's real sessions (the denominator of the
            paper's accuracy metric).
        log_requests: all server-served requests, sorted by timestamp —
            exactly what a web server's access log records, ready for
            :mod:`repro.logs` serialization or direct reconstruction.
        traces: the per-agent traces, for cache statistics and drill-down.
    """

    topology: WebGraph
    config: SimulationConfig
    ground_truth: SessionSet
    log_requests: tuple[Request, ...]
    traces: tuple[AgentTrace, ...]

    @property
    def cache_hit_rate(self) -> float:
        """Population-wide fraction of landings hidden by caches (browser
        plus proxy) — landings the server log never saw."""
        hidden = sum(trace.cache_hits + trace.proxy_hits
                     for trace in self.traces)
        served = sum(trace.cache_misses for trace in self.traces)
        total = hidden + served
        return hidden / total if total else 0.0

    def sessions_per_agent(self) -> float:
        """Mean number of ground-truth sessions per agent."""
        if not self.traces:
            return 0.0
        return len(self.ground_truth) / len(self.traces)


def agent_name(index: int) -> str:
    """Canonical agent identity for agent ``index`` (doubles as its IP key)."""
    return f"agent{index:06d}"


def _agent_rng_and_start(config: SimulationConfig, index: int,
                         horizon: float,
                         arrival_profile: str = "uniform"
                         ) -> tuple[random.Random, float]:
    """The agent's private random stream and start time (drawn first, so
    agent behavior is a pure function of (seed, index, horizon,
    profile))."""
    rng = random.Random(f"{config.seed}:{index}")
    if horizon:
        start_time = sample_arrival(rng.random(), horizon, arrival_profile)
    else:
        rng.random()  # keep the stream aligned across profiles
        start_time = 0.0
    return rng, start_time


def _simulate_range(topology: WebGraph, config: SimulationConfig,
                    horizon: float, indices: list[int],
                    arrival_profile: str = "uniform") -> list[AgentTrace]:
    """Simulate the given agent indices without proxy sharing."""
    traces = []
    for index in indices:
        rng, start_time = _agent_rng_and_start(config, index, horizon,
                                               arrival_profile)
        traces.append(simulate_agent(agent_name(index), topology, config,
                                     rng, start_time))
    return traces


def _simulate_one(index: int, topology: WebGraph, config: SimulationConfig,
                  horizon: float, arrival_profile: str) -> AgentTrace:
    """Simulate one agent (the parallel work unit; module-level to pickle)."""
    rng, start_time = _agent_rng_and_start(config, index, horizon,
                                           arrival_profile)
    return simulate_agent(agent_name(index), topology, config, rng,
                          start_time)


def simulate_population(topology: WebGraph, config: SimulationConfig,
                        horizon: float = 86_400.0,
                        n_workers: int | None = None,
                        arrival_profile: str = "uniform", *,
                        supervision=None, checkpoint=None,
                        resume: bool = False,
                        checkpoint_block: int = 256) -> SimulationResult:
    """Simulate ``config.n_agents`` agents browsing ``topology``.

    Args:
        topology: the site to browse.
        config: behavioral parameters (including ``n_agents``, ``seed`` and
            ``proxy_group_size``).
        horizon: agents' first requests are spread uniformly over
            ``[0, horizon)`` seconds.
        n_workers: parallelize agent simulation via
            :func:`repro.parallel.parallel_map` — ``None`` (default) runs
            in-process, ``0`` auto-detects usable CPUs, a positive count
            uses exactly that many workers.  Results are identical to the
            serial run (agents are seeded independently); only allowed
            without proxy sharing, whose shared caches are inherently
            sequential.
        arrival_profile: how arrivals spread over the horizon —
            ``"uniform"`` (paper-implicit default) or ``"diurnal"`` (see
            :mod:`repro.simulator.arrivals`).
        supervision: optional
            :class:`~repro.parallel.supervisor.RetryPolicy` for the
            parallel path — worker crashes and hangs are then recovered
            at chunk granularity instead of killing the run.
        checkpoint: optional checkpoint directory (path or
            :class:`~repro.parallel.checkpoint.CheckpointStore`).  Agent
            traces are persisted in blocks of ``checkpoint_block`` as
            they complete; requires independent agents
            (``proxy_group_size == 1``), since shared proxy caches make
            block results order-dependent.
        resume: continue from an existing checkpoint directory,
            re-simulating only the missing agent blocks.  Because agents
            are prefix-stable, the resumed population is identical to an
            uninterrupted run — including the final ``sim.*`` metrics,
            which are derived from the assembled traces.
        checkpoint_block: agents per checkpoint unit (trade-off between
            write frequency and work lost to an interrupt).

    Raises:
        SimulationError: if ``horizon`` is negative, ``n_workers`` is
            negative, workers are combined with a proxy, or checkpointing
            is combined with proxy sharing.
    """
    if horizon < 0:
        raise SimulationError(f"horizon must be >= 0, got {horizon}")
    if n_workers is not None and n_workers < 0:
        raise SimulationError(
            f"n_workers must be >= 0 (0 = auto-detect), got {n_workers}")

    if checkpoint is not None:
        if config.proxy_group_size > 1:
            raise SimulationError(
                "checkpointing requires independent agents; proxy "
                "sharing makes block results order-dependent")
        traces = _simulate_checkpointed(
            topology, config, horizon, arrival_profile, n_workers,
            supervision, checkpoint, resume, checkpoint_block)
    elif config.proxy_group_size > 1:
        if n_workers is not None and n_workers != 1:
            raise SimulationError(
                "proxy sharing is sequential; do not combine "
                "proxy_group_size > 1 with parallel workers")
        traces = _simulate_with_proxies(topology, config, horizon,
                                        arrival_profile)
    elif n_workers is not None and n_workers != 1:
        from repro.parallel import parallel_map

        traces = parallel_map(
            functools.partial(_simulate_one, topology=topology,
                              config=config, horizon=horizon,
                              arrival_profile=arrival_profile),
            range(config.n_agents), workers=n_workers,
            supervision=supervision)
    else:
        traces = _simulate_range(topology, config, horizon,
                                 list(range(config.n_agents)),
                                 arrival_profile)

    ground_truth = SessionSet(
        session for trace in traces for session in trace.real_sessions)
    log_requests = sorted(
        (request for trace in traces for request in trace.server_requests),
        key=lambda request: (request.timestamp, request.user_id))
    registry = get_registry()
    if registry.enabled:
        registry.counter("sim.agents").inc(len(traces))
        registry.counter("sim.sessions.generated").inc(len(ground_truth))
        registry.counter("sim.requests.logged").inc(len(log_requests))
        registry.counter("sim.requests.cache_suppressed").inc(
            sum(trace.cache_hits + trace.proxy_hits for trace in traces))
    return SimulationResult(
        topology=topology,
        config=config,
        ground_truth=ground_truth,
        log_requests=tuple(log_requests),
        traces=tuple(traces),
    )


def _simulate_with_proxies(topology: WebGraph, config: SimulationConfig,
                           horizon: float,
                           arrival_profile: str = "uniform"
                           ) -> list[AgentTrace]:
    """Simulate with agents grouped behind shared proxy caches.

    Within each group, agents run in start-time order so the proxy warms
    up roughly as it would in wall-clock time (agent-granular
    approximation; see :class:`SimulationConfig`).
    """
    from repro.simulator.cache import BrowserCache

    prepared = []
    for index in range(config.n_agents):
        rng, start_time = _agent_rng_and_start(config, index, horizon,
                                               arrival_profile)
        prepared.append((index, rng, start_time))

    traces: list[AgentTrace | None] = [None] * config.n_agents
    group_size = config.proxy_group_size
    for group_start in range(0, config.n_agents, group_size):
        group = prepared[group_start:group_start + group_size]
        proxy = BrowserCache()
        for index, rng, start_time in sorted(group,
                                             key=lambda item: item[2]):
            traces[index] = simulate_agent(
                agent_name(index), topology, config, rng, start_time,
                proxy_cache=proxy)
    return [trace for trace in traces if trace is not None]


# -- checkpoint/resume ---------------------------------------------------
#
# Agents are prefix-stable pure functions of (seed, index, horizon,
# profile), so the natural checkpoint unit is a *block of agent indices*:
# blocks complete independently, serialize compactly, and a resumed block
# regenerates byte-identically if its unit was lost or corrupted.  The
# ``sim.*`` metrics are derived from the assembled traces at the end of
# :func:`simulate_population`, so restored and recomputed blocks
# contribute identically — no per-unit snapshot is needed.


def _request_to_jsonable(request: Request) -> list[Any]:
    """Full-fidelity request encoding (unlike
    :meth:`~repro.sessions.model.SessionSet.to_jsonable`, which drops the
    referrer — checkpointed traces must round-trip *exactly*)."""
    return [request.timestamp, request.user_id, request.page,
            request.synthetic, request.referrer]


def _request_from_jsonable(doc: list[Any]) -> Request:
    timestamp, user_id, page, synthetic, referrer = doc
    return Request(timestamp, user_id, page, synthetic, referrer)


def _trace_to_jsonable(trace: AgentTrace) -> dict[str, Any]:
    return {
        "agent_id": trace.agent_id,
        "sessions": [[_request_to_jsonable(request) for request in session]
                     for session in trace.real_sessions],
        "server": [_request_to_jsonable(request)
                   for request in trace.server_requests],
        "cache_hits": trace.cache_hits,
        "proxy_hits": trace.proxy_hits,
        "cache_misses": trace.cache_misses,
    }


def _trace_from_jsonable(doc: dict[str, Any]) -> AgentTrace:
    return AgentTrace(
        agent_id=doc["agent_id"],
        real_sessions=tuple(
            Session(_request_from_jsonable(request) for request in session)
            for session in doc["sessions"]),
        server_requests=tuple(_request_from_jsonable(request)
                              for request in doc["server"]),
        cache_hits=doc["cache_hits"],
        proxy_hits=doc["proxy_hits"],
        cache_misses=doc["cache_misses"],
    )


def _simulate_block(block: tuple[int, int], topology: WebGraph,
                    config: SimulationConfig, horizon: float,
                    arrival_profile: str) -> list[AgentTrace]:
    """Simulate one contiguous agent-index block (parallel work unit)."""
    start, end = block
    return _simulate_range(topology, config, horizon,
                           list(range(start, end)), arrival_profile)


def _simulate_checkpointed(topology: WebGraph, config: SimulationConfig,
                           horizon: float, arrival_profile: str,
                           n_workers: int | None, supervision, checkpoint,
                           resume: bool, block_size: int
                           ) -> list[AgentTrace]:
    """Block-checkpointed population simulation (with optional workers)."""
    from repro.parallel.checkpoint import CheckpointStore
    from repro.parallel.supervisor import RetryPolicy, supervised_map

    if block_size < 1:
        raise SimulationError(
            f"checkpoint_block must be >= 1, got {block_size}")
    store = (checkpoint if isinstance(checkpoint, CheckpointStore)
             else CheckpointStore(checkpoint))
    fingerprint = hashlib.sha256(json.dumps({
        "kind": "simulate",
        "topology": topology.fingerprint(),
        "config": dataclasses.asdict(config),
        "horizon": horizon,
        "arrival_profile": arrival_profile,
        "block": block_size,
    }, sort_keys=True, default=str).encode("utf-8")).hexdigest()[:24]
    store.begin(fingerprint, label=f"simulate agents={config.n_agents}",
                resume=resume)

    blocks = [(start, min(start + block_size, config.n_agents))
              for start in range(0, config.n_agents, block_size)]
    restored: dict[int, list[AgentTrace]] = {}
    for index, (start, end) in enumerate(blocks):
        unit = store.load_unit("agent-block", f"agents={start}-{end}")
        if unit is not None:
            restored[index] = [_trace_from_jsonable(doc)
                               for doc in unit["payload"]["traces"]]

    todo = [index for index in range(len(blocks)) if index not in restored]
    computed: dict[int, list[AgentTrace]] = {}

    def record(position: int, block_traces: list[AgentTrace]) -> None:
        index = todo[position]
        computed[index] = block_traces
        start, end = blocks[index]
        store.save_unit(
            "agent-block", f"agents={start}-{end}",
            {"traces": [_trace_to_jsonable(trace)
                        for trace in block_traces]})

    work = functools.partial(_simulate_block, topology=topology,
                             config=config, horizon=horizon,
                             arrival_profile=arrival_profile)
    try:
        if n_workers is None or n_workers == 1:
            for position, index in enumerate(todo):
                record(position, work(blocks[index]))
        elif todo:
            policy = (supervision if supervision is not None
                      else RetryPolicy(max_retries=0, on_failure="raise"))
            supervised_map(
                work, [blocks[index] for index in todo], workers=n_workers,
                chunk_size=1, policy=policy,
                on_chunk_complete=lambda position, results:
                    record(position, results[0]))
    except BaseException:
        store.mark("interrupted")
        raise
    store.mark("complete")

    traces: list[AgentTrace] = []
    for index in range(len(blocks)):
        traces.extend(restored.get(index) or computed.get(index) or [])
    return traces
