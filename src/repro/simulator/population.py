"""Multi-agent simulation.

:func:`simulate_population` runs :func:`~repro.simulator.agent.simulate_agent`
for ``config.n_agents`` independent agents over one topology and bundles

* the ground-truth :class:`~repro.sessions.model.SessionSet`, and
* the merged, time-sorted server request stream (the access log content)

into a :class:`SimulationResult` — the input pairing every evaluation in
the paper's §5 consumes.

Each agent draws from an RNG seeded by ``(config.seed, agent index)``, so
individual agents are reproducible and *prefix-stable*: agent 41 behaves
identically whether the population has 100 or 10,000 members.  Agents start
at independent uniformly random offsets within ``horizon`` (default: one
day), like real visitors arriving over a day.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass

from repro.exceptions import SimulationError
from repro.obs import get_registry
from repro.sessions.model import Request, SessionSet
from repro.simulator.arrivals import sample_arrival
from repro.simulator.agent import AgentTrace, simulate_agent
from repro.simulator.config import SimulationConfig
from repro.topology.graph import WebGraph

__all__ = ["SimulationResult", "simulate_population"]


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of simulating a whole agent population.

    Attributes:
        topology: the site the agents browsed.
        config: the behavioral configuration used.
        ground_truth: every agent's real sessions (the denominator of the
            paper's accuracy metric).
        log_requests: all server-served requests, sorted by timestamp —
            exactly what a web server's access log records, ready for
            :mod:`repro.logs` serialization or direct reconstruction.
        traces: the per-agent traces, for cache statistics and drill-down.
    """

    topology: WebGraph
    config: SimulationConfig
    ground_truth: SessionSet
    log_requests: tuple[Request, ...]
    traces: tuple[AgentTrace, ...]

    @property
    def cache_hit_rate(self) -> float:
        """Population-wide fraction of landings hidden by caches (browser
        plus proxy) — landings the server log never saw."""
        hidden = sum(trace.cache_hits + trace.proxy_hits
                     for trace in self.traces)
        served = sum(trace.cache_misses for trace in self.traces)
        total = hidden + served
        return hidden / total if total else 0.0

    def sessions_per_agent(self) -> float:
        """Mean number of ground-truth sessions per agent."""
        if not self.traces:
            return 0.0
        return len(self.ground_truth) / len(self.traces)


def agent_name(index: int) -> str:
    """Canonical agent identity for agent ``index`` (doubles as its IP key)."""
    return f"agent{index:06d}"


def _agent_rng_and_start(config: SimulationConfig, index: int,
                         horizon: float,
                         arrival_profile: str = "uniform"
                         ) -> tuple[random.Random, float]:
    """The agent's private random stream and start time (drawn first, so
    agent behavior is a pure function of (seed, index, horizon,
    profile))."""
    rng = random.Random(f"{config.seed}:{index}")
    if horizon:
        start_time = sample_arrival(rng.random(), horizon, arrival_profile)
    else:
        rng.random()  # keep the stream aligned across profiles
        start_time = 0.0
    return rng, start_time


def _simulate_range(topology: WebGraph, config: SimulationConfig,
                    horizon: float, indices: list[int],
                    arrival_profile: str = "uniform") -> list[AgentTrace]:
    """Simulate the given agent indices without proxy sharing."""
    traces = []
    for index in indices:
        rng, start_time = _agent_rng_and_start(config, index, horizon,
                                               arrival_profile)
        traces.append(simulate_agent(agent_name(index), topology, config,
                                     rng, start_time))
    return traces


def _simulate_one(index: int, topology: WebGraph, config: SimulationConfig,
                  horizon: float, arrival_profile: str) -> AgentTrace:
    """Simulate one agent (the parallel work unit; module-level to pickle)."""
    rng, start_time = _agent_rng_and_start(config, index, horizon,
                                           arrival_profile)
    return simulate_agent(agent_name(index), topology, config, rng,
                          start_time)


def simulate_population(topology: WebGraph, config: SimulationConfig,
                        horizon: float = 86_400.0,
                        n_workers: int | None = None,
                        arrival_profile: str = "uniform"
                        ) -> SimulationResult:
    """Simulate ``config.n_agents`` agents browsing ``topology``.

    Args:
        topology: the site to browse.
        config: behavioral parameters (including ``n_agents``, ``seed`` and
            ``proxy_group_size``).
        horizon: agents' first requests are spread uniformly over
            ``[0, horizon)`` seconds.
        n_workers: parallelize agent simulation via
            :func:`repro.parallel.parallel_map` — ``None`` (default) runs
            in-process, ``0`` auto-detects usable CPUs, a positive count
            uses exactly that many workers.  Results are identical to the
            serial run (agents are seeded independently); only allowed
            without proxy sharing, whose shared caches are inherently
            sequential.
        arrival_profile: how arrivals spread over the horizon —
            ``"uniform"`` (paper-implicit default) or ``"diurnal"`` (see
            :mod:`repro.simulator.arrivals`).

    Raises:
        SimulationError: if ``horizon`` is negative, ``n_workers`` is
            negative, or workers are combined with a proxy.
    """
    if horizon < 0:
        raise SimulationError(f"horizon must be >= 0, got {horizon}")
    if n_workers is not None and n_workers < 0:
        raise SimulationError(
            f"n_workers must be >= 0 (0 = auto-detect), got {n_workers}")

    if config.proxy_group_size > 1:
        if n_workers is not None and n_workers != 1:
            raise SimulationError(
                "proxy sharing is sequential; do not combine "
                "proxy_group_size > 1 with parallel workers")
        traces = _simulate_with_proxies(topology, config, horizon,
                                        arrival_profile)
    elif n_workers is not None and n_workers != 1:
        from repro.parallel import parallel_map

        traces = parallel_map(
            functools.partial(_simulate_one, topology=topology,
                              config=config, horizon=horizon,
                              arrival_profile=arrival_profile),
            range(config.n_agents), workers=n_workers)
    else:
        traces = _simulate_range(topology, config, horizon,
                                 list(range(config.n_agents)),
                                 arrival_profile)

    ground_truth = SessionSet(
        session for trace in traces for session in trace.real_sessions)
    log_requests = sorted(
        (request for trace in traces for request in trace.server_requests),
        key=lambda request: (request.timestamp, request.user_id))
    registry = get_registry()
    if registry.enabled:
        registry.counter("sim.agents").inc(len(traces))
        registry.counter("sim.sessions.generated").inc(len(ground_truth))
        registry.counter("sim.requests.logged").inc(len(log_requests))
        registry.counter("sim.requests.cache_suppressed").inc(
            sum(trace.cache_hits + trace.proxy_hits for trace in traces))
    return SimulationResult(
        topology=topology,
        config=config,
        ground_truth=ground_truth,
        log_requests=tuple(log_requests),
        traces=tuple(traces),
    )


def _simulate_with_proxies(topology: WebGraph, config: SimulationConfig,
                           horizon: float,
                           arrival_profile: str = "uniform"
                           ) -> list[AgentTrace]:
    """Simulate with agents grouped behind shared proxy caches.

    Within each group, agents run in start-time order so the proxy warms
    up roughly as it would in wall-clock time (agent-granular
    approximation; see :class:`SimulationConfig`).
    """
    from repro.simulator.cache import BrowserCache

    prepared = []
    for index in range(config.n_agents):
        rng, start_time = _agent_rng_and_start(config, index, horizon,
                                               arrival_profile)
        prepared.append((index, rng, start_time))

    traces: list[AgentTrace | None] = [None] * config.n_agents
    group_size = config.proxy_group_size
    for group_start in range(0, config.n_agents, group_size):
        group = prepared[group_start:group_start + group_size]
        proxy = BrowserCache()
        for index, rng, start_time in sorted(group,
                                             key=lambda item: item[2]):
            traces[index] = simulate_agent(
                agent_name(index), topology, config, rng, start_time,
                proxy_cache=proxy)
    return [trace for trace in traces if trace is not None]


def _simulate_parallel(topology: WebGraph, config: SimulationConfig,
                       horizon: float, n_workers: int,
                       arrival_profile: str = "uniform"
                       ) -> list[AgentTrace]:
    """Fan agent simulation out over a process pool (order-preserving)."""
    from concurrent.futures import ProcessPoolExecutor

    indices = list(range(config.n_agents))
    chunk_size = max(1, (config.n_agents + n_workers - 1) // n_workers)
    chunks = [indices[offset:offset + chunk_size]
              for offset in range(0, config.n_agents, chunk_size)]
    payloads = [(topology, config, horizon, chunk, arrival_profile)
                for chunk in chunks]
    traces: list[AgentTrace] = []
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        for chunk_traces in pool.map(_simulate_chunk, payloads):
            traces.extend(chunk_traces)
    return traces
