"""Page-stay time sampling.

The paper models the time a user spends on a page before the next request
as normally distributed with mean 2.12-2.2 minutes and standard deviation
0.5 minutes, and guarantees that behaviors 2 and 3 never exceed the
10-minute page-stay threshold.  :class:`StayTimeSampler` realizes this as a
normal distribution truncated to ``(0, max_stay]`` via rejection sampling.
"""

from __future__ import annotations

import random

from repro.exceptions import SimulationError

__all__ = ["StayTimeSampler"]

_MAX_REJECTIONS = 1000


class StayTimeSampler:
    """Truncated-normal sampler for inter-request gaps.

    Args:
        mean: mean stay in seconds.
        deviation: standard deviation in seconds.  Zero degenerates to a
            constant ``mean`` (still subject to the truncation check).
        max_stay: upper truncation bound in seconds.
        rng: the random stream to draw from.

    Raises:
        SimulationError: if the untruncated mean lies above ``max_stay``
            (the rejection loop would almost never terminate), or at sample
            time if rejection sampling fails to land in ``(0, max_stay]``
            within a generous bound.
    """

    __slots__ = ("mean", "deviation", "max_stay", "_rng")

    def __init__(self, mean: float, deviation: float, max_stay: float,
                 rng: random.Random) -> None:
        if mean > max_stay:
            raise SimulationError(
                f"mean stay {mean}s exceeds the truncation bound "
                f"{max_stay}s; rejection sampling would not converge")
        self.mean = mean
        self.deviation = deviation
        self.max_stay = max_stay
        self._rng = rng

    def sample(self) -> float:
        """Draw one stay time in ``(0, max_stay]`` seconds."""
        if self.deviation == 0:
            if not 0 < self.mean <= self.max_stay:
                raise SimulationError(
                    f"constant stay {self.mean}s outside (0, {self.max_stay}]")
            return self.mean
        for _ in range(_MAX_REJECTIONS):
            value = self._rng.gauss(self.mean, self.deviation)
            if 0 < value <= self.max_stay:
                return value
        raise SimulationError(
            f"could not sample a stay in (0, {self.max_stay}] after "
            f"{_MAX_REJECTIONS} draws (mean={self.mean}, "
            f"deviation={self.deviation})")
