"""Agent simulator (paper §4).

Simulates web users navigating a :class:`~repro.topology.graph.WebGraph`
according to the paper's four primitive behaviors:

1. start a (new) session at a site start page (probability NIP while
   navigating),
2. follow a hyperlink from the current page,
3. navigate back through the browser cache to an earlier page of the
   session and branch from there (probability LPP),
4. terminate the session (probability STP, evaluated per request).

The simulator knows the complete client-side navigation, so it emits both
the **ground-truth sessions** and the **server-side log** (cache-served
requests removed) — the pairing that makes exact accuracy evaluation of
reactive heuristics possible.
"""

from repro.simulator.adversarial import (
    adversarial_workload,
    simulate_crawler,
    simulate_nat_pool,
)
from repro.simulator.agent import AgentTrace, simulate_agent
from repro.simulator.cache import BrowserCache
from repro.simulator.clock import StayTimeSampler
from repro.simulator.config import PAPER_SIMULATION_DEFAULTS, SimulationConfig
from repro.simulator.pages import select_content_pages
from repro.simulator.population import SimulationResult, simulate_population
from repro.simulator.validation import (
    ValidationCheck,
    ValidationReport,
    validate_simulation,
)

__all__ = [
    "SimulationConfig",
    "PAPER_SIMULATION_DEFAULTS",
    "StayTimeSampler",
    "BrowserCache",
    "AgentTrace",
    "simulate_agent",
    "SimulationResult",
    "simulate_population",
    "simulate_crawler",
    "simulate_nat_pool",
    "adversarial_workload",
    "select_content_pages",
    "validate_simulation",
    "ValidationReport",
    "ValidationCheck",
]
