"""Single-agent navigation simulation (paper §4, Figure 7).

One simulated agent is one web user identified by one client IP.  The agent
starts at a random site start page and repeatedly chooses among the four
primitive behaviors (probabilities evaluated in the paper's order —
terminate, new-initial-page, backtrack-and-branch, follow-link):

========== =========================================================
behavior   effect
========== =========================================================
STP        terminate the agent; the open session is closed.
NIP        jump to a site start page; the open session is closed and a
           new one begins with the jump target.  An unvisited target is
           a server request; a revisited one (allowed by default, see
           ``SimulationConfig.nip_revisits``) is a cache hit, hiding the
           session boundary from the log.
LPP        go *back* (through the browser cache) to an earlier page of
           the open session that still has unvisited out-links and
           branch from there.  The open session is closed; the new
           session begins with the backtrack target (a **cache hit**,
           invisible to the server) followed by the chosen branch page.
default    follow a hyperlink from the current page to an unvisited
           page (behavior 2; a server request).
========== =========================================================

Decisions the paper leaves open, made explicit here (see DESIGN.md):

* Navigation only targets *unvisited* pages (the paper's behaviors 1 and 3
  say so explicitly; we apply it to behavior 2 as well so that the ideal
  infinite browser cache and the ground truth stay consistent).
* **Dead ends** (current page has no unvisited out-link) fall back to the
  LPP backtrack mechanics when some earlier page of the session still has
  an unvisited out-link, and otherwise terminate the agent.
* When NIP fires but every start page has been visited, the agent
  terminates.

Every landed page — cache hit or not — advances the clock by one
truncated-normal stay time, so inter-request gaps in both the ground truth
and the log follow the paper's timing model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import SimulationError
from repro.sessions.model import Request, Session
from repro.simulator.cache import BrowserCache
from repro.simulator.clock import StayTimeSampler
from repro.simulator.config import SimulationConfig
from repro.simulator.pages import select_content_pages
from repro.topology.graph import WebGraph

__all__ = ["AgentTrace", "simulate_agent"]


@dataclass(frozen=True, slots=True)
class AgentTrace:
    """Everything one agent produced.

    Attributes:
        agent_id: the agent's user identity (also its log IP key).
        real_sessions: the ground-truth sessions, in chronological order.
            Cache-served landings appear here with ``synthetic=True``.
        server_requests: the requests that reached the server — the agent's
            contribution to the access log — in chronological order.
        cache_hits: landings served by the browser cache.
        proxy_hits: landings served by the shared proxy cache (0 without a
            proxy).
        cache_misses: landings forwarded to the server
            (``== len(server_requests)``).
    """

    agent_id: str
    real_sessions: tuple[Session, ...]
    server_requests: tuple[Request, ...]
    cache_hits: int
    proxy_hits: int
    cache_misses: int


class _AgentState:
    """Mutable bookkeeping for one agent's walk."""

    __slots__ = ("agent_id", "cache", "clock", "current", "sessions",
                 "server", "landings", "_sampler", "_content_sampler",
                 "_content_pages", "_proxy")

    def __init__(self, agent_id: str, start_time: float,
                 sampler: StayTimeSampler,
                 content_sampler: StayTimeSampler | None = None,
                 content_pages: frozenset[str] = frozenset(),
                 proxy_cache: BrowserCache | None = None) -> None:
        self.agent_id = agent_id
        self.cache = BrowserCache()
        self.clock = start_time
        self.current: list[Request] = []
        self.sessions: list[Session] = []
        self.server: list[Request] = []
        self.landings = 0
        self._sampler = sampler
        self._content_sampler = content_sampler
        self._content_pages = content_pages
        self._proxy = proxy_cache

    def advance(self) -> None:
        """Move the clock forward by the stay on the page being left.

        Content pages (when the bimodal model is enabled) use the slower
        content distribution; everything else — including the pre-visit
        think time before the very first landing — uses the auxiliary one.
        """
        leaving = self.current[-1].page if self.current else None
        if (self._content_sampler is not None
                and leaving in self._content_pages):
            self.clock += self._content_sampler.sample()
        else:
            self.clock += self._sampler.sample()

    def land(self, page: str, referrer: str | None) -> None:
        """The user arrives on ``page`` at the current clock time.

        ``referrer`` is the page whose hyperlink was followed (``None`` for
        direct entries: the agent's first page and NIP jumps).  It is
        recorded on the server request exactly like a browser's Referer
        header, feeding the Combined Log Format writer.
        """
        browser_miss = self.cache.request(page)
        # Two-level caching: a browser miss may still be absorbed by the
        # shared proxy cache, in which case the server never sees it.
        served_by_server = browser_miss and (
            self._proxy is None or self._proxy.request(page))
        request = Request(self.clock, self.agent_id, page,
                          synthetic=not served_by_server, referrer=referrer)
        self.current.append(request)
        if served_by_server:
            self.server.append(Request(self.clock, self.agent_id, page,
                                       referrer=referrer))
        self.landings += 1

    def close_session(self) -> None:
        """End the open session (no-op when it is empty)."""
        if self.current:
            self.sessions.append(Session(self.current))
            self.current = []

    def backtrack_target(self, rng: random.Random,
                         topology: WebGraph) -> str | None:
        """Pick an earlier page of the open session with unvisited out-links.

        The most recently landed page is excluded (LPP is about *previous*
        pages).  Returns ``None`` when no earlier page qualifies.
        """
        candidates = sorted({
            request.page for request in self.current[:-1]
            if self.cache.unvisited(topology.successors(request.page))})
        if not candidates:
            return None
        return rng.choice(candidates)


def simulate_agent(agent_id: str, topology: WebGraph,
                   config: SimulationConfig, rng: random.Random,
                   start_time: float = 0.0,
                   proxy_cache: BrowserCache | None = None) -> AgentTrace:
    """Simulate one agent's complete navigation.

    Args:
        agent_id: user identity stamped on every request.
        topology: the site being browsed.
        config: behavioral probabilities and timing.
        rng: the agent's private random stream.
        start_time: clock value of the agent's first request, seconds.
        proxy_cache: optional shared caching proxy (see
            ``SimulationConfig.proxy_group_size``); pages it holds are
            served without a server request.

    Returns:
        The agent's :class:`AgentTrace`.

    Raises:
        SimulationError: if the topology has no start pages reachable (never
            for graphs built by this library, which validate start pages).
    """
    sampler = StayTimeSampler(config.mean_stay, config.stay_deviation,
                              config.max_stay, rng)
    content_sampler = None
    content_pages: frozenset[str] = frozenset()
    if config.content_fraction > 0:
        content_sampler = StayTimeSampler(
            config.content_mean_stay, config.content_stay_deviation,
            config.max_stay, rng)
        content_pages = select_content_pages(topology,
                                             config.content_fraction)
    state = _AgentState(agent_id, start_time, sampler, content_sampler,
                        content_pages, proxy_cache)
    start_pool = sorted(topology.start_pages)
    if not start_pool:  # defensive; WebGraph already guarantees this
        raise SimulationError("topology has no start pages")

    next_page: str | None = rng.choice(start_pool)
    next_referrer: str | None = None
    while next_page is not None:
        state.land(next_page, next_referrer)
        next_page = None
        next_referrer = None
        if state.landings >= config.max_requests_per_agent:
            break
        if rng.random() < config.stp:  # behavior 4: terminate
            break

        if rng.random() < config.nip:  # behavior 1: new initial page
            if config.nip_revisits:
                jump_pool = [page for page in start_pool
                             if page != state.current[-1].page]
            else:
                jump_pool = state.cache.unvisited(start_pool)
            if not jump_pool:
                break
            state.advance()  # stay on the page being left (before closing)
            state.close_session()
            next_page = rng.choice(jump_pool)  # typed URL: no referrer
            continue

        current_page = state.current[-1].page
        if rng.random() < config.lpp:  # behavior 3: backtrack and branch
            target = state.backtrack_target(rng, topology)
            if target is not None:
                next_page = _branch_from(state, target, topology, rng)
                next_referrer = target
                continue
            # No branchable earlier page: fall through to behavior 2.

        # behavior 2: follow a link to an unvisited page
        onward = state.cache.unvisited(
            sorted(topology.successors(current_page)))
        if onward:
            state.advance()
            next_page = rng.choice(onward)
            next_referrer = current_page
            continue

        # Dead end: no unvisited out-link.  Backtrack if the session still
        # has a branchable page, otherwise the user gives up.
        target = state.backtrack_target(rng, topology)
        if target is not None:
            next_page = _branch_from(state, target, topology, rng)
            next_referrer = target

    state.close_session()
    served = len(state.server)
    return AgentTrace(
        agent_id=agent_id,
        real_sessions=tuple(state.sessions),
        server_requests=tuple(state.server),
        cache_hits=state.cache.hits,
        proxy_hits=state.cache.misses - served,
        cache_misses=served,
    )


def _branch_from(state: _AgentState, target: str, topology: WebGraph,
                 rng: random.Random) -> str:
    """Behavior-3 mechanics: close the session, land on ``target`` via the
    cache, and return the unvisited successor the user branches to.

    ``target`` must have at least one unvisited successor (guaranteed by
    :meth:`_AgentState.backtrack_target`).
    """
    state.advance()  # stay on the page being left (before closing)
    state.close_session()
    # Landing on the target is always a cache hit (it was visited earlier);
    # the browser back/forward buttons send no referrer.
    state.land(target, referrer=None)
    onward = state.cache.unvisited(sorted(topology.successors(target)))
    if not onward:  # defensive; backtrack_target vetted this
        raise SimulationError(
            f"backtrack target {target!r} lost its unvisited successors")
    state.advance()
    return rng.choice(onward)
