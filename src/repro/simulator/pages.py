"""Auxiliary/content page classification for the simulator.

Transaction-identification methods (Cooley et al., 1999) divide pages into
*auxiliary* pages (navigation scaffolding users pass through quickly) and
*content* pages (what they came for, where they linger).  The simulator
realizes that model by designating a deterministic subset of the topology
as content pages and drawing their stay times from a second, slower
distribution (see :class:`~repro.simulator.config.SimulationConfig`).

The selection heuristic mirrors real sites: pages with *few out-links*
tend to be content (articles, product pages), hubs with many out-links are
navigation.  Ties are broken by page id, and start pages are never content
(a site's entry points are navigational by construction).
"""

from __future__ import annotations

from repro.exceptions import SimulationError
from repro.topology.graph import WebGraph

__all__ = ["select_content_pages"]


def select_content_pages(topology: WebGraph,
                         fraction: float) -> frozenset[str]:
    """Choose the content-page subset of ``topology``.

    Args:
        topology: the site.
        fraction: target fraction of pages (rounded; start pages are
            excluded from candidacy, so the realized fraction can be lower
            on tiny sites).

    Returns:
        The content pages: the non-start pages with the fewest out-links.

    Raises:
        SimulationError: for a fraction outside [0, 1].
    """
    if not 0 <= fraction <= 1:
        raise SimulationError(
            f"content fraction must be in [0, 1], got {fraction}")
    if fraction == 0:
        return frozenset()
    candidates = sorted(
        (page for page in topology.pages
         if page not in topology.start_pages),
        key=lambda page: (topology.out_degree(page), page))
    count = min(len(candidates), round(fraction * topology.page_count))
    return frozenset(candidates[:count])
