"""Adversarial traffic generators: crawlers and NAT-aggregated users.

Meiss et al. ("What's in a Session", PAPERS.md) document the two traffic
shapes that break session reconstruction's assumptions in real logs:

* **crawlers** walk the site on a fixed cadence and never go idle, so a
  time-rule session for them never closes — an ungoverned per-user
  buffer grows without bound;
* **NAT/proxy addresses** aggregate many independent humans behind one
  client IP, so the "one user key = one user" assumption fails and the
  merged stream looks like a single hyperactive user.

This module synthesizes both deterministically, reusing the simulator's
seeding discipline (a private :class:`random.Random` derived from the
seed and the agent identity, so populations are prefix-stable).  It is
the minimal adversarial scenario pack the resource governor
(:mod:`repro.streaming.governor`) and bench A19 need; the pipelines
consume the output like any other request stream.
"""

from __future__ import annotations

import random
from collections import deque

from repro.exceptions import SimulationError
from repro.sessions.model import Request
from repro.simulator.agent import simulate_agent
from repro.simulator.config import SimulationConfig
from repro.topology.graph import WebGraph

__all__ = [
    "simulate_crawler",
    "simulate_nat_pool",
    "adversarial_workload",
]


def simulate_crawler(crawler_id: str, topology: WebGraph, *,
                     requests: int = 1000, interval: float = 5.0,
                     start_time: float = 0.0) -> tuple[Request, ...]:
    """A breadth-first crawler that never goes idle.

    Walks the real link graph from the start pages on a fixed cadence —
    every inter-request gap is exactly ``interval`` seconds, so as long
    as ``interval`` stays below ρ the crawler's candidate session never
    closes by the gap rule.  When the frontier is exhausted the crawl
    restarts (a full re-crawl pass), exactly like production bots.
    Deterministic: same arguments, same trace.

    Args:
        crawler_id: the user key stamped on every request.
        topology: the site being crawled.
        requests: trace length.
        interval: seconds between consecutive fetches (keep it under the
            reconstruction ρ to model the never-idle pathology).
        start_time: timestamp of the first fetch.

    Raises:
        SimulationError: for a non-positive ``requests`` or ``interval``.
    """
    if requests <= 0:
        raise SimulationError(f"requests must be positive, got {requests}")
    if interval <= 0:
        raise SimulationError(f"interval must be positive, got {interval}")
    trace: list[Request] = []
    clock = start_time
    queue: deque[tuple[str, str | None]] = deque()
    seen: set[str] = set()
    while len(trace) < requests:
        if not queue:
            seen.clear()
            starts = sorted(topology.start_pages)
            queue.extend((page, None) for page in starts)
            seen.update(starts)
        page, referrer = queue.popleft()
        trace.append(Request(clock, crawler_id, page, referrer=referrer))
        clock += interval
        for successor in sorted(topology.successors(page)):
            if successor not in seen:
                seen.add(successor)
                queue.append((successor, page))
    return tuple(trace)


def simulate_nat_pool(nat_id: str, topology: WebGraph,
                      config: SimulationConfig | None = None, *,
                      humans: int = 16, seed: int = 0,
                      start_spread: float = 600.0) -> tuple[Request, ...]:
    """Independent human agents whose requests share one NAT user key.

    Runs ``humans`` ordinary :func:`~repro.simulator.agent.simulate_agent`
    walks (each with its own derived RNG, so the pool is prefix-stable in
    ``humans``), rewrites every server request's ``user_id`` to
    ``nat_id``, and merges the traces in timestamp order — the
    aggregated, interleaved stream a reconstruction pipeline actually
    sees from a NAT or proxy address.

    Args:
        nat_id: the shared client-IP user key.
        topology: the site being browsed.
        config: per-human behavior (paper defaults when omitted).
        humans: number of independent users behind the address.
        seed: base seed; human ``i`` uses ``Random(f"nat:{seed}:{nat_id}:{i}")``.
        start_spread: each human starts at a uniform offset in
            ``[0, start_spread)`` seconds, so their sessions interleave.

    Raises:
        SimulationError: for a non-positive ``humans`` or negative
            ``start_spread``.
    """
    if humans <= 0:
        raise SimulationError(f"humans must be positive, got {humans}")
    if start_spread < 0:
        raise SimulationError(
            f"start_spread must be >= 0, got {start_spread}")
    resolved = config if config is not None else SimulationConfig()
    merged: list[Request] = []
    for index in range(humans):
        rng = random.Random(f"nat:{seed}:{nat_id}:{index}")
        start = start_spread * rng.random()
        trace = simulate_agent(f"{nat_id}/h{index}", topology, resolved,
                               rng, start_time=start)
        merged.extend(
            Request(request.timestamp, nat_id, request.page,
                    referrer=request.referrer)
            for request in trace.server_requests)
    return tuple(sorted(merged))


def adversarial_workload(topology: WebGraph, *,
                         crawlers: int = 2, crawler_requests: int = 400,
                         crawler_interval: float = 5.0,
                         nat_pools: int = 2, humans_per_pool: int = 12,
                         normal_agents: int = 8,
                         config: SimulationConfig | None = None,
                         seed: int = 0) -> tuple[Request, ...]:
    """A mixed crawler + NAT + normal-user stream, sorted by time.

    The standard workload for governor tests, ``repro chaos
    --overload-selftest`` and bench A19: never-idle crawlers, aggregated
    NAT pools, and a background of well-behaved agents, all
    deterministically derived from ``seed`` and merged into one
    chronological request stream.
    """
    resolved = config if config is not None else SimulationConfig()
    requests: list[Request] = []
    for index in range(crawlers):
        requests.extend(simulate_crawler(
            f"crawler-{index}", topology, requests=crawler_requests,
            interval=crawler_interval,
            start_time=float(index)))
    for index in range(nat_pools):
        requests.extend(simulate_nat_pool(
            f"nat-{index}", topology, resolved,
            humans=humans_per_pool, seed=seed))
    for index in range(normal_agents):
        rng = random.Random(f"adversarial:{seed}:agent:{index}")
        trace = simulate_agent(f"user-{index}", topology, resolved, rng,
                               start_time=600.0 * rng.random())
        requests.extend(trace.server_requests)
    return tuple(sorted(requests))
