"""Injectable *execution* faults: crashed, hung and slow workers.

The fault models in :mod:`repro.faults.injectors` corrupt **data**; the
models here break **execution** — the worker process dies mid-chunk, hangs
past its deadline, or a checkpoint file rots on disk.  They exist so the
recovery machinery in :mod:`repro.parallel.supervisor` and
:mod:`repro.parallel.checkpoint` can be exercised deterministically from
tests, from CI and from ``repro chaos --exec-selftest``, instead of
waiting for real hardware to misbehave.

Faults are armed through the :data:`EXEC_FAULTS_ENV` environment variable
(environment propagates into pool workers under both ``fork`` and
``spawn``), normally via the :func:`use_execution_faults` context manager::

    with use_execution_faults("crash-chunk:2", "slow-chunk:0:0.1"):
        parallel_map(fn, items, workers=4, supervision=RetryPolicy())

Each spec is ``kind:index[:seconds[:attempts]]``:

* ``crash-chunk:N`` — the worker executing chunk ``N`` dies with
  ``os._exit`` (the pool observes ``BrokenProcessPool``);
* ``hang-chunk:N[:S]`` — chunk ``N`` sleeps ``S`` seconds (default 30)
  before doing any work, tripping the supervisor's deadline;
* ``slow-chunk:N[:S]`` — chunk ``N`` is delayed ``S`` seconds (default
  0.25) but completes — exercises deadline headroom, not recovery;
* ``corrupt-checkpoint:N`` — the ``N``-th checkpoint unit written by
  :class:`~repro.parallel.checkpoint.CheckpointStore` has its integrity
  digest flipped after the atomic rename, so validation must catch it;
* ``mem-pressure:N[:F]`` — from feed ordinal ``N`` on, a
  :class:`~repro.streaming.governor.GovernedStreamingReconstructor`
  constructed under the armed plan shrinks its effective memory budget
  by factor ``F`` (default 0.5) — models the co-tenant that eats half
  the headroom mid-stream;
* ``burst:N[:C]`` — the :func:`run_overload_selftest` driver injects
  ``C`` (default 64) extra same-timestamp requests from a synthetic
  burst user at feed ordinal ``N`` — models a thundering-herd arrival.

Three further kinds target the *sharded* streaming runtime
(:mod:`repro.streaming.sharded`), where the unit of failure is a whole
shard worker rather than a chunk.  For these the spec fields are reused:
``index`` is the **shard**, ``seconds`` is the worker-local **event
ordinal** at which the fault fires, and ``attempts`` counts worker
*incarnations* (so ``attempts=2`` kills the original worker and its
first respawn):

* ``kill-worker:SHARD[:ORDINAL[:ATTEMPTS]]`` — the shard worker dies
  with ``os._exit`` just before processing its ``ORDINAL``-th event
  (default 1, i.e. immediately);
* ``wedge-worker:SHARD[:ORDINAL]`` — the worker stops making progress
  (sleeps far past any lease) without dying, so only the coordinator's
  lease supervision can detect it;
* ``drop-pipe:SHARD[:ORDINAL]`` — the worker abruptly closes both of
  its pipe ends and exits cleanly, modelling a torn transport rather
  than a dead process.

``attempts`` (default 1) is the number of *attempts* the fault fires for:
with the default, a chunk crashes on its first attempt and succeeds on
retry — the canonical transient fault.  Worker faults only ever fire
inside a pool worker process (never in the parent, never in threads), so
the supervisor's serial-degrade path is immune by construction.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = [
    "EXEC_FAULTS_ENV",
    "EXEC_FAULT_KINDS",
    "ExecutionFault",
    "parse_exec_fault",
    "parse_exec_fault_plan",
    "use_execution_faults",
    "active_exec_faults",
    "inject_chunk_faults",
    "inject_shard_fault",
    "corrupt_checkpoint_file",
    "run_overload_selftest",
    "run_shard_selftest",
]

#: environment variable carrying the armed fault plan into pool workers.
EXEC_FAULTS_ENV = "REPRO_EXEC_FAULTS"

#: the recognized execution-fault kinds.
EXEC_FAULT_KINDS = ("crash-chunk", "hang-chunk", "slow-chunk",
                    "corrupt-checkpoint", "mem-pressure", "burst",
                    "kill-worker", "wedge-worker", "drop-pipe")

#: default sleep, per kind, when the spec names no explicit duration.
#: (For ``mem-pressure`` the field is a budget-shrink factor; for
#: ``burst`` it is a request count; for the shard-worker kinds it is the
#: worker-local event ordinal — the spec grammar is shared.)
_DEFAULT_SECONDS = {"hang-chunk": 30.0, "slow-chunk": 0.25,
                    "mem-pressure": 0.5, "burst": 64.0,
                    "kill-worker": 1.0, "wedge-worker": 1.0,
                    "drop-pipe": 1.0}

#: how long a wedged shard worker sleeps — far past any sane lease, so
#: only the coordinator's lease supervision ends it.
_WEDGE_SECONDS = 3600.0

#: exit status of a fault-crashed worker (distinctive in core dumps/strace).
_CRASH_EXIT_STATUS = 23


@dataclass(frozen=True, slots=True)
class ExecutionFault:
    """One armed execution fault.

    Attributes:
        kind: one of :data:`EXEC_FAULT_KINDS`.
        index: the chunk index (or checkpoint-unit ordinal) it targets.
        seconds: sleep duration for ``hang-chunk``/``slow-chunk``.
        attempts: the fault fires while ``attempt < attempts`` (so the
            default of 1 models a transient fault that a single retry
            clears; a value above ``max_retries`` models a hard fault).
    """

    kind: str
    index: int
    seconds: float = 0.0
    attempts: int = 1

    def encode(self) -> str:
        """The spec string :func:`parse_exec_fault` parses back."""
        return f"{self.kind}:{self.index}:{self.seconds:g}:{self.attempts}"

    def fires(self, kind: str, index: int, attempt: int) -> bool:
        return (self.kind == kind and self.index == index
                and attempt < self.attempts)


def parse_exec_fault(text: str) -> ExecutionFault:
    """Parse one ``kind:index[:seconds[:attempts]]`` spec.

    Raises:
        ConfigurationError: for an unknown kind or malformed numbers.
    """
    parts = text.strip().split(":")
    kind = parts[0]
    if kind not in EXEC_FAULT_KINDS:
        known = ", ".join(EXEC_FAULT_KINDS)
        raise ConfigurationError(
            f"unknown execution fault {kind!r} (known: {known})")
    if len(parts) < 2 or len(parts) > 4:
        raise ConfigurationError(
            f"execution fault spec {text!r} must be "
            f"kind:index[:seconds[:attempts]]")
    try:
        index = int(parts[1])
        seconds = (float(parts[2]) if len(parts) > 2
                   else _DEFAULT_SECONDS.get(kind, 0.0))
        attempts = int(parts[3]) if len(parts) > 3 else 1
    except ValueError as exc:
        raise ConfigurationError(
            f"malformed execution fault spec {text!r}") from exc
    if index < 0 or seconds < 0 or attempts < 1:
        raise ConfigurationError(
            f"execution fault spec {text!r} has out-of-range fields")
    return ExecutionFault(kind, index, seconds, attempts)


def parse_exec_fault_plan(text: str) -> tuple[ExecutionFault, ...]:
    """Parse a ``;``-separated plan string (the env-var encoding)."""
    return tuple(parse_exec_fault(part)
                 for part in text.split(";") if part.strip())


def active_exec_faults() -> tuple[ExecutionFault, ...]:
    """The currently armed faults (empty when the env var is unset)."""
    text = os.environ.get(EXEC_FAULTS_ENV, "")
    if not text:
        return ()
    return parse_exec_fault_plan(text)


@contextmanager
def use_execution_faults(*specs: str | ExecutionFault) -> Iterator[None]:
    """Arm execution faults for the duration of the block.

    Accepts spec strings or :class:`ExecutionFault` objects; the previous
    environment value is restored on exit.  Pools spawned inside the block
    inherit the plan; pools spawned before it do not re-read it per chunk
    dispatch from the parent side, but workers consult the environment
    they were created with, so arm faults *before* creating the pool.
    """
    plan = [fault if isinstance(fault, ExecutionFault)
            else parse_exec_fault(fault) for fault in specs]
    previous = os.environ.get(EXEC_FAULTS_ENV)
    os.environ[EXEC_FAULTS_ENV] = ";".join(f.encode() for f in plan)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(EXEC_FAULTS_ENV, None)
        else:
            os.environ[EXEC_FAULTS_ENV] = previous


def _in_worker_process() -> bool:
    """True only inside a multiprocessing child (never the main process)."""
    return multiprocessing.parent_process() is not None


def inject_chunk_faults(chunk_index: int, attempt: int) -> None:
    """Apply any armed worker fault matching ``(chunk_index, attempt)``.

    Called by the engine at the top of every chunk execution.  Only fires
    inside a pool *worker process*: in the parent (serial mode, thread
    mode, or the supervisor's serial-degrade path) it is a no-op, so an
    armed crash fault can never take down the supervising process.
    """
    faults = active_exec_faults()
    if not faults or not _in_worker_process():
        return
    for fault in faults:
        if fault.fires("slow-chunk", chunk_index, attempt):
            time.sleep(fault.seconds)
        elif fault.fires("hang-chunk", chunk_index, attempt):
            time.sleep(fault.seconds)
        elif fault.fires("crash-chunk", chunk_index, attempt):
            # a real crash: no exception, no cleanup, no exit handlers —
            # the pool parent observes BrokenProcessPool.
            os._exit(_CRASH_EXIT_STATUS)


def inject_shard_fault(shard: int, ordinal: int,
                       incarnation: int) -> str | None:
    """Apply any armed shard-worker fault matching this processing point.

    Called by the sharded streaming worker just before processing the
    event with worker-local 1-based ``ordinal``.  ``incarnation`` is 0
    for the originally spawned worker and increments on every respawn,
    and plays the role the retry *attempt* plays for chunk faults — a
    fault with ``attempts=2`` fires for incarnations 0 and 1.

    ``kill-worker`` exits the process immediately (no cleanup, exit
    status :data:`_CRASH_EXIT_STATUS`); ``wedge-worker`` sleeps far past
    any lease so the coordinator must detect the stall itself.
    ``drop-pipe`` cannot be applied here — the pipe file descriptors
    belong to the caller — so it is *reported*: the function returns the
    string ``"drop-pipe"`` and the worker tears its transport down.
    Returns ``None`` when nothing fires.  Only ever fires inside a
    worker process, like :func:`inject_chunk_faults`.
    """
    faults = active_exec_faults()
    if not faults or not _in_worker_process():
        return None
    for fault in faults:
        if int(fault.seconds) != ordinal:
            continue
        if fault.fires("kill-worker", shard, incarnation):
            os._exit(_CRASH_EXIT_STATUS)
        if fault.fires("wedge-worker", shard, incarnation):
            time.sleep(_WEDGE_SECONDS)
        if fault.fires("drop-pipe", shard, incarnation):
            return "drop-pipe"
    return None


def corrupt_checkpoint_file(path: str, ordinal: int) -> bool:
    """Corrupt the checkpoint unit at ``path`` if a fault targets it.

    Called by :class:`~repro.parallel.checkpoint.CheckpointStore` after
    every atomic unit write with that unit's write ordinal.  When a
    ``corrupt-checkpoint:N`` fault matches, the stored integrity digest is
    rewritten to an obviously-wrong value (valid JSON, wrong hash) —
    exactly the damage a torn block or bit rot produces from the reader's
    point of view.  Returns ``True`` when the file was corrupted.
    """
    import json

    for fault in active_exec_faults():
        if fault.fires("corrupt-checkpoint", ordinal, 0):
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
            document["digest"] = "0" * 64
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            return True
    return False


def _selftest_work(x: int, seed: int = 0) -> int:
    """Deterministic, CPU-trivial work item for the exec selftest."""
    value = (x + seed) & 0xFFFFFFFF
    for _ in range(8):
        value = (value * 2654435761 + 1) & 0xFFFFFFFF
    return value


def run_exec_selftest(specs: list[str], *, items: int = 64, workers: int = 2,
                      seed: int = 0, policy=None) -> dict:
    """Run the execution-fault recovery selftest (``repro chaos``'s body).

    Arms ``specs``, fans a trivial deterministic workload out through the
    supervised engine, and checks the recovered output is byte-identical
    to the serial loop.  Returns a plain dict: ``identical`` (bool),
    ``items``, ``chunks``, ``stats`` (supervision counters) and
    ``failures`` (structured :class:`ChunkFailure` dicts).
    """
    import functools

    from repro.parallel.supervisor import RetryPolicy, supervised_map

    if policy is None:
        policy = RetryPolicy(max_retries=2, deadline=5.0)
    work = functools.partial(_selftest_work, seed=seed)
    expected = [work(x) for x in range(items)]
    with use_execution_faults(*specs):
        outcome = supervised_map(work, range(items), workers=workers,
                                 mode="process", policy=policy)
    return {
        "identical": outcome.results == expected,
        "items": items,
        "chunks": outcome.stats.chunks,
        "stats": {
            "retries": outcome.stats.retries,
            "respawns": outcome.stats.respawns,
            "deadline_hits": outcome.stats.deadline_hits,
            "crashes": outcome.stats.crashes,
            "degraded_serial": outcome.stats.degraded_serial,
            "skipped": outcome.stats.skipped,
        },
        "failures": [failure.to_dict() for failure in outcome.failures],
    }


def run_overload_selftest(specs: list[str], *, budget: int = 48 * 1024,
                          policy: str = "evict", seed: int = 0,
                          spill_dir: str | None = None) -> dict:
    """Run the overload-degradation selftest (``repro chaos``'s body).

    Generates an adversarial crawler + NAT workload, arms ``specs``
    (typically ``mem-pressure`` and ``burst`` faults), streams it
    through a governed Smart-SRA pipeline under ``budget`` bytes, and
    checks the degradation contract end to end: peak tracked state stays
    under the budget, the stats ledger reconciles, and every emitted
    session satisfies the five Smart-SRA invariants.  Returns a plain
    dict with the three verdicts plus the degradation counters.
    """
    from repro.core.config import SmartSRAConfig
    from repro.diffcheck.invariants import verify_sessions
    from repro.sessions.model import Request
    from repro.simulator.adversarial import adversarial_workload
    from repro.streaming.governor import GovernorConfig
    from repro.streaming.pipeline import streaming_smart_sra
    from repro.topology.generators import random_site

    topology = random_site(n_pages=120, avg_out_degree=6.0, seed=seed)
    config = SmartSRAConfig()
    workload = adversarial_workload(
        topology, crawlers=2, crawler_requests=600, crawler_interval=5.0,
        nat_pools=2, humans_per_pool=10, normal_agents=6, seed=seed)
    governor = GovernorConfig(
        memory_budget=budget, per_user_cap=64, overload_policy=policy,
        spill_dir=spill_dir, quarantine_after=2, quarantine_cap=256)
    with use_execution_faults(*specs):
        bursts = {fault.index: max(1, int(fault.seconds))
                  for fault in active_exec_faults()
                  if fault.kind == "burst"}
        pipeline = streaming_smart_sra(topology, config,
                                       governor=governor,
                                       late_policy="drop")
        sessions = []
        for ordinal, request in enumerate(workload):
            extra = bursts.get(ordinal, 0)
            pages = sorted(topology.start_pages)
            for i in range(extra):   # thundering herd at this instant
                sessions.extend(pipeline.feed(Request(
                    request.timestamp, "burst-bot",
                    pages[i % len(pages)])))
            sessions.extend(pipeline.feed(request))
        sessions.extend(pipeline.flush())
    stats = pipeline.stats()
    violations = verify_sessions(sessions, topology, config)
    return {
        "bounded": stats.peak_tracked_bytes <= budget,
        "reconciled": stats.reconciles(),
        "invariant_clean": not violations,
        "violations": [v.to_dict() for v in violations[:10]],
        "budget": budget,
        "policy": policy,
        "requests": stats.fed_requests,
        "sessions": len(sessions),
        "stats": {
            "peak_tracked_bytes": stats.peak_tracked_bytes,
            "evictions": stats.evictions,
            "evicted_requests": stats.evicted_requests,
            "shed_requests": stats.shed_requests,
            "spill_writes": stats.spill_writes,
            "spill_restores": stats.spill_restores,
            "spill_lost": stats.spill_lost,
            "quarantined_users": stats.quarantined_users,
            "quarantine_flushes": stats.quarantine_flushes,
            "cap_strikes": stats.cap_strikes,
            "late_dropped": stats.late_dropped,
        },
    }


def run_shard_selftest(specs: list[str] | None = None, *, shards: int = 2,
                       seed: int = 0, lease: float = 5.0) -> dict:
    """Run the sharded-failover selftest (``repro chaos --shard-selftest``).

    Streams an adversarial crawler + NAT workload through the sharded
    runtime with worker faults armed (default: two ``kill-worker``
    faults, one per shard) and checks the crash-safety contract end to
    end: the sealed output is byte-identical — by canonical digest — to
    the serial governed run of the same workload, the sharded ledger
    reconciles (fed == routed + replayed + shed), and at least one
    failover actually happened when a fault was armed.  Returns a plain
    dict with the three verdicts plus the runtime counters.
    """
    from repro.sessions.model import SessionSet
    from repro.simulator.adversarial import adversarial_workload
    from repro.streaming.governor import GovernorConfig
    from repro.streaming.pipeline import streaming_smart_sra
    from repro.streaming.sharded import (ShardedConfig,
                                         ShardedStreamingRuntime)
    from repro.topology.generators import random_site

    topology = random_site(n_pages=100, avg_out_degree=5.0, seed=seed)
    workload = adversarial_workload(
        topology, crawlers=2, crawler_requests=300, crawler_interval=5.0,
        nat_pools=2, humans_per_pool=8, normal_agents=6, seed=seed)
    # generous budget: per-user caps and quarantine still exercise the
    # governor, but global eviction (which is shard-order dependent)
    # never fires, keeping the byte-identity contract in scope.
    governor = GovernorConfig(memory_budget=1 << 30, per_user_cap=64,
                              quarantine_after=2, quarantine_cap=256)

    serial = streaming_smart_sra(topology, governor=governor)
    sessions = serial.feed_many(workload)
    sessions.extend(serial.flush())
    expected = SessionSet(sessions).canonical_digest()

    if specs is None:
        specs = ["kill-worker:0:40", f"kill-worker:{shards - 1}:60"]
    shard_kinds = ("kill-worker", "wedge-worker", "drop-pipe")
    armed = any(spec.split(":", 1)[0] in shard_kinds for spec in specs)
    with use_execution_faults(*specs):
        runtime = ShardedStreamingRuntime(
            topology, governor=governor,
            sharded=ShardedConfig(shards=shards, ack_interval=16,
                                  lease=lease))
        result = runtime.run(workload)
    stats = result.stats
    disturbed = stats.failovers + stats.shed_shards
    return {
        "identical": result.sessions.canonical_digest() == expected,
        "reconciled": stats.reconciles(),
        "recovered": (disturbed >= 1) if armed else True,
        "specs": list(specs),
        "shards": shards,
        "requests": stats.fed,
        "sessions": len(result.sessions),
        "stats": {
            "routed": stats.routed,
            "replayed": stats.replayed,
            "shed": stats.shed,
            "failovers": stats.failovers,
            "respawns": stats.respawns,
            "wedged": stats.wedged,
            "worker_deaths": stats.worker_deaths,
            "shed_shards": stats.shed_shards,
        },
    }
