"""Deterministic, seedable fault models for access-log line streams.

Each injector is a wrapper over any iterable of log lines that reproduces
one class of real-world log degradation: torn writes, mojibake, double
logging, delivery reordering, skewed server clocks, rotation artifacts and
crawler pollution.  All randomness flows from ``random.Random`` instances
seeded with strings (which hash via SHA-512, not the per-process salted
``hash()``), so a fixed seed yields a byte-identical corrupted stream on
every run, on every machine — degraded-input tests can assert exact
outputs.

Lines are handled *without* trailing newlines: injectors strip one
``"\\n"`` from each incoming line and never emit one.  Rates are per-line
probabilities in ``[0, 1]``.
"""

from __future__ import annotations

import heapq
import random
import string
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator

from repro.exceptions import ConfigurationError, LogFormatError
from repro.logs.clf import (
    CLFRecord,
    format_clf_line,
    format_combined_line,
    parse_log_line,
)

__all__ = [
    "FaultInjector",
    "TruncateLines",
    "GarbleLines",
    "EncodingErrors",
    "DuplicateLines",
    "ReorderLines",
    "ClockSkew",
    "RotationSplit",
    "BotTraffic",
]

#: characters used to overwrite garbled spans (printable, so the damage
#: survives encoding round trips byte-identically).
_GARBAGE_ALPHABET = string.ascii_letters + string.digits + "!#%&*<>@~"


class FaultInjector(ABC):
    """One deterministic fault model over a stream of log lines.

    Args:
        rate: per-line probability of applying the fault, in ``[0, 1]``.
        seed: base seed; combined with the injector's :attr:`name` so two
            different models given the same seed draw independent streams.

    Raises:
        ConfigurationError: if ``rate`` is outside ``[0, 1]``.
    """

    #: registry key and display name of the fault model.
    name: str = "abstract"

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"fault rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        self._rng = random.Random(f"{seed}:{self.name}")

    @abstractmethod
    def apply(self, lines: Iterable[str]) -> Iterator[str]:
        """Yield the stream with this fault model applied."""

    def __call__(self, lines: Iterable[str]) -> Iterator[str]:
        """Alias for :meth:`apply`, so injectors compose like functions."""
        return self.apply(lines)

    def _strip(self, lines: Iterable[str]) -> Iterator[str]:
        for line in lines:
            yield line.rstrip("\n")


class TruncateLines(FaultInjector):
    """Cut a line short at a random interior position (torn write).

    The classic artifact of a server crash or a full disk: the line simply
    stops mid-field.  A truncated combined-format line may still parse as
    plain CLF when the cut lands after the CLF body — exactly as real
    parsers experience it.
    """

    name = "truncate"

    def apply(self, lines: Iterable[str]) -> Iterator[str]:
        for line in self._strip(lines):
            if len(line) > 1 and self._rng.random() < self.rate:
                yield line[:self._rng.randint(1, len(line) - 1)]
            else:
                yield line


class GarbleLines(FaultInjector):
    """Overwrite a random span of a line with printable garbage."""

    name = "garble"

    def apply(self, lines: Iterable[str]) -> Iterator[str]:
        for line in self._strip(lines):
            if len(line) > 2 and self._rng.random() < self.rate:
                start = self._rng.randint(0, len(line) - 2)
                length = self._rng.randint(1, min(12, len(line) - start))
                junk = "".join(self._rng.choice(_GARBAGE_ALPHABET)
                               for _ in range(length))
                yield line[:start] + junk + line[start + length:]
            else:
                yield line


class EncodingErrors(FaultInjector):
    """Inject decoding artifacts: NUL bytes and U+FFFD replacements.

    Simulates a log that was written in one encoding and read in another:
    half the hits replace a character with ``'\\ufffd'`` (which often still
    parses, just with a mangled field — the insidious case), half insert a
    control byte (``'\\x00'``), which never parses.
    """

    name = "encoding"

    def apply(self, lines: Iterable[str]) -> Iterator[str]:
        for line in self._strip(lines):
            if line and self._rng.random() < self.rate:
                position = self._rng.randint(0, len(line) - 1)
                if self._rng.random() < 0.5:
                    yield line[:position] + "�" + line[position + 1:]
                else:
                    yield line[:position] + "\x00" + line[position:]
            else:
                yield line


class DuplicateLines(FaultInjector):
    """Emit a line twice in a row (double logging / replayed delivery)."""

    name = "duplicate"

    def apply(self, lines: Iterable[str]) -> Iterator[str]:
        for line in self._strip(lines):
            yield line
            if self._rng.random() < self.rate:
                yield line


class ReorderLines(FaultInjector):
    """Shuffle lines out of order by a *bounded* number of positions.

    Models multi-worker log shippers that interleave slightly out of
    order.  Each delayed line gets a jittered sort key ``index + jitter``
    with ``jitter`` in ``[1, window]``; emitting in key order guarantees
    no line ends up more than ``window`` positions from where it started —
    so a reorder buffer of the same bound provably restores the exact
    original order.

    Args:
        rate: probability a line is delayed (jittered).
        seed: see :class:`FaultInjector`.
        window: maximum displacement, in lines (≥ 1).
    """

    name = "reorder"

    def __init__(self, rate: float, seed: int = 0, window: int = 8) -> None:
        super().__init__(rate, seed)
        if window < 1:
            raise ConfigurationError(f"reorder window must be >= 1, "
                                     f"got {window}")
        self.window = window

    def apply(self, lines: Iterable[str]) -> Iterator[str]:
        heap: list[tuple[int, int, str]] = []   # (jittered key, index, line)
        for index, line in enumerate(self._strip(lines)):
            if self._rng.random() < self.rate:
                key = index + self._rng.randint(1, self.window)
            else:
                key = index
            heapq.heappush(heap, (key, index, line))
            # every future line's key is at least index + 1, so anything
            # keyed strictly below that can no longer be preceded.
            while heap and heap[0][0] < index + 1:
                yield heapq.heappop(heap)[2]
        while heap:
            yield heapq.heappop(heap)[2]


class ClockSkew(FaultInjector):
    """Shift every timestamp of some hosts by a per-host constant offset.

    Models a fleet of frontends whose clocks drift: each affected host gets
    a deterministic offset in ``[-max_skew, +max_skew]`` seconds (derived
    from the seed and the host name alone, so the same host always skews
    identically).  Unparsable lines pass through untouched.

    Args:
        rate: fraction of hosts affected.
        seed: see :class:`FaultInjector`.
        max_skew: largest absolute clock offset, in seconds.
    """

    name = "clock-skew"

    def __init__(self, rate: float, seed: int = 0,
                 max_skew: float = 300.0) -> None:
        super().__init__(rate, seed)
        if max_skew < 0:
            raise ConfigurationError(
                f"max_skew must be >= 0, got {max_skew}")
        self.max_skew = max_skew
        self._offsets: dict[str, float] = {}

    def _offset_for(self, host: str) -> float:
        if host not in self._offsets:
            draw = random.Random(f"{self.seed}:{self.name}:{host}")
            if draw.random() < self.rate:
                offset = draw.uniform(-self.max_skew, self.max_skew)
            else:
                offset = 0.0
            self._offsets[host] = offset
        return self._offsets[host]

    def apply(self, lines: Iterable[str]) -> Iterator[str]:
        for line in self._strip(lines):
            try:
                record = parse_log_line(line)
            except LogFormatError:
                yield line
                continue
            offset = self._offset_for(record.host)
            if offset == 0.0:
                yield line
                continue
            skewed = CLFRecord(
                host=record.host,
                timestamp=max(0.0, record.timestamp + offset),
                method=record.method, url=record.url,
                protocol=record.protocol, status=record.status,
                size=record.size, ident=record.ident,
                authuser=record.authuser, referrer=record.referrer,
                user_agent=record.user_agent)
            if record.referrer is not None or record.user_agent is not None:
                yield format_combined_line(skewed)
            else:
                yield format_clf_line(skewed)


class RotationSplit(FaultInjector):
    """Tear a line into two lines at a random point (rotation artifact).

    Reproduces what a naive rotation-set reader sees when a copy-truncate
    rotation lands mid-write: the record's head ends one "line", its tail
    starts the next.  Both halves are (almost always) malformed.
    """

    name = "rotation-split"

    def apply(self, lines: Iterable[str]) -> Iterator[str]:
        for line in self._strip(lines):
            if len(line) > 2 and self._rng.random() < self.rate:
                cut = self._rng.randint(1, len(line) - 1)
                yield line[:cut]
                yield line[cut:]
            else:
                yield line


class BotTraffic(FaultInjector):
    """Interleave synthetic crawler requests into the stream.

    After each input line, with probability ``rate``, a well-formed
    combined-format hit from a bot host (``203.0.113.x``, the TEST-NET-3
    block) is inserted at the event time of the last parsable line.  Bot
    lines advertise a crawler User-Agent, so behavioral *and* signature
    robot filters each get a shot at them.
    """

    name = "bot"

    #: User-Agent advertised by the injected crawler.
    USER_AGENT = "ChaosBot/1.0 (+http://chaos.example/bot)"

    def apply(self, lines: Iterable[str]) -> Iterator[str]:
        last_timestamp = 0.0
        for line in self._strip(lines):
            try:
                last_timestamp = parse_log_line(line).timestamp
            except LogFormatError:
                pass
            yield line
            if self._rng.random() < self.rate:
                bot = CLFRecord(
                    host=f"203.0.113.{self._rng.randint(1, 254)}",
                    timestamp=last_timestamp,
                    method="GET",
                    url=f"/P{self._rng.randint(0, 99)}.html",
                    protocol="HTTP/1.1",
                    status=200,
                    size=self._rng.randint(200, 4000),
                    user_agent=self.USER_AGENT)
                yield format_combined_line(bot)
