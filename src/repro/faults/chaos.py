"""Composing fault models into a chaos pipeline.

The unit of composition is the line stream: every injector maps an
iterable of lines to an iterable of lines, so a chaos pipeline is just a
left-to-right chain.  :func:`chaos_stream` builds the chain from
``(name, rate)`` specs — the same specs the ``repro chaos`` CLI command
parses from ``--fault name:rate`` flags — and keeps the whole thing lazy,
so arbitrarily large logs flow through in constant memory.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.exceptions import ConfigurationError
from repro.faults.injectors import (
    BotTraffic,
    ClockSkew,
    DuplicateLines,
    EncodingErrors,
    FaultInjector,
    GarbleLines,
    ReorderLines,
    RotationSplit,
    TruncateLines,
)

__all__ = [
    "FAULT_MODELS",
    "DEFAULT_CHAOS_RATE",
    "build_injectors",
    "chaos_stream",
    "parse_fault_spec",
]

#: registry of fault-model name → injector class, in application order.
FAULT_MODELS: dict[str, type[FaultInjector]] = {
    cls.name: cls
    for cls in (TruncateLines, GarbleLines, EncodingErrors, DuplicateLines,
                ReorderLines, ClockSkew, RotationSplit, BotTraffic)
}

#: per-model rate used when a spec (or the CLI) names no explicit rate.
DEFAULT_CHAOS_RATE = 0.02


def parse_fault_spec(text: str) -> tuple[str, float]:
    """Parse one ``name`` or ``name:rate`` spec string.

    Raises:
        ConfigurationError: for an unknown model name or unparsable rate.
    """
    name, _, rate_text = text.partition(":")
    name = name.strip()
    if name not in FAULT_MODELS:
        known = ", ".join(sorted(FAULT_MODELS))
        raise ConfigurationError(
            f"unknown fault model {name!r} (known: {known})")
    if not rate_text:
        return name, DEFAULT_CHAOS_RATE
    try:
        rate = float(rate_text)
    except ValueError as exc:
        raise ConfigurationError(
            f"bad fault rate {rate_text!r} in spec {text!r}") from exc
    return name, rate


def build_injectors(specs: Sequence[tuple[str, float]],
                    seed: int = 0) -> list[FaultInjector]:
    """Instantiate injectors for ``(name, rate)`` specs.

    Each injector derives its own RNG from ``seed`` and its model name, so
    adding or removing one model never perturbs another's draws.

    Raises:
        ConfigurationError: for an unknown model name or a rate outside
            ``[0, 1]``.
    """
    injectors: list[FaultInjector] = []
    for name, rate in specs:
        if name not in FAULT_MODELS:
            known = ", ".join(sorted(FAULT_MODELS))
            raise ConfigurationError(
                f"unknown fault model {name!r} (known: {known})")
        injectors.append(FAULT_MODELS[name](rate, seed=seed))
    return injectors


def chaos_stream(lines: Iterable[str],
                 specs: Sequence[tuple[str, float]] | None = None,
                 seed: int = 0) -> Iterator[str]:
    """Run ``lines`` through a chain of fault models, lazily.

    Args:
        lines: the clean log lines (trailing newlines tolerated).
        specs: ``(model name, rate)`` pairs, applied in the given order.
            ``None`` applies *every* registered model at
            :data:`DEFAULT_CHAOS_RATE` — the standard "mild chaos" mix.
        seed: base seed shared by all injectors (each derives its own
            independent stream from it).

    Yields:
        Corrupted lines, without trailing newlines.
    """
    if specs is None:
        specs = [(name, DEFAULT_CHAOS_RATE) for name in FAULT_MODELS]
    stream: Iterable[str] = lines
    for injector in build_injectors(specs, seed=seed):
        stream = injector.apply(stream)
    yield from stream
