"""Seeded fault injection for access-log streams (chaos testing).

The paper's premise is that server logs are an incomplete, messy view of
user behavior — yet most pipelines are only ever exercised on clean,
simulated logs.  This package closes that gap: every fault model real
access logs exhibit (torn writes, mojibake, double logging, bounded
reordering, per-host clock skew, rotation tears, crawler pollution) is
available as a deterministic, seedable wrapper over any iterable of
lines, so benchmarks and tests can measure exactly how reconstruction
accuracy and ingestion throughput degrade as input quality does.

Usage::

    from repro.faults import chaos_stream

    dirty = chaos_stream(open("access.log"), [("truncate", 0.05),
                                              ("duplicate", 0.02)], seed=7)
    records = list(ingest_lines(dirty, policy="quarantine",
                                report=report, quarantine=sink))

The same seed yields a byte-identical corrupted stream on every run; see
:mod:`repro.faults.injectors` for the determinism contract.
"""

from repro.faults.chaos import (
    DEFAULT_CHAOS_RATE,
    FAULT_MODELS,
    build_injectors,
    chaos_stream,
    parse_fault_spec,
)
from repro.faults.execution import (
    EXEC_FAULT_KINDS,
    EXEC_FAULTS_ENV,
    ExecutionFault,
    active_exec_faults,
    inject_shard_fault,
    parse_exec_fault,
    run_exec_selftest,
    run_overload_selftest,
    run_shard_selftest,
    use_execution_faults,
)
from repro.faults.injectors import (
    BotTraffic,
    ClockSkew,
    DuplicateLines,
    EncodingErrors,
    FaultInjector,
    GarbleLines,
    ReorderLines,
    RotationSplit,
    TruncateLines,
)

__all__ = [
    "FaultInjector",
    "TruncateLines",
    "GarbleLines",
    "EncodingErrors",
    "DuplicateLines",
    "ReorderLines",
    "ClockSkew",
    "RotationSplit",
    "BotTraffic",
    "FAULT_MODELS",
    "DEFAULT_CHAOS_RATE",
    "build_injectors",
    "chaos_stream",
    "parse_fault_spec",
    "EXEC_FAULT_KINDS",
    "EXEC_FAULTS_ENV",
    "ExecutionFault",
    "active_exec_faults",
    "parse_exec_fault",
    "run_exec_selftest",
    "run_overload_selftest",
    "run_shard_selftest",
    "inject_shard_fault",
    "use_execution_faults",
]
