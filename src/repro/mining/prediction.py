"""Next-page prediction — the pre-fetching / link-prediction application.

A first-order Markov model over session transitions: from the sessions it
is trained on, it estimates ``P(next page | current page)`` and recommends
the most likely continuations.  This is the canonical consumer of
reconstructed sessions for the paper's "web pre-fetching" and "link
prediction" application areas, and the downstream benchmark uses it to ask:
*does a better session reconstruction yield a better predictor?*
"""

from __future__ import annotations

from collections import Counter

from repro.exceptions import EvaluationError
from repro.sessions.model import SessionSet

__all__ = ["MarkovPredictor", "KthOrderMarkovPredictor"]


class MarkovPredictor:
    """First-order Markov next-page recommender.

    Train with :meth:`fit`, then query :meth:`predict` /
    :meth:`transition_probability`, or score generalization with
    :meth:`hit_rate` on held-out sessions.
    """

    def __init__(self) -> None:
        self._transitions: dict[str, Counter[str]] = {}
        self._totals: dict[str, int] = {}
        self._trained = False

    def fit(self, sessions: SessionSet) -> "MarkovPredictor":
        """Count transitions from consecutive page pairs of ``sessions``.

        Returns ``self`` for chaining.

        Raises:
            EvaluationError: for an empty session set.
        """
        if len(sessions) == 0:
            raise EvaluationError("cannot train on an empty session set")
        transitions: dict[str, Counter[str]] = {}
        for session in sessions:
            pages = session.pages
            for current, following in zip(pages, pages[1:]):
                transitions.setdefault(current, Counter())[following] += 1
        self._transitions = transitions
        self._totals = {page: sum(counter.values())
                        for page, counter in transitions.items()}
        self._trained = True
        return self

    def _require_trained(self) -> None:
        if not self._trained:
            raise EvaluationError("predictor is not trained; call fit first")

    def predict(self, current_page: str, top: int = 3) -> list[str]:
        """The ``top`` most likely next pages after ``current_page``.

        Pages never seen as a transition source yield an empty list.

        Raises:
            EvaluationError: if the model is untrained or ``top <= 0``.
        """
        self._require_trained()
        if top <= 0:
            raise EvaluationError(f"top must be positive, got {top}")
        counter = self._transitions.get(current_page)
        if not counter:
            return []
        ranked = sorted(counter.items(), key=lambda item: (-item[1], item[0]))
        return [page for page, __ in ranked[:top]]

    def transition_probability(self, current_page: str,
                               next_page: str) -> float:
        """Estimated ``P(next_page | current_page)`` (0.0 if unseen).

        Raises:
            EvaluationError: if the model is untrained.
        """
        self._require_trained()
        total = self._totals.get(current_page)
        if not total:
            return 0.0
        return self._transitions[current_page][next_page] / total

    def hit_rate(self, sessions: SessionSet, top: int = 3) -> float:
        """Fraction of held-out transitions whose true next page is in the
        model's top-``top`` prediction.

        Raises:
            EvaluationError: if untrained, ``top <= 0``, or ``sessions``
                contains no transition (all sessions shorter than 2).
        """
        self._require_trained()
        hits = 0
        total = 0
        for session in sessions:
            pages = session.pages
            for current, actual in zip(pages, pages[1:]):
                total += 1
                if actual in self.predict(current, top=top):
                    hits += 1
        if total == 0:
            raise EvaluationError(
                "no transitions to score (every session has length < 2)")
        return hits / total

    def vocabulary(self) -> frozenset[str]:
        """All pages seen as a transition source."""
        return frozenset(self._transitions)


class KthOrderMarkovPredictor:
    """Order-*k* Markov next-page model with back-off.

    Conditions on the last *k* pages of the navigation context; when a
    context was never observed at order *k*, the model backs off to
    *k - 1*, down to the first-order model.  Higher orders capture path
    dependence ("users coming to the cart *via the sale page* go to
    checkout"), at the price of sparser statistics — the classic
    pre-fetching trade-off this class lets applications explore.

    Args:
        order: maximum context length (``1`` reduces to
            :class:`MarkovPredictor` semantics).

    Raises:
        EvaluationError: for a non-positive order.
    """

    def __init__(self, order: int = 2) -> None:
        if order <= 0:
            raise EvaluationError(f"order must be positive, got {order}")
        self.order = order
        # _tables[k-1] maps a length-k context tuple to next-page counts.
        self._tables: list[dict[tuple[str, ...], Counter[str]]] = []
        self._trained = False

    def fit(self, sessions: SessionSet) -> "KthOrderMarkovPredictor":
        """Count transitions for every context length 1..order.

        Returns ``self`` for chaining.

        Raises:
            EvaluationError: for an empty session set.
        """
        if len(sessions) == 0:
            raise EvaluationError("cannot train on an empty session set")
        self._tables = [dict() for __ in range(self.order)]
        for session in sessions:
            pages = session.pages
            for index in range(1, len(pages)):
                following = pages[index]
                for k in range(1, self.order + 1):
                    if index - k < 0:
                        break
                    context = tuple(pages[index - k:index])
                    table = self._tables[k - 1]
                    table.setdefault(context, Counter())[following] += 1
        self._trained = True
        return self

    def predict(self, context: tuple[str, ...] | list[str],
                top: int = 3) -> list[str]:
        """The ``top`` most likely next pages after ``context``.

        The longest usable suffix of ``context`` (up to ``order``) that was
        observed in training decides; unseen contexts back off until the
        first-order table, then give up with an empty list.

        Raises:
            EvaluationError: if untrained, ``top <= 0``, or the context is
                empty.
        """
        if not self._trained:
            raise EvaluationError("predictor is not trained; call fit first")
        if top <= 0:
            raise EvaluationError(f"top must be positive, got {top}")
        history = tuple(context)
        if not history:
            raise EvaluationError("context must contain at least one page")
        for k in range(min(self.order, len(history)), 0, -1):
            counter = self._tables[k - 1].get(history[-k:])
            if counter:
                ranked = sorted(counter.items(),
                                key=lambda item: (-item[1], item[0]))
                return [page for page, __ in ranked[:top]]
        return []

    def hit_rate(self, sessions: SessionSet, top: int = 3) -> float:
        """Top-``top`` next-page hit rate over all transitions of
        ``sessions``, conditioning on the full available history.

        Raises:
            EvaluationError: if untrained or ``sessions`` has no transition.
        """
        if not self._trained:
            raise EvaluationError("predictor is not trained; call fit first")
        hits = 0
        total = 0
        for session in sessions:
            pages = session.pages
            for index in range(1, len(pages)):
                context = pages[max(0, index - self.order):index]
                total += 1
                if pages[index] in self.predict(context, top=top):
                    hits += 1
        if total == 0:
            raise EvaluationError(
                "no transitions to score (every session has length < 2)")
        return hits / total
