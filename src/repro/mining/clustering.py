"""Session clustering for web personalization.

Web personalization — the last application area the paper lists — groups
users with similar navigation behavior and adapts the site per group.  The
standard first step is clustering sessions by the *set of pages* they
touch.  This module implements the deterministic **leader algorithm** over
Jaccard similarity: sessions are scanned in order of decreasing length;
each session joins the first cluster whose centroid is similar enough,
otherwise it founds a new cluster.  Simple, parameter-light, reproducible —
and linear in (sessions × clusters), which matters at log scale.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.exceptions import EvaluationError
from repro.sessions.model import Session, SessionSet

__all__ = ["SessionCluster", "cluster_sessions", "jaccard"]


def jaccard(first: frozenset[str], second: frozenset[str]) -> float:
    """Jaccard similarity of two page sets (1.0 for two empty sets)."""
    if not first and not second:
        return 1.0
    return len(first & second) / len(first | second)


@dataclass(frozen=True, slots=True)
class SessionCluster:
    """One behavioral group of sessions.

    Attributes:
        label: stable cluster id (``0`` is the largest-seeded cluster).
        sessions: member sessions, in assignment order.
        profile_pages: pages appearing in at least half of the members,
            sorted by descending frequency — the cluster's "interest
            profile" a personalization engine would key on.
    """

    label: int
    sessions: tuple[Session, ...]
    profile_pages: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.sessions)


def cluster_sessions(sessions: SessionSet, similarity: float = 0.3,
                     min_cluster_size: int = 1) -> list[SessionCluster]:
    """Cluster sessions by page-set similarity (leader algorithm).

    Args:
        sessions: the sessions to group (empty sessions are ignored).
        similarity: Jaccard threshold in (0, 1] for joining a cluster's
            *founding* page set.  Higher → more, tighter clusters.
        min_cluster_size: clusters smaller than this are dropped from the
            result (their sessions are simply unclustered noise).

    Returns:
        Clusters sorted by descending size; ``label`` reflects that order.

    Raises:
        EvaluationError: for an empty session set, a similarity outside
            (0, 1], or a non-positive ``min_cluster_size``.
    """
    members = [session for session in sessions if session]
    if not members:
        raise EvaluationError("cannot cluster an empty session set")
    if not 0 < similarity <= 1:
        raise EvaluationError(
            f"similarity must be in (0, 1], got {similarity}")
    if min_cluster_size <= 0:
        raise EvaluationError(
            f"min_cluster_size must be positive, got {min_cluster_size}")

    # Longest sessions first: they make the most informative founders.
    members.sort(key=lambda session: (-len(session), session.pages))

    founders: list[frozenset[str]] = []
    groups: list[list[Session]] = []
    for session in members:
        pages = frozenset(session.pages)
        for index, founder in enumerate(founders):
            if jaccard(pages, founder) >= similarity:
                groups[index].append(session)
                break
        else:
            founders.append(pages)
            groups.append([session])

    sized = sorted(
        (group for group in groups if len(group) >= min_cluster_size),
        key=lambda group: (-len(group),
                           tuple(group[0].pages)))
    return [
        SessionCluster(
            label=label,
            sessions=tuple(group),
            profile_pages=_profile(group),
        )
        for label, group in enumerate(sized)
    ]


def _profile(group: list[Session]) -> tuple[str, ...]:
    """Pages visited by at least half the member sessions, most common
    first."""
    counts: Counter[str] = Counter()
    for session in group:
        counts.update(set(session.pages))
    threshold = len(group) / 2
    frequent = [(page, count) for page, count in counts.items()
                if count >= threshold]
    frequent.sort(key=lambda item: (-item[1], item[0]))
    return tuple(page for page, __ in frequent)
