"""Downstream web usage mining on reconstructed sessions.

The paper motivates session reconstruction as the *input* step for pattern
discovery: "discovering useful patterns from these sessions by using
pattern discovery techniques like apriori" (§1), with applications in
pre-fetching, link prediction, site reorganization and personalization.
This package implements those consumers, which also power the
``bench_downstream_mining`` extension benchmark (how much do reconstruction
errors distort the mined patterns?):

* :mod:`repro.mining.apriori` — frequent page-set mining;
* :mod:`repro.mining.sequential` — frequent contiguous navigation patterns;
* :mod:`repro.mining.rules` — association rules over frequent page sets;
* :mod:`repro.mining.prediction` — a Markov next-page recommender for
  pre-fetching / link prediction.
"""

from repro.mining.apriori import FrequentItemset, apriori
from repro.mining.clustering import SessionCluster, cluster_sessions, jaccard
from repro.mining.navigation_tree import NavigationTree, TreeNode
from repro.mining.pagerank import rank_divergence, structural_pagerank, usage_rank
from repro.mining.prediction import KthOrderMarkovPredictor, MarkovPredictor
from repro.mining.rules import AssociationRule, association_rules
from repro.mining.sequence_rules import (
    SequentialRule,
    mine_sequential_rules,
    sequential_rules,
)
from repro.mining.sequential import SequentialPattern, frequent_sequences

__all__ = [
    "apriori",
    "FrequentItemset",
    "frequent_sequences",
    "SequentialPattern",
    "association_rules",
    "AssociationRule",
    "MarkovPredictor",
    "KthOrderMarkovPredictor",
    "SessionCluster",
    "cluster_sessions",
    "jaccard",
    "NavigationTree",
    "TreeNode",
    "structural_pagerank",
    "usage_rank",
    "rank_divergence",
    "SequentialRule",
    "sequential_rules",
    "mine_sequential_rules",
]
