"""Sequential rules: *path ⇒ next page* with confidence.

Association rules (:mod:`repro.mining.rules`) ignore order; pre-fetching
and guided navigation need ordered rules: "users who walked home → list
continue to item with 62% confidence".  A sequential rule's antecedent is
a contiguous path, its consequent a single following page:

    confidence(path ⇒ p) = support(path + [p]) / support(path)

mined level-wise from :func:`repro.mining.sequential.frequent_sequences`
output (which is downward closed over contiguous prefixes, so every
antecedent's support is available).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import EvaluationError
from repro.mining.sequential import SequentialPattern, frequent_sequences
from repro.sessions.model import SessionSet

__all__ = ["SequentialRule", "sequential_rules", "mine_sequential_rules"]


@dataclass(frozen=True, slots=True)
class SequentialRule:
    """An ordered ``path ⇒ next`` rule.

    Attributes:
        path: the antecedent walk (contiguous pages, in order).
        next_page: the consequent.
        support: fraction of sessions containing the full extended path.
        confidence: ``support(path + next) / support(path)``.
    """

    path: tuple[str, ...]
    next_page: str
    support: float
    confidence: float

    def __str__(self) -> str:
        walk = " -> ".join(self.path)
        return (f"[{walk}] => {self.next_page} "
                f"(supp={self.support:.3f}, conf={self.confidence:.3f})")


def sequential_rules(patterns: list[SequentialPattern],
                     min_confidence: float = 0.3) -> list[SequentialRule]:
    """Derive ordered rules from mined sequential patterns.

    Every pattern of length ≥ 2 yields one candidate rule (its length-1
    shorter prefix ⇒ its last page); candidates meeting ``min_confidence``
    survive.

    Args:
        patterns: :func:`~repro.mining.sequential.frequent_sequences`
            output (must include each pattern's prefix — guaranteed by the
            miner's level-wise construction).
        min_confidence: minimum rule confidence in (0, 1].

    Returns:
        Rules sorted by descending confidence then support.

    Raises:
        EvaluationError: for a confidence outside (0, 1] or a pattern set
            missing a needed prefix.
    """
    if not 0 < min_confidence <= 1:
        raise EvaluationError(
            f"min_confidence must be in (0, 1], got {min_confidence}")
    support_of = {pattern.pages: pattern.support for pattern in patterns}
    rules = []
    for pattern in patterns:
        if len(pattern.pages) < 2:
            continue
        prefix = pattern.pages[:-1]
        prefix_support = support_of.get(prefix)
        if prefix_support is None:
            raise EvaluationError(
                f"pattern set is missing the prefix {prefix!r}; pass the "
                "full frequent_sequences output")
        confidence = pattern.support / prefix_support
        if confidence >= min_confidence:
            rules.append(SequentialRule(
                path=prefix, next_page=pattern.pages[-1],
                support=pattern.support, confidence=confidence))
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support,
                                 rule.path, rule.next_page))
    return rules


def mine_sequential_rules(sessions: SessionSet, min_support: float = 0.01,
                          min_confidence: float = 0.3,
                          max_length: int = 4) -> list[SequentialRule]:
    """One-call convenience: mine patterns, then derive ordered rules."""
    patterns = frequent_sequences(sessions, min_support=min_support,
                                  max_length=max_length)
    return sequential_rules(patterns, min_confidence=min_confidence)
