"""Aggregate navigation tree (WUM-style prefix trie).

The WUM tool (Spiliopoulou & Faulstich — the paper's reference [12])
organizes sessions into an *aggregated log*: a prefix tree whose nodes
carry support counts, so "how many sessions start home → list → item?"
is a single root-to-node walk.  This module implements that structure:

* :class:`NavigationTree` — build from a session set; query prefix
  support, child distributions, and frequent root paths;
* :meth:`NavigationTree.conversion_rate` — the funnel query analysts run
  on such trees ("of sessions reaching this prefix, how many continue to
  X?").

The tree complements :mod:`repro.mining.sequential`: sequences count
patterns *anywhere* in a session, the tree counts them *from the start* —
which is the right lens for entry-funnel analysis.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.exceptions import EvaluationError
from repro.sessions.model import SessionSet

__all__ = ["NavigationTree", "TreeNode"]


@dataclass(slots=True)
class TreeNode:
    """One node of the aggregate tree.

    Attributes:
        page: the page this node represents (``""`` for the root).
        support: number of sessions whose prefix reaches this node.
        children: child nodes keyed by page.
    """

    page: str
    support: int = 0
    children: dict[str, "TreeNode"] = field(default_factory=dict)

    def child(self, page: str) -> "TreeNode | None":
        """The child for ``page``, or ``None``."""
        return self.children.get(page)


class NavigationTree:
    """Prefix trie over session page sequences with support counts."""

    def __init__(self, sessions: SessionSet) -> None:
        """Build the tree from ``sessions`` (empty sessions are ignored).

        Raises:
            EvaluationError: if no non-empty session is supplied.
        """
        self._root = TreeNode(page="")
        built = 0
        for session in sessions:
            if not session:
                continue
            built += 1
            node = self._root
            node.support += 1
            for page in session.pages:
                nxt = node.children.get(page)
                if nxt is None:
                    nxt = TreeNode(page=page)
                    node.children[page] = nxt
                nxt.support += 1
                node = nxt
        if not built:
            raise EvaluationError(
                "cannot build a navigation tree from an empty session set")

    @property
    def session_count(self) -> int:
        """Number of sessions aggregated into the tree."""
        return self._root.support

    def support(self, prefix: Sequence[str]) -> int:
        """Sessions starting with exactly ``prefix`` (in order).

        The empty prefix is supported by every session.
        """
        node = self._root
        for page in prefix:
            child = node.child(page)
            if child is None:
                return 0
            node = child
        return node.support

    def continuations(self, prefix: Sequence[str]) -> dict[str, int]:
        """``{next page: support}`` among sessions with ``prefix``."""
        node = self._root
        for page in prefix:
            child = node.child(page)
            if child is None:
                return {}
            node = child
        return {page: child.support
                for page, child in sorted(node.children.items())}

    def conversion_rate(self, prefix: Sequence[str],
                        target: str) -> float:
        """Fraction of ``prefix`` sessions whose next page is ``target``.

        Raises:
            EvaluationError: if no session has the prefix (rate undefined).
        """
        base = self.support(prefix)
        if base == 0:
            raise EvaluationError(
                f"no session starts with prefix {list(prefix)!r}")
        return self.support(list(prefix) + [target]) / base

    def frequent_paths(self, min_support: float = 0.01,
                       max_depth: int = 6) -> list[tuple[tuple[str, ...],
                                                         int]]:
        """All root paths with support ≥ ``min_support`` (as a fraction).

        Returns ``(path, absolute support)`` pairs, deepest-first ties
        broken lexicographically, sorted by descending support then path.

        Raises:
            EvaluationError: for a support outside (0, 1] or non-positive
                depth.
        """
        if not 0 < min_support <= 1:
            raise EvaluationError(
                f"min_support must be in (0, 1], got {min_support}")
        if max_depth <= 0:
            raise EvaluationError(
                f"max_depth must be positive, got {max_depth}")
        threshold = min_support * self.session_count
        found: list[tuple[tuple[str, ...], int]] = []
        stack: list[tuple[TreeNode, tuple[str, ...]]] = [(self._root, ())]
        while stack:
            node, path = stack.pop()
            for page, child in node.children.items():
                if child.support >= threshold and len(path) < max_depth:
                    child_path = path + (page,)
                    found.append((child_path, child.support))
                    stack.append((child, child_path))
        found.sort(key=lambda item: (-item[1], item[0]))
        return found

    def walk(self) -> Iterator[tuple[tuple[str, ...], int]]:
        """Depth-first traversal yielding every (path, support) pair."""
        stack: list[tuple[TreeNode, tuple[str, ...]]] = [(self._root, ())]
        while stack:
            node, path = stack.pop()
            for page, child in sorted(node.children.items(), reverse=True):
                child_path = path + (page,)
                yield (child_path, child.support)
                stack.append((child, child_path))

    def node_count(self) -> int:
        """Total nodes excluding the root (the tree's compression factor
        versus storing raw sessions)."""
        return sum(1 for __ in self.walk())

    def render(self, min_support: int = 1, max_depth: int = 4) -> str:
        """ASCII rendering of the tree down to ``max_depth``.

        Args:
            min_support: hide nodes below this absolute support.
            max_depth: hide nodes deeper than this.
        """
        lines = [f"(root) {self.session_count} sessions"]

        def visit(node: TreeNode, depth: int) -> None:
            if depth > max_depth:
                return
            ranked = sorted(node.children.values(),
                            key=lambda child: (-child.support, child.page))
            for child in ranked:
                if child.support < min_support:
                    continue
                lines.append("  " * depth + f"{child.page} ({child.support})")
                visit(child, depth + 1)

        visit(self._root, 1)
        return "\n".join(lines) + "\n"
