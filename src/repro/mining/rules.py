"""Association rules over frequent page sets.

Turns the output of :func:`repro.mining.apriori.apriori` into
``antecedent ⇒ consequent`` rules with confidence and lift — the classic
"users who visited {A, B} also visited C" insight driving site
reorganization and personalization, two of the application areas the paper
lists for web usage mining.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.exceptions import EvaluationError
from repro.mining.apriori import FrequentItemset

__all__ = ["AssociationRule", "association_rules"]


@dataclass(frozen=True, slots=True)
class AssociationRule:
    """An ``antecedent ⇒ consequent`` rule.

    Attributes:
        antecedent / consequent: disjoint, non-empty page tuples (sorted).
        support: support of the union itemset.
        confidence: ``support(union) / support(antecedent)``.
        lift: ``confidence / support(consequent)`` — > 1 means the
            antecedent genuinely raises the consequent's likelihood.
    """

    antecedent: tuple[str, ...]
    consequent: tuple[str, ...]
    support: float
    confidence: float
    lift: float

    def __str__(self) -> str:
        left = ", ".join(self.antecedent)
        right = ", ".join(self.consequent)
        return (f"{{{left}}} => {{{right}}} "
                f"(supp={self.support:.3f}, conf={self.confidence:.3f}, "
                f"lift={self.lift:.2f})")


def association_rules(itemsets: list[FrequentItemset],
                      min_confidence: float = 0.5) -> list[AssociationRule]:
    """Derive rules from mined frequent itemsets.

    Every frequent itemset of size ≥ 2 is split into every non-trivial
    (antecedent, consequent) partition; partitions meeting
    ``min_confidence`` become rules.  Confidence and lift are computed from
    the supports present in ``itemsets``, so the input must contain all
    subsets of its members — which :func:`~repro.mining.apriori.apriori`
    guarantees by construction (apriori's downward closure).

    Args:
        itemsets: apriori output.
        min_confidence: minimum rule confidence in (0, 1].

    Returns:
        Rules sorted by descending confidence, then descending support.

    Raises:
        EvaluationError: for a confidence outside (0, 1], or when a needed
            subset itemset is missing from ``itemsets``.
    """
    if not 0 < min_confidence <= 1:
        raise EvaluationError(
            f"min_confidence must be in (0, 1], got {min_confidence}")

    support_by_set: dict[frozenset[str], float] = {
        frozenset(itemset.pages): itemset.support for itemset in itemsets}

    rules: list[AssociationRule] = []
    for itemset in itemsets:
        if len(itemset.pages) < 2:
            continue
        members = frozenset(itemset.pages)
        for antecedent_size in range(1, len(itemset.pages)):
            for antecedent in combinations(sorted(members), antecedent_size):
                antecedent_set = frozenset(antecedent)
                consequent_set = members - antecedent_set
                antecedent_support = support_by_set.get(antecedent_set)
                consequent_support = support_by_set.get(consequent_set)
                if antecedent_support is None or consequent_support is None:
                    raise EvaluationError(
                        "itemset list is not downward closed: missing "
                        f"subset of {sorted(members)}")
                confidence = itemset.support / antecedent_support
                if confidence < min_confidence:
                    continue
                rules.append(AssociationRule(
                    antecedent=tuple(sorted(antecedent_set)),
                    consequent=tuple(sorted(consequent_set)),
                    support=itemset.support,
                    confidence=confidence,
                    lift=confidence / consequent_support,
                ))
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support,
                                 rule.antecedent, rule.consequent))
    return rules
