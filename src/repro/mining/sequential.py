"""Frequent contiguous navigation-pattern mining.

Where :mod:`repro.mining.apriori` ignores order, this module mines
*navigation paths*: contiguous page subsequences that many sessions
traverse.  Contiguity matches the library's capture relation ⊏ and the
paper's topology rule (consecutive pattern pages are consecutive requests),
so a frequent sequence of a Smart-SRA output set is a frequently walked
hyperlink path — precisely what pre-fetching and site reorganization need.

The miner is level-wise like AprioriAll: frequent length-*k* patterns are
extended only from frequent length-(*k*-1) prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import EvaluationError
from repro.sessions.model import SessionSet

__all__ = ["SequentialPattern", "frequent_sequences"]


@dataclass(frozen=True, slots=True)
class SequentialPattern:
    """A contiguous page sequence with its session support.

    Attributes:
        pages: the pattern, in traversal order.
        support: fraction of sessions containing the pattern contiguously.
        count: absolute number of supporting sessions.
    """

    pages: tuple[str, ...]
    support: float
    count: int

    def __len__(self) -> int:
        return len(self.pages)


def frequent_sequences(sessions: SessionSet, min_support: float = 0.01,
                       max_length: int = 5) -> list[SequentialPattern]:
    """Mine frequent contiguous page sequences.

    Args:
        sessions: the session database.
        min_support: minimum fraction of sessions that must contain the
            pattern as a contiguous subsequence (each session counts once,
            however often it repeats the pattern).
        max_length: longest pattern to mine.

    Returns:
        Patterns ordered by (length, -support, pages).

    Raises:
        EvaluationError: for an empty session set, a support outside
            (0, 1], or a non-positive ``max_length``.
    """
    if len(sessions) == 0:
        raise EvaluationError("cannot mine an empty session set")
    if not 0 < min_support <= 1:
        raise EvaluationError(
            f"min_support must be in (0, 1], got {min_support}")
    if max_length <= 0:
        raise EvaluationError(
            f"max_length must be positive, got {max_length}")

    page_lists = [session.pages for session in sessions]
    n = len(page_lists)
    min_count = min_support * n

    # Level 1: count distinct pages per session.
    counts: dict[tuple[str, ...], int] = {}
    for pages in page_lists:
        for page in set(pages):
            counts[(page,)] = counts.get((page,), 0) + 1
    current = {pattern: count for pattern, count in counts.items()
               if count >= min_count}
    results = _collect(current, n)

    length = 1
    while current and length < max_length:
        length += 1
        # Candidate k-patterns: frequent (k-1)-pattern + frequent page,
        # pruned by requiring the (k-1)-suffix to be frequent too.
        frequent_pages = {pattern[0] for pattern in counts
                          if len(pattern) == 1
                          and counts[pattern] >= min_count}
        prefixes = set(current)
        candidates = {prefix + (page,) for prefix in prefixes
                      for page in frequent_pages
                      if len(prefix) == length - 1
                      and (length == 2
                           or prefix[1:] + (page,) in prefixes)}
        level_counts: dict[tuple[str, ...], int] = {}
        for pages in page_lists:
            if len(pages) < length:
                continue
            seen: set[tuple[str, ...]] = set()
            for start in range(len(pages) - length + 1):
                window = tuple(pages[start:start + length])
                if window in candidates and window not in seen:
                    seen.add(window)
                    level_counts[window] = level_counts.get(window, 0) + 1
        current = {pattern: count for pattern, count in level_counts.items()
                   if count >= min_count}
        results.extend(_collect(current, n))
    return results


def _collect(level: dict[tuple[str, ...], int],
             n_sessions: int) -> list[SequentialPattern]:
    found = [SequentialPattern(pages=pattern, support=count / n_sessions,
                               count=count)
             for pattern, count in level.items()]
    found.sort(key=lambda item: (len(item.pages), -item.support, item.pages))
    return found


def pattern_overlap(mined_a: list[SequentialPattern],
                    mined_b: list[SequentialPattern],
                    min_length: int = 2) -> float:
    """Jaccard overlap of two mined pattern sets (patterns of ≥ min_length).

    Used by the downstream-impact benchmark: patterns mined from
    reconstructed sessions vs patterns mined from the ground truth.
    Returns 1.0 when both sets are empty (nothing to disagree about).
    """
    set_a = {pattern.pages for pattern in mined_a
             if len(pattern.pages) >= min_length}
    set_b = {pattern.pages for pattern in mined_b
             if len(pattern.pages) >= min_length}
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)
