"""Apriori frequent page-set mining over sessions.

Classic Agrawal-Srikant apriori specialized to web sessions: each session
is a transaction whose items are its *distinct* pages ("a web page can be
accepted as related to another web page if they are accessed in the same
user session", §1).  Support is the fraction of sessions containing all
pages of the itemset.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from itertools import combinations

from repro.exceptions import EvaluationError
from repro.sessions.model import SessionSet

__all__ = ["FrequentItemset", "apriori"]


@dataclass(frozen=True, slots=True)
class FrequentItemset:
    """A page set with session support above the mining threshold.

    Attributes:
        pages: the itemset, as a sorted tuple for stable display.
        support: fraction of sessions containing every page of the set.
        count: absolute number of supporting sessions.
    """

    pages: tuple[str, ...]
    support: float
    count: int

    def __len__(self) -> int:
        return len(self.pages)


def apriori(sessions: SessionSet, min_support: float = 0.01,
            max_size: int = 4) -> list[FrequentItemset]:
    """Mine frequent page sets from ``sessions``.

    Args:
        sessions: the transaction database (each session's distinct pages).
        min_support: minimum fraction of sessions an itemset must appear in.
        max_size: largest itemset size to mine (bounds the lattice walk).

    Returns:
        Frequent itemsets ordered by (size, -support, pages) — singletons
        first, ties broken by support then lexicographically.

    Raises:
        EvaluationError: for an empty session set, a support outside
            (0, 1], or a non-positive ``max_size``.
    """
    if len(sessions) == 0:
        raise EvaluationError("cannot mine an empty session set")
    if not 0 < min_support <= 1:
        raise EvaluationError(
            f"min_support must be in (0, 1], got {min_support}")
    if max_size <= 0:
        raise EvaluationError(f"max_size must be positive, got {max_size}")

    transactions = [session.distinct_pages() for session in sessions]
    n = len(transactions)
    min_count = min_support * n

    # L1: frequent single pages.
    page_counts: dict[str, int] = {}
    for transaction in transactions:
        for page in transaction:
            page_counts[page] = page_counts.get(page, 0) + 1
    current: dict[frozenset[str], int] = {
        frozenset([page]): count
        for page, count in page_counts.items() if count >= min_count}

    results: list[FrequentItemset] = _collect(current, n)
    size = 1
    while current and size < max_size:
        size += 1
        candidates = _generate_candidates(current, size)
        counted: dict[frozenset[str], int] = {}
        for transaction in transactions:
            for candidate in candidates:
                if candidate <= transaction:
                    counted[candidate] = counted.get(candidate, 0) + 1
        current = {itemset: count for itemset, count in counted.items()
                   if count >= min_count}
        results.extend(_collect(current, n))
    return results


def _generate_candidates(frequent: dict[frozenset[str], int],
                         size: int) -> set[frozenset[str]]:
    """Apriori-gen: join step plus prune step.

    Joins (size-1)-itemsets sharing a (size-2)-prefix and prunes candidates
    with an infrequent (size-1)-subset.
    """
    itemsets = sorted(frequent, key=sorted)
    candidates: set[frozenset[str]] = set()
    for first, second in combinations(itemsets, 2):
        union = first | second
        if len(union) != size:
            continue
        if all(union - {page} in frequent for page in union):
            candidates.add(union)
    return candidates


def _collect(level: dict[frozenset[str], int],
             n_transactions: int) -> list[FrequentItemset]:
    found = [FrequentItemset(pages=tuple(sorted(itemset)),
                             support=count / n_transactions, count=count)
             for itemset, count in level.items()]
    found.sort(key=lambda item: (len(item.pages), -item.support, item.pages))
    return found
