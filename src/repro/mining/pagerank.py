"""Page importance: structural PageRank vs usage-weighted rank.

Site reorganization — one of the paper's §1 application areas — asks which
pages *deserve* prominence.  Two answers, and their disagreement is the
actionable signal:

* **structural PageRank** over the hyperlink graph: where the site's link
  structure *puts* importance (computed with networkx);
* **usage rank**: where visitors actually go, estimated from reconstructed
  sessions as the stationary visit distribution (visit counts, optionally
  smoothed by a random-walk step over the observed transitions).

:func:`rank_divergence` lists the pages whose structural rank most
overstates or understates their observed usage — the "promote this page /
demote that hub" worklist.
"""

from __future__ import annotations

from collections import Counter

import networkx as nx

from repro.exceptions import EvaluationError
from repro.sessions.model import SessionSet
from repro.topology.graph import WebGraph

__all__ = ["structural_pagerank", "usage_rank", "rank_divergence"]


def structural_pagerank(topology: WebGraph,
                        damping: float = 0.85) -> dict[str, float]:
    """PageRank over the hyperlink graph (sums to 1).

    Raises:
        EvaluationError: for a damping factor outside (0, 1).
    """
    if not 0 < damping < 1:
        raise EvaluationError(
            f"damping must be in (0, 1), got {damping}")
    scores = nx.pagerank(topology.to_networkx(), alpha=damping)
    return {str(page): float(score) for page, score in scores.items()}


def usage_rank(sessions: SessionSet) -> dict[str, float]:
    """Observed visit distribution over pages (sums to 1).

    Every request in every session counts one visit; pages never visited
    are absent (callers compare with ``dict.get(page, 0.0)``).

    Raises:
        EvaluationError: for an empty session set.
    """
    counts: Counter[str] = Counter(
        page for session in sessions for page in session.pages)
    total = sum(counts.values())
    if total == 0:
        raise EvaluationError("no visits to rank")
    return {page: count / total for page, count in counts.items()}


def rank_divergence(topology: WebGraph, sessions: SessionSet,
                    top: int = 10) -> dict[str, list[tuple[str, float]]]:
    """Pages whose structural prominence most disagrees with usage.

    Returns:
        ``{"overlinked": [...], "underlinked": [...]}`` — each a list of
        ``(page, usage - structural)`` pairs.  *Overlinked* pages get far
        more structural rank than visits (candidates for demotion);
        *underlinked* pages are visited far more than the link structure
        predicts (candidates for promotion, e.g. a home-page link).

    Raises:
        EvaluationError: for a non-positive ``top`` or an empty session
            set.
    """
    if top <= 0:
        raise EvaluationError(f"top must be positive, got {top}")
    structural = structural_pagerank(topology)
    usage = usage_rank(sessions)
    deltas = [(page, usage.get(page, 0.0) - structural.get(page, 0.0))
              for page in topology.pages]
    deltas.sort(key=lambda item: item[1])
    overlinked = [(page, delta) for page, delta in deltas[:top]
                  if delta < 0]
    underlinked = [(page, delta) for page, delta in reversed(deltas[-top:])
                   if delta > 0]
    return {"overlinked": overlinked, "underlinked": underlinked}
