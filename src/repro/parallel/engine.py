"""The execution engine behind every parallel path in the library.

Session reconstruction is embarrassingly parallel across users (the
paper's follow-up frames per-user maximal-path construction as independent
work units, and billion-request studies shard on the client), so one
engine serves all three hot consumers — batch reconstruction
(:meth:`repro.sessions.base.SessionReconstructor.reconstruct`), the
evaluation harness (:func:`repro.evaluation.harness.run_trial` /
:func:`~repro.evaluation.harness.sweep`) and the agent simulator
(:func:`repro.simulator.population.simulate_population`).

Design contract:

* **Determinism** — :func:`parallel_map` returns exactly
  ``[fn(item) for item in items]``: items are chunked contiguously, chunks
  are executed wherever, and results are reassembled in chunk order.  A
  run with 4 process workers, 2 thread workers or none produces
  byte-identical output.
* **Exact observability** — when the ambient :mod:`repro.obs` registry is
  enabled, each chunk runs under a private registry
  (:func:`~repro.obs.registry.use_local_registry`) whose snapshot the
  parent merges back (:meth:`~repro.obs.registry.Registry.merge_snapshot`),
  so counters and histogram counts reconcile with a serial run.
* **Graceful degradation** — ``workers=0`` auto-detects the usable CPU
  count; unpicklable work or a sandbox without process support falls back
  to threads; one worker (or one item) short-circuits to a plain loop.
"""

from __future__ import annotations

import gc
import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.exceptions import ConfigurationError
from repro.obs import Registry, get_registry, use_local_registry
from repro.sessions.model import Request

__all__ = [
    "ParallelPlan",
    "available_cpus",
    "resolve_workers",
    "plan_execution",
    "parallel_map",
    "paused_gc",
    "shard_by_key",
    "shard_by_user",
    "shard_by_user_columns",
]

#: target chunks per worker: >1 so a slow chunk doesn't serialize the
#: tail, small enough that per-chunk dispatch cost stays negligible.
CHUNKS_PER_WORKER = 4

_MODES = ("auto", "process", "thread", "serial")

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware, never less than 1)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count knob to an effective count (>= 1).

    ``0`` and ``None`` mean *auto-detect* (:func:`available_cpus`); any
    positive integer is taken literally.

    Raises:
        ConfigurationError: for a negative or non-integer count.
    """
    if workers is None:
        return available_cpus()
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigurationError(
            f"workers must be an integer >= 0, got {workers!r}")
    if workers < 0:
        raise ConfigurationError(
            f"workers must be >= 0 (0 = auto-detect), got {workers}")
    return workers if workers > 0 else available_cpus()


@dataclass(frozen=True, slots=True)
class ParallelPlan:
    """The resolved execution shape for one :func:`parallel_map` call.

    Attributes:
        workers: effective worker count (>= 1).
        mode: ``"process"``, ``"thread"`` or ``"serial"`` — never
            ``"auto"`` (planning resolves it).
        chunk_size: items per chunk.
    """

    workers: int
    mode: str
    chunk_size: int


def _picklable(*objects: object) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def plan_execution(n_items: int, workers: int | None = 0,
                   mode: str = "auto", chunk_size: int | None = None,
                   probe: Sequence[object] = ()) -> ParallelPlan:
    """Decide how a workload of ``n_items`` should execute.

    Args:
        n_items: number of work items.
        workers: requested worker count (``0``/``None`` = auto).
        mode: ``"auto"`` (processes when the probe objects pickle, else
            threads), or an explicit ``"process"``/``"thread"``/
            ``"serial"``.
        chunk_size: items per chunk; default targets
            :data:`CHUNKS_PER_WORKER` chunks per worker.
        probe: objects that must cross the process boundary (the work
            function and one representative item); only consulted in
            ``"auto"`` mode.

    Raises:
        ConfigurationError: for an unknown mode or invalid worker count.
    """
    if mode not in _MODES:
        raise ConfigurationError(
            f"unknown parallel mode {mode!r}; use one of {_MODES}")
    count = resolve_workers(workers)
    count = min(count, max(1, n_items))
    if mode == "serial" or count <= 1 or n_items <= 1:
        return ParallelPlan(1, "serial", max(1, n_items))
    if chunk_size is None:
        chunk_size = max(1, -(-n_items // (count * CHUNKS_PER_WORKER)))
    elif chunk_size < 1:
        raise ConfigurationError(
            f"chunk_size must be >= 1, got {chunk_size}")
    if mode == "auto":
        mode = "process" if _picklable(*probe) else "thread"
    return ParallelPlan(count, mode, chunk_size)


@contextmanager
def paused_gc():
    """Suspend generational GC for a batch that only allocates live output.

    A batch workload whose allocations survive until the batch returns
    (e.g. session reconstruction accumulating its result set) gets zero
    benefit from mid-batch collection passes, yet pays for each pass in
    proportion to the *whole* live heap — measured as a superlinear
    krec/s drop on growing workloads (see ``docs/performance.md``).  This
    pauses collection for the duration and restores the previous state;
    a caller that already disabled GC is left alone.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


#: environment variable arming injectable execution faults (see
#: :mod:`repro.faults.execution`); checked by name so the hot path pays
#: one dict lookup when no faults are armed.
_EXEC_FAULTS_ENV = "REPRO_EXEC_FAULTS"


def _run_chunk(payload: tuple[Callable[[Any], Any], list[Any], bool,
                              int, int]
               ) -> tuple[list[Any], dict[str, Any] | None]:
    """Execute one chunk; module-level so it pickles into worker processes.

    The payload is ``(fn, items, collect_obs, chunk_index, attempt)`` —
    the index and attempt exist for the execution-fault hook
    (:func:`repro.faults.execution.inject_chunk_faults`), which lets tests
    crash, hang or slow a specific chunk attempt deterministically.  The
    hook only ever fires inside pool worker processes.

    When obs collection is requested, the chunk runs under a private
    thread-local registry and returns its snapshot alongside the results
    (the tracer never crosses the boundary — spans are a parent-side
    concern).  GC is paused per chunk — chunk results stay live until the
    chunk returns, so mid-chunk collections are pure overhead.
    """
    fn, chunk, collect, chunk_index, attempt = payload
    if os.environ.get(_EXEC_FAULTS_ENV):
        from repro.faults.execution import inject_chunk_faults
        inject_chunk_faults(chunk_index, attempt)
    if not collect:
        with paused_gc():
            return [fn(item) for item in chunk], None
    registry = Registry()
    with use_local_registry(registry), paused_gc():
        results = [fn(item) for item in chunk]
    return results, registry.snapshot()


def parallel_map(fn: Callable[[T], R], items: Iterable[T], *,
                 workers: int | None = 0, mode: str = "auto",
                 chunk_size: int | None = None,
                 collect_obs: bool | None = None,
                 supervision: Any = None) -> list[R]:
    """``[fn(item) for item in items]``, fanned out deterministically.

    Items are split into contiguous chunks, chunks execute on a
    ``ProcessPoolExecutor`` (or threads — see ``mode``), and the results
    are reassembled in chunk order, so output is byte-identical to the
    serial loop regardless of worker count.

    Args:
        fn: the work function.  For process mode it must pickle (a
            module-level function, or a bound method of a picklable
            object); ``"auto"`` mode silently degrades to threads when it
            does not.
        items: the work items, fully materialized before dispatch.
        workers: worker count; ``0``/``None`` auto-detects usable CPUs,
            ``1`` short-circuits to a serial loop.
        mode: ``"auto"`` | ``"process"`` | ``"thread"`` | ``"serial"``.
        chunk_size: items per chunk (default: enough chunks for
            :data:`CHUNKS_PER_WORKER` per worker).
        collect_obs: force per-chunk registry capture on/off; default
            follows whether the ambient registry is enabled.
        supervision: optional
            :class:`~repro.parallel.supervisor.RetryPolicy`; when given,
            chunks run under the fault-tolerant supervisor — per-chunk
            deadlines, retry with backoff, pool respawn on worker crash,
            and the policy's degradation path when retries are exhausted.
            Under ``on_failure="skip"`` the items of an unrecoverable
            chunk are *omitted* from the result; callers that must map
            results back to items should use
            :func:`~repro.parallel.supervisor.supervised_map` directly.

    Raises:
        ConfigurationError: invalid workers / mode / chunk_size.
        ExecutionError: a chunk exhausted its retries under
            ``supervision`` with ``on_failure="raise"``.
    """
    if supervision is not None:
        from repro.parallel.supervisor import supervised_map
        return supervised_map(fn, items, workers=workers, mode=mode,
                              chunk_size=chunk_size,
                              collect_obs=collect_obs,
                              policy=supervision).results
    items = list(items)
    probe = (fn, items[0]) if items else (fn,)
    plan = plan_execution(len(items), workers, mode, chunk_size, probe)
    parent = get_registry()
    if plan.mode == "serial":
        return [fn(item) for item in items]
    collect = parent.enabled if collect_obs is None else collect_obs

    chunks = [items[offset:offset + plan.chunk_size]
              for offset in range(0, len(items), plan.chunk_size)]
    payloads = [(fn, chunk, collect, index, 0)
                for index, chunk in enumerate(chunks)]
    pool_workers = min(plan.workers, len(chunks))

    outputs: list[tuple[list[R], dict[str, Any] | None]] | None = None
    if plan.mode == "process":
        try:
            outputs = _map_in_processes(payloads, pool_workers)
        except _PoolUnavailable:
            if mode == "process":
                raise ConfigurationError(
                    "process pool unavailable on this platform; use "
                    "mode='thread' or mode='auto'") from None
            outputs = None
    if outputs is None:
        outputs = _map_in_threads(payloads, pool_workers)

    results: list[R] = []
    for chunk_results, snapshot in outputs:
        results.extend(chunk_results)
        if snapshot is not None:
            parent.merge_snapshot(snapshot)
    return results


class _PoolUnavailable(Exception):
    """Internal: the process pool could not be brought up at all."""


def _map_in_processes(payloads: list, pool_workers: int) -> list:
    """Run chunk payloads on a process pool (order-preserving).

    Environmental failures — a sandbox without ``/dev/shm`` semaphores, a
    missing ``fork``/``spawn`` — surface as :class:`_PoolUnavailable` so
    the caller can fall back; exceptions raised by the work function
    itself propagate untouched.  Every error path shuts the executor down
    with ``cancel_futures=True`` so a failing chunk raises immediately
    instead of blocking on straggler chunks that are now pointless.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    try:
        pool = ProcessPoolExecutor(max_workers=pool_workers)
    except (OSError, ImportError, NotImplementedError,
            PermissionError) as error:
        raise _PoolUnavailable(str(error)) from error
    try:
        futures = [pool.submit(_run_chunk, payload) for payload in payloads]
        results = [future.result() for future in futures]
    except BrokenProcessPool as error:
        pool.shutdown(wait=False, cancel_futures=True)
        raise _PoolUnavailable(str(error)) from error
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return results


def _map_in_threads(payloads: list, pool_workers: int) -> list:
    """Run chunk payloads on a thread pool (order-preserving).

    Pure-Python work gains no wall-clock speedup under the GIL; this path
    exists as the always-available fallback with identical semantics
    (per-chunk registries are thread-local, so obs capture stays exact).
    As with the process path, error paths cancel queued chunks so the
    first failure propagates without draining the whole backlog.
    """
    from concurrent.futures import ThreadPoolExecutor

    pool = ThreadPoolExecutor(max_workers=pool_workers)
    try:
        futures = [pool.submit(_run_chunk, payload) for payload in payloads]
        results = [future.result() for future in futures]
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return results


def shard_by_key(items: Iterable[T], key: Callable[[T], Any]
                 ) -> list[list[T]]:
    """Partition ``items`` into shards by ``key``, one shard per distinct
    key, in order of each key's first appearance.

    Within a shard, items keep their stream order.  This is the
    deterministic sharding primitive: feeding the shards to
    :func:`parallel_map` and concatenating reproduces the serial
    per-group processing order.
    """
    shards: dict[Any, list[T]] = {}
    for item in items:
        shards.setdefault(key(item), []).append(item)
    return list(shards.values())


def shard_by_user(requests: Iterable[Request]) -> list[list[Request]]:
    """Shard a request stream by ``user_id`` (first-appearance order).

    The unit of work for parallel session reconstruction: each shard is
    one user's sub-stream, exactly the partition
    :meth:`~repro.sessions.base.SessionReconstructor.reconstruct`
    performs serially.
    """
    return shard_by_key(requests, lambda request: request.user_id)


def shard_by_user_columns(items: Sequence[tuple[str, Sequence[Request]]],
                          symbols, shards: int | None = None,
                          backend: str | None = None) -> list[list[Any]]:
    """Shard users into blocks of interned column buffers.

    The columnar analogue of :func:`shard_by_user` — and the fix for the
    A17 regression it measured: instead of per-chunk ``Request`` object
    lists, workers receive :class:`~repro.core.columnar.UserColumns`
    byte buffers, so the pool payload shrinks to well under half the
    bytes (12 wire bytes per plain-CLF request against ~30 pickled) and,
    decisively, decoding becomes a buffer copy instead of per-object
    reconstruction — serialization stops eating the fan-out win.

    Args:
        items: ``(user_id, chronological requests)`` pairs, in the order
            output must be reassembled.
        symbols: the run's :class:`~repro.core.columnar.SymbolTable`
            (page ids are interned into it as a side effect).
        shards: target block count; defaults to
            :data:`CHUNKS_PER_WORKER` blocks per usable CPU.
        backend: columnar backend override (``None`` = auto).

    Returns:
        Contiguous user blocks, balanced by request count — concatenating
        per-block results in order reproduces serial user order.
    """
    from repro.core.columnar import UserColumns

    columns = [UserColumns.from_requests(user_id, requests, symbols,
                                         backend=backend)
               for user_id, requests in items]
    if shards is None:
        shards = available_cpus() * CHUNKS_PER_WORKER
    shards = max(1, min(shards, len(columns)))
    total = sum(len(column) for column in columns)
    blocks: list[list[Any]] = []
    block: list[Any] = []
    block_records = 0
    target = total / shards if shards else 0
    for column in columns:
        block.append(column)
        block_records += len(column)
        if block_records >= target and len(blocks) < shards - 1:
            blocks.append(block)
            block = []
            block_records = 0
    if block:
        blocks.append(block)
    return blocks
