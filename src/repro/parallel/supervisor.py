"""Chunk-level supervision: deadlines, retries and degradation policies.

:func:`repro.parallel.parallel_map` treats the process pool as reliable:
a worker crash (``BrokenProcessPool``) or a hung chunk takes the whole
call down and every completed chunk with it.  This module wraps the same
chunked execution in a supervisor that recovers at **chunk granularity**:

* every batch of outstanding chunks runs under a *progress deadline* —
  if no chunk completes within ``deadline`` seconds, the pool is
  presumed hung, killed, and the outstanding chunks are retried;
* a crashed pool (``BrokenProcessPool``) is respawned and only the
  unfinished chunks are resubmitted — completed results are kept;
* each failed chunk is retried up to ``max_retries`` times with
  exponential backoff plus deterministic seeded jitter;
* a chunk that exhausts its retries is resolved by the policy's
  ``on_failure`` mode: ``"serial"`` (default) re-executes it in-process
  in the parent, ``"skip"`` quarantines it as a structured
  :class:`ChunkFailure`, ``"raise"`` aborts with
  :class:`~repro.exceptions.ExecutionError`.

Determinism is preserved: recovery happens at chunk boundaries and the
results are reassembled in chunk order, so a run that survived three
crashes is byte-identical to an undisturbed one (skipped chunks
excepted — they are reported, never silently dropped).  Exceptions
raised by the *work function itself* are not retried: they are
deterministic bugs, not execution faults, and propagate exactly as they
do in plain ``parallel_map`` (after cancelling queued chunks).

The parent-side callback ``on_chunk_complete`` fires as each chunk's
results arrive (including retried and serially-degraded chunks), which
is what lets :mod:`repro.parallel.checkpoint` consumers persist
completed work units *while* the run is still in flight.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ConfigurationError, ExecutionError
from repro.obs import get_registry
from repro.parallel.engine import (
    _PoolUnavailable,
    _run_chunk,
    plan_execution,
)

__all__ = [
    "RetryPolicy",
    "ChunkFailure",
    "SupervisionStats",
    "SupervisedMapResult",
    "supervised_map",
]

_FAILURE_MODES = ("raise", "serial", "skip")


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How the supervisor treats crashed and hung chunks.

    Attributes:
        max_retries: retry budget per chunk (0 disables retries; the
            chunk then goes straight to the ``on_failure`` resolution).
        deadline: progress deadline in seconds — if no outstanding chunk
            completes within this window the pool is presumed hung and
            the outstanding chunks are retried.  ``None`` waits forever.
        backoff_base: first retry delay, seconds; doubles per attempt.
        backoff_cap: upper bound on the raw backoff delay, seconds.
        jitter: jitter fraction in ``[0, 1]`` — the delay is scaled by a
            factor drawn deterministically from ``seed`` in
            ``[1, 1 + jitter]``, so colliding retries decorrelate while
            tests stay reproducible.
        on_failure: ``"serial"`` | ``"skip"`` | ``"raise"`` — what to do
            with a chunk that exhausted its retries.
        seed: base seed for the jitter stream.

    Raises:
        ConfigurationError: for out-of-range fields.
    """

    max_retries: int = 2
    deadline: float | None = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    on_failure: str = "serial"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be positive (or None), got {self.deadline}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}")
        if self.on_failure not in _FAILURE_MODES:
            raise ConfigurationError(
                f"unknown on_failure mode {self.on_failure!r}; "
                f"use one of {_FAILURE_MODES}")

    def backoff_for(self, chunk_index: int, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based) of ``chunk_index``."""
        raw = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        rng = random.Random(f"{self.seed}:{chunk_index}:{attempt}")
        return raw * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True, slots=True)
class ChunkFailure:
    """Structured record of one chunk that exhausted its retries.

    Attributes:
        chunk_index: position of the chunk in the dispatch order.
        item_offset: index of the chunk's first item in the input list.
        n_items: number of items the chunk carried.
        attempts: total execution attempts (1 + retries).
        reason: ``"crash"`` or ``"deadline"`` — the *last* failure mode.
        error: human-readable detail of the last failure.
        resolution: ``"serial"``, ``"skipped"`` or ``"raised"``.
    """

    chunk_index: int
    item_offset: int
    n_items: int
    attempts: int
    reason: str
    error: str
    resolution: str

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for JSON reports and checkpoint manifests."""
        return {"chunk_index": self.chunk_index,
                "item_offset": self.item_offset,
                "n_items": self.n_items,
                "attempts": self.attempts,
                "reason": self.reason,
                "error": self.error,
                "resolution": self.resolution}


@dataclass(slots=True)
class SupervisionStats:
    """Recovery-event counters for one supervised run."""

    chunks: int = 0
    retries: int = 0
    respawns: int = 0
    deadline_hits: int = 0
    crashes: int = 0
    degraded_serial: int = 0
    skipped: int = 0


@dataclass(slots=True)
class SupervisedMapResult:
    """Outcome of one :func:`supervised_map` call.

    Attributes:
        results: the flattened work-function results in item order.
            Items of chunks skipped under ``on_failure="skip"`` are
            omitted — consult :attr:`failures` for their offsets.
        chunk_outputs: per-chunk result lists in chunk order (``None``
            for a skipped chunk) — the alignment-preserving view callers
            use to map results back to inputs under the skip policy.
        failures: structured records of chunks that exhausted retries.
        stats: recovery-event counters.
    """

    results: list[Any]
    chunk_outputs: list[list[Any] | None]
    failures: list[ChunkFailure] = field(default_factory=list)
    stats: SupervisionStats = field(default_factory=SupervisionStats)


def _kill_pool(pool: Any) -> None:
    """Tear a (possibly hung) process pool down without waiting.

    ``shutdown(wait=False, cancel_futures=True)`` alone leaves a hung
    worker sleeping in the background; terminating the worker processes
    first (best-effort, private API) reclaims them immediately.
    """
    try:
        for process in list(getattr(pool, "_processes", {}).values()):
            process.terminate()
    except Exception:  # pragma: no cover - teardown is best-effort
        pass
    pool.shutdown(wait=False, cancel_futures=True)


def supervised_map(fn: Callable[[Any], Any], items: Iterable[Any], *,
                   workers: int | None = 0, mode: str = "auto",
                   chunk_size: int | None = None,
                   collect_obs: bool | None = None,
                   policy: RetryPolicy | None = None,
                   on_chunk_complete: Callable[[int, list[Any]], None]
                   | None = None) -> SupervisedMapResult:
    """Fault-tolerant ``parallel_map`` with per-chunk recovery.

    Same chunking, ordering and exact-observability contract as
    :func:`repro.parallel.parallel_map`; on top of it, chunks that crash
    their worker or overrun the progress deadline are retried under
    ``policy`` and finally degraded per ``policy.on_failure``.

    Supervision is a *process-mode* feature: the serial plan and the
    thread fallback execute chunks directly (threads cannot crash the
    pool, and a hung thread cannot be killed), but chunk boundaries,
    ``on_chunk_complete`` callbacks and the result shape are identical
    in every mode, so callers need no mode-specific handling.

    Args:
        fn / items / workers / mode / chunk_size / collect_obs: as in
            :func:`~repro.parallel.parallel_map`.
        policy: the :class:`RetryPolicy`; ``None`` uses the defaults.
        on_chunk_complete: parent-side callback ``(chunk_index,
            results)`` invoked as each chunk completes (in completion
            order, not chunk order) — the checkpoint layer's hook.

    Raises:
        ExecutionError: a chunk exhausted its retries under
            ``on_failure="raise"``.
        ConfigurationError: invalid plan parameters, or ``"process"``
            mode requested where process pools are unavailable.
    """
    policy = policy or RetryPolicy()
    items = list(items)
    probe = (fn, items[0]) if items else (fn,)
    plan = plan_execution(len(items), workers, mode, chunk_size, probe)
    parent = get_registry()
    collect = parent.enabled if collect_obs is None else collect_obs

    # honor an explicit chunk_size even when the plan degenerated to
    # serial (which lumps everything into one chunk): callers that
    # checkpoint per chunk rely on a stable chunk↔unit mapping across
    # every mode and worker count.
    size = chunk_size if chunk_size is not None else plan.chunk_size
    chunks = [items[offset:offset + size]
              for offset in range(0, len(items), size)]
    stats = SupervisionStats(chunks=len(chunks))
    failures: list[ChunkFailure] = []

    outputs: list[tuple[list[Any], dict | None] | None]
    if plan.mode != "process":
        # serial plan or thread fallback: direct execution, same shape.
        # The chunk/attempt span makes each chunk attributable in
        # `repro trace analyze` (attempt 0 — nothing retries here).
        outputs = []
        for index, chunk in enumerate(chunks):
            with parent.span("parallel.chunk", chunk=index, attempt=0):
                result = _run_chunk((fn, chunk, collect, index, 0))
            outputs.append(result)
            if on_chunk_complete is not None:
                on_chunk_complete(index, result[0])
    else:
        try:
            outputs = _supervised_process_map(
                fn, chunks, min(plan.workers, len(chunks)), collect,
                policy, stats, failures, on_chunk_complete)
        except _PoolUnavailable:
            if mode == "process":
                raise ConfigurationError(
                    "process pool unavailable on this platform; use "
                    "mode='thread' or mode='auto'") from None
            outputs = []
            for index, chunk in enumerate(chunks):
                with parent.span("parallel.chunk", chunk=index,
                                 attempt=0):
                    result = _run_chunk((fn, chunk, collect, index, 0))
                outputs.append(result)
                if on_chunk_complete is not None:
                    on_chunk_complete(index, result[0])

    _publish_stats(parent, stats)
    results: list[Any] = []
    chunk_outputs: list[list[Any] | None] = []
    for output in outputs:
        if output is None:
            chunk_outputs.append(None)
            continue
        chunk_results, snapshot = output
        chunk_outputs.append(chunk_results)
        results.extend(chunk_results)
        if snapshot is not None:
            parent.merge_snapshot(snapshot)
    return SupervisedMapResult(results=results, chunk_outputs=chunk_outputs,
                               failures=failures, stats=stats)


def _publish_stats(registry: Any, stats: SupervisionStats) -> None:
    """Record recovery events as metrics — only when they happened.

    Series are created lazily so a zero-fault run leaves no supervisor
    series behind; that keeps resumed-run snapshots identical to
    uninterrupted ones.
    """
    if not registry.enabled:
        return
    for name, value in (("parallel.supervisor.retries", stats.retries),
                        ("parallel.supervisor.respawns", stats.respawns),
                        ("parallel.supervisor.deadline_exceeded",
                         stats.deadline_hits),
                        ("parallel.supervisor.crashes", stats.crashes),
                        ("parallel.supervisor.degraded_serial",
                         stats.degraded_serial),
                        ("parallel.supervisor.skipped", stats.skipped)):
        if value:
            registry.counter(name).inc(value)


def _supervised_process_map(fn: Callable[[Any], Any],
                            chunks: list[list[Any]], pool_workers: int,
                            collect: bool, policy: RetryPolicy,
                            stats: SupervisionStats,
                            failures: list[ChunkFailure],
                            on_chunk_complete: Callable | None
                            ) -> list[tuple[list[Any], dict | None] | None]:
    """The supervised process-pool execution loop.

    Returns per-chunk ``(results, obs_snapshot)`` tuples in chunk order,
    ``None`` for chunks skipped under ``on_failure="skip"``.
    """
    from concurrent.futures import FIRST_COMPLETED, wait
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    item_offsets: list[int] = []
    offset = 0
    for chunk in chunks:
        item_offsets.append(offset)
        offset += len(chunk)

    pending: dict[int, list[Any]] = dict(enumerate(chunks))
    attempts: dict[int, int] = {index: 0 for index in pending}
    outputs: dict[int, tuple[list[Any], dict | None] | None] = {}
    pool: ProcessPoolExecutor | None = None
    spawned = 0
    # worker-side code cannot trace (spans do not cross the process
    # boundary), so chunk lifecycle is recorded parent-side: trace
    # *events* carrying chunk/attempt, and a span around the in-parent
    # degraded-serial re-execution.
    registry = get_registry()

    def complete(index: int,
                 output: tuple[list[Any], dict | None]) -> None:
        registry.event("parallel.chunk.complete", chunk=index,
                       attempt=attempts[index])
        outputs[index] = output
        del pending[index]
        if on_chunk_complete is not None:
            on_chunk_complete(index, output[0])

    def resolve_exhausted(index: int, reason: str, error: str) -> None:
        """A chunk is out of retries: degrade per the failure policy."""
        record = ChunkFailure(
            chunk_index=index, item_offset=item_offsets[index],
            n_items=len(chunks[index]), attempts=attempts[index] + 1,
            reason=reason, error=error,
            resolution={"serial": "serial", "skip": "skipped",
                        "raise": "raised"}[policy.on_failure])
        failures.append(record)
        if policy.on_failure == "raise":
            raise ExecutionError(
                f"chunk {index} ({record.n_items} items at offset "
                f"{record.item_offset}) failed after {record.attempts} "
                f"attempts ({reason}): {error}")
        if policy.on_failure == "serial":
            # in-process re-execution: worker faults never fire in the
            # parent, so a genuinely healthy chunk recovers here, and a
            # genuinely broken work function raises its real exception.
            stats.degraded_serial += 1
            attempts[index] += 1
            with registry.span("parallel.chunk", chunk=index,
                               attempt=attempts[index], degraded="serial"):
                output = _run_chunk((fn, chunks[index], collect, index,
                                     attempts[index]))
            complete(index, output)
        else:
            stats.skipped += 1
            registry.event("parallel.chunk.skipped", chunk=index,
                           attempt=attempts[index], reason=reason)
            outputs[index] = None
            del pending[index]

    try:
        while pending:
            if pool is None:
                try:
                    pool = ProcessPoolExecutor(
                        max_workers=min(pool_workers, len(pending)))
                except (OSError, ImportError, NotImplementedError,
                        PermissionError) as error:
                    raise _PoolUnavailable(str(error)) from error
                spawned += 1
                if spawned > 1:
                    stats.respawns += 1

            futures = {
                pool.submit(_run_chunk,
                            (fn, pending[index], collect, index,
                             attempts[index])): index
                for index in sorted(pending)}
            failed_round: dict[int, tuple[str, str]] = {}
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, timeout=policy.deadline,
                                      return_when=FIRST_COMPLETED)
                if not done:
                    # progress deadline: nothing completed in the window,
                    # so the pool is presumed hung on the outstanding
                    # chunks.  Kill it; everything unfinished retries.
                    stats.deadline_hits += 1
                    for future in not_done:
                        failed_round[futures[future]] = (
                            "deadline",
                            f"no progress within {policy.deadline:g}s")
                    _kill_pool(pool)
                    pool = None
                    break
                crashed = False
                for future in done:
                    index = futures[future]
                    error = future.exception()
                    if error is None:
                        complete(index, future.result())
                    elif isinstance(error, BrokenProcessPool):
                        crashed = True
                    else:
                        # a deterministic work-function error: cancel the
                        # backlog and propagate, exactly like the plain
                        # engine path.
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise error
                if crashed:
                    stats.crashes += 1
                    for index in pending:
                        failed_round.setdefault(
                            index, ("crash", "worker process died "
                                    "(BrokenProcessPool)"))
                    _kill_pool(pool)
                    pool = None
                    break

            if not failed_round:
                continue
            delay = 0.0
            for index in sorted(failed_round):
                reason, error = failed_round[index]
                if attempts[index] < policy.max_retries:
                    delay = max(delay, policy.backoff_for(index,
                                                          attempts[index]))
                    attempts[index] += 1
                    stats.retries += 1
                    registry.event("parallel.chunk.retry", chunk=index,
                                   attempt=attempts[index], reason=reason)
                else:
                    resolve_exhausted(index, reason, error)
            if pending and delay > 0.0:
                time.sleep(delay)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)

    return [outputs[index] for index in range(len(chunks))]
