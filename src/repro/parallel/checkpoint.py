"""Durable checkpoint/resume for long-running runs.

A sweep across 10 parameter values or a 100k-agent simulation can run
for hours; a crash at 95% used to mean starting over.  This module gives
the long-running entry points (:func:`repro.evaluation.harness.sweep`,
:func:`repro.simulator.population.simulate_population`) a durable store
of *completed work units* so an interrupted run resumes where it died:

* every completed unit is written atomically (temp file in the same
  directory, then ``os.replace``) so a crash mid-write can never leave a
  half-written unit that a resume would trust;
* each unit document is schema-versioned and carries a SHA-256 integrity
  digest over its canonical JSON, so bit rot and torn writes are
  detected on load (a corrupt unit is *recomputed*, never trusted);
* the directory's ``MANIFEST.json`` pins a fingerprint of the producing
  configuration — resuming with a different topology, config or
  parameter grid is a :class:`~repro.exceptions.ConfigurationError`, not
  a silently mixed result.

Units carry an optional observability snapshot (the
:meth:`repro.obs.registry.Registry.snapshot` captured while the unit was
computed).  On resume the caller merges the saved snapshots for skipped
units, so a resumed run's final metrics equal an uninterrupted run's.

``repro doctor DIR`` (see :func:`CheckpointStore.validate`) audits a
checkpoint directory offline and reports what a ``--resume`` would skip,
redo, or refuse.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import ConfigurationError
from repro.obs import snapshot_digest

__all__ = [
    "CHECKPOINT_SCHEMA",
    "atomic_write_json",
    "load_verified_json",
    "MANIFEST_NAME",
    "CheckpointStore",
    "DoctorReport",
]

#: version of the on-disk unit/manifest layout; bumped on incompatible
#: changes so old directories are redone rather than misread.
CHECKPOINT_SCHEMA = 1

MANIFEST_NAME = "MANIFEST.json"

#: manifest statuses a store moves through.
_STATUSES = ("running", "interrupted", "complete")


def _unit_filename(kind: str, key: str) -> str:
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]
    return f"{kind}__{digest}.json"


def atomic_write_json(path: str, document: dict[str, Any]) -> None:
    """Write ``document`` to ``path`` via temp-file + ``os.replace``.

    The temp file lives in the target directory so the rename stays on
    one filesystem (atomic on POSIX); a crash between write and rename
    leaves only a ``.tmp`` straggler, which readers ignore.  Shared with
    :class:`repro.streaming.governor.SpillStore`, which persists cold
    user buffers under the same durability contract.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True, default=str)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_verified_json(path: str, schema: int) -> dict[str, Any] | None:
    """Load a schema-versioned, digest-sealed JSON document, else ``None``.

    The counterpart of writing a document whose ``digest`` key is
    :func:`repro.obs.snapshot_digest` over everything else: any failure
    mode — missing file, unparseable JSON, wrong schema, digest
    mismatch — returns ``None``, because the caller's correct response
    to all of them is the same (recompute, or fall back).  Shared by the
    checkpoint store and the sharded runtime's
    :class:`~repro.streaming.sharded.ReplayLog`.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(document, dict) or document.get("schema") != schema:
        return None
    stored = document.pop("digest", None)
    if stored != snapshot_digest(document):
        return None
    return document


@dataclass(slots=True)
class DoctorReport:
    """Outcome of auditing a checkpoint directory.

    Attributes:
        directory: the audited path.
        manifest: the parsed manifest, ``None`` if absent or unreadable.
        valid: ``(kind, key)`` of every unit a resume would trust.
        corrupt: filenames whose integrity digest does not match.
        schema_mismatch: filenames written under a different schema.
        orphans: files that are not valid checkpoint artifacts (stray
            files, interrupted temp files, units whose filename does not
            match their stored key).
    """

    directory: str
    manifest: dict[str, Any] | None = None
    valid: list[tuple[str, str]] = field(default_factory=list)
    corrupt: list[str] = field(default_factory=list)
    schema_mismatch: list[str] = field(default_factory=list)
    orphans: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every unit present is trustworthy."""
        return (self.manifest is not None and not self.corrupt
                and not self.schema_mismatch)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (``repro doctor --json``)."""
        return {
            "directory": self.directory,
            "manifest": self.manifest,
            "valid": [list(unit) for unit in self.valid],
            "corrupt": list(self.corrupt),
            "schema_mismatch": list(self.schema_mismatch),
            "orphans": list(self.orphans),
            "ok": self.ok,
        }

    def render(self) -> str:
        """Human-readable audit, one conclusion per line."""
        lines = [f"checkpoint directory: {self.directory}"]
        if self.manifest is None:
            lines.append("  manifest: MISSING or unreadable — --resume "
                         "would refuse this directory")
        else:
            lines.append(
                f"  manifest: schema={self.manifest.get('schema')} "
                f"status={self.manifest.get('status')} "
                f"label={self.manifest.get('label', '')!r}")
        lines.append(f"  units resume would skip: {len(self.valid)}")
        for kind, key in self.valid:
            lines.append(f"    ok    {kind}: {key}")
        for name in self.corrupt:
            lines.append(f"    BAD   {name} (digest mismatch — will be "
                         "recomputed)")
        for name in self.schema_mismatch:
            lines.append(f"    OLD   {name} (schema mismatch — will be "
                         "recomputed)")
        for name in self.orphans:
            lines.append(f"    ???   {name} (not a checkpoint unit — "
                         "ignored)")
        verdict = "ok" if self.ok else "DEGRADED"
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


class CheckpointStore:
    """One checkpoint directory: a manifest plus completed-unit files.

    A store is bound to a directory and, after :meth:`begin`, to the run
    fingerprint recorded in its manifest.  Units are write-once records
    keyed by ``(kind, key)`` — e.g. ``("sweep-point", "timeout[2]=15")``
    — each holding the unit's result payload, its obs snapshot, and an
    integrity digest.

    Thread-safety: units are written from the parent process only (the
    supervisor's ``on_chunk_complete`` callback runs in the parent), so
    no cross-process locking is needed.
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.fspath(directory)
        self._write_ordinal = 0

    # -- manifest lifecycle -------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def read_manifest(self) -> dict[str, Any] | None:
        """The parsed manifest, or ``None`` when absent or unreadable."""
        try:
            with open(self.manifest_path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return document if isinstance(document, dict) else None

    def begin(self, fingerprint: str, label: str = "",
              resume: bool = False) -> dict[str, Any]:
        """Open the directory for a run with the given fingerprint.

        Fresh directory: creates it and writes a ``running`` manifest.
        Existing directory with ``resume=True``: validates that the
        stored fingerprint matches — a mismatch means the checkpoints
        were produced by a *different* run configuration and mixing them
        in would corrupt results.  Existing directory without
        ``resume``: refused, so a typo'd ``--checkpoint`` can never
        silently cannibalize another run's state.

        Raises:
            ConfigurationError: fingerprint mismatch, schema mismatch,
                or an existing run directory without ``resume``.
        """
        os.makedirs(self.directory, exist_ok=True)
        existing = self.read_manifest()
        if existing is not None:
            if not resume:
                raise ConfigurationError(
                    f"checkpoint directory {self.directory!r} already "
                    f"holds a run (status={existing.get('status')!r}); "
                    f"pass --resume to continue it or point --checkpoint "
                    f"at a fresh directory")
            if existing.get("schema") != CHECKPOINT_SCHEMA:
                raise ConfigurationError(
                    f"checkpoint schema {existing.get('schema')!r} in "
                    f"{self.directory!r} does not match this version "
                    f"({CHECKPOINT_SCHEMA}); the directory must be redone")
            if existing.get("fingerprint") != fingerprint:
                raise ConfigurationError(
                    f"checkpoint directory {self.directory!r} was written "
                    f"by a different run configuration (fingerprint "
                    f"{existing.get('fingerprint')!r} != {fingerprint!r}); "
                    f"refusing to mix results")
        elif resume and any(name.endswith(".json")
                            for name in os.listdir(self.directory)):
            raise ConfigurationError(
                f"checkpoint directory {self.directory!r} has no readable "
                f"manifest; cannot resume from it")
        manifest = {"schema": CHECKPOINT_SCHEMA, "fingerprint": fingerprint,
                    "label": label, "status": "running"}
        atomic_write_json(self.manifest_path, manifest)
        return manifest

    def mark(self, status: str) -> None:
        """Transition the manifest status (``interrupted``/``complete``)."""
        if status not in _STATUSES:
            raise ConfigurationError(
                f"unknown checkpoint status {status!r}; "
                f"use one of {_STATUSES}")
        manifest = self.read_manifest()
        if manifest is None:  # pragma: no cover - begin() always precedes
            return
        manifest["status"] = status
        atomic_write_json(self.manifest_path, manifest)

    # -- units ---------------------------------------------------------

    def save_unit(self, kind: str, key: str, payload: Any,
                  obs: dict[str, Any] | None = None) -> str:
        """Persist one completed work unit; returns the file path.

        The document's digest covers the canonical JSON of everything
        except the digest itself, so any post-write mutation — torn
        block, bit rot, a hand-edit — is detected by :meth:`load_unit`.
        """
        document: dict[str, Any] = {"schema": CHECKPOINT_SCHEMA,
                                    "kind": kind, "key": key,
                                    "payload": payload, "obs": obs}
        document["digest"] = snapshot_digest(document)
        path = os.path.join(self.directory, _unit_filename(kind, key))
        atomic_write_json(path, document)
        ordinal = self._write_ordinal
        self._write_ordinal += 1
        if os.environ.get("REPRO_EXEC_FAULTS"):
            from repro.faults.execution import corrupt_checkpoint_file
            corrupt_checkpoint_file(path, ordinal)
        return path

    def load_unit(self, kind: str, key: str) -> dict[str, Any] | None:
        """Load a unit if present *and* trustworthy, else ``None``.

        ``None`` covers every failure mode — missing file, unparseable
        JSON, schema mismatch, digest mismatch, key collision — because
        the caller's correct response to all of them is the same:
        recompute the unit.
        """
        path = os.path.join(self.directory, _unit_filename(kind, key))
        document = self._load_verified(path)
        if (document is None or document.get("kind") != kind
                or document.get("key") != key):
            return None
        return document

    @staticmethod
    def _load_verified(path: str) -> dict[str, Any] | None:
        return load_verified_json(path, CHECKPOINT_SCHEMA)

    def completed_units(self, kind: str | None = None
                        ) -> list[dict[str, Any]]:
        """Every trustworthy unit on disk (optionally one kind only)."""
        units = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        for name in names:
            if name == MANIFEST_NAME or not name.endswith(".json"):
                continue
            document = self._load_verified(
                os.path.join(self.directory, name))
            if document is None:
                continue
            if kind is not None and document.get("kind") != kind:
                continue
            units.append(document)
        return units

    # -- audit ---------------------------------------------------------

    def validate(self) -> DoctorReport:
        """Audit the directory: what would ``--resume`` skip, redo, refuse?

        Classifies every file: ``valid`` units (digest and filename both
        check out), ``corrupt`` (digest mismatch), ``schema_mismatch``
        (written by another layout version), and ``orphans`` (temp-file
        stragglers, stray files, units filed under the wrong name).
        """
        report = DoctorReport(directory=self.directory,
                              manifest=self.read_manifest())
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return report
        for name in names:
            if name == MANIFEST_NAME:
                continue
            path = os.path.join(self.directory, name)
            if not name.endswith(".json") or not os.path.isfile(path):
                report.orphans.append(name)
                continue
            try:
                with open(path, encoding="utf-8") as handle:
                    document = json.load(handle)
            except (OSError, json.JSONDecodeError):
                report.corrupt.append(name)
                continue
            if not isinstance(document, dict):
                report.orphans.append(name)
                continue
            if document.get("schema") != CHECKPOINT_SCHEMA:
                report.schema_mismatch.append(name)
                continue
            stored = document.pop("digest", None)
            if stored != snapshot_digest(document):
                report.corrupt.append(name)
                continue
            kind = document.get("kind")
            key = document.get("key")
            if (not isinstance(kind, str) or not isinstance(key, str)
                    or _unit_filename(kind, key) != name):
                report.orphans.append(name)
                continue
            report.valid.append((kind, key))
        return report
