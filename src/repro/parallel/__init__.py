"""repro.parallel — the deterministic fan-out execution engine.

One engine for every parallel path in the library: user-sharded session
reconstruction, concurrent heuristic scoring and trial sweeps in the
evaluation harness, and agent-sharded simulation.  The contract is
*byte-identical output regardless of worker count* — see
:mod:`repro.parallel.engine` for how chunked order-preserving execution
and per-worker metrics-registry merging deliver that.

On top of the engine sit the fault-tolerance layers:

* :mod:`repro.parallel.supervisor` — chunk-level retry with backoff,
  progress deadlines, pool respawn after worker crashes, and structured
  degradation when a chunk cannot be recovered;
* :mod:`repro.parallel.checkpoint` — atomic, integrity-hashed
  checkpoints of completed work units so interrupted sweeps and
  simulations resume instead of restarting.

Quickstart::

    from repro import SmartSRA, random_site
    from repro.parallel import RetryPolicy, parallel_map

    site = random_site(300, 15, seed=1)
    smart = SmartSRA(site)
    sessions = smart.reconstruct(log_requests, workers=0)  # 0 = all CPUs

    # or drive the engine directly, surviving worker crashes:
    squares = parallel_map(pow2, range(1000), workers=4,
                           supervision=RetryPolicy(deadline=60.0))
"""

from repro.parallel.checkpoint import (
    atomic_write_json,
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    DoctorReport,
)
from repro.parallel.engine import (
    CHUNKS_PER_WORKER,
    ParallelPlan,
    available_cpus,
    parallel_map,
    paused_gc,
    plan_execution,
    resolve_workers,
    shard_by_key,
    shard_by_user,
    shard_by_user_columns,
)
from repro.parallel.supervisor import (
    ChunkFailure,
    RetryPolicy,
    SupervisedMapResult,
    SupervisionStats,
    supervised_map,
)

__all__ = [
    "CHUNKS_PER_WORKER",
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "ChunkFailure",
    "DoctorReport",
    "ParallelPlan",
    "RetryPolicy",
    "SupervisedMapResult",
    "SupervisionStats",
    "atomic_write_json",
    "available_cpus",
    "parallel_map",
    "paused_gc",
    "plan_execution",
    "resolve_workers",
    "shard_by_key",
    "shard_by_user",
    "shard_by_user_columns",
    "supervised_map",
]
