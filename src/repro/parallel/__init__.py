"""repro.parallel — the deterministic fan-out execution engine.

One engine for every parallel path in the library: user-sharded session
reconstruction, concurrent heuristic scoring and trial sweeps in the
evaluation harness, and agent-sharded simulation.  The contract is
*byte-identical output regardless of worker count* — see
:mod:`repro.parallel.engine` for how chunked order-preserving execution
and per-worker metrics-registry merging deliver that.

Quickstart::

    from repro import SmartSRA, random_site
    from repro.parallel import parallel_map

    site = random_site(300, 15, seed=1)
    smart = SmartSRA(site)
    sessions = smart.reconstruct(log_requests, workers=0)  # 0 = all CPUs

    # or drive the engine directly:
    squares = parallel_map(pow2, range(1000), workers=4)
"""

from repro.parallel.engine import (
    CHUNKS_PER_WORKER,
    ParallelPlan,
    available_cpus,
    parallel_map,
    paused_gc,
    plan_execution,
    resolve_workers,
    shard_by_key,
    shard_by_user,
)

__all__ = [
    "CHUNKS_PER_WORKER",
    "ParallelPlan",
    "available_cpus",
    "parallel_map",
    "paused_gc",
    "plan_execution",
    "resolve_workers",
    "shard_by_key",
    "shard_by_user",
]
