"""Session-set utility operations.

Small, composable transformations analysts apply between reconstruction
and mining: time-window restriction, per-user sampling, page renaming
(e.g. joining anonymized datasets), and set concatenation.  All functions
return new :class:`~repro.sessions.model.SessionSet` objects; inputs are
never mutated.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable

from repro.exceptions import EvaluationError
from repro.sessions.model import Request, Session, SessionSet

__all__ = [
    "concatenate",
    "within_window",
    "sample_users",
    "rename_pages",
    "split_by_user",
]


def concatenate(session_sets: Iterable[SessionSet]) -> SessionSet:
    """Concatenate several session sets (order preserved)."""
    return SessionSet(session for session_set in session_sets
                      for session in session_set)


def within_window(sessions: SessionSet, start: float,
                  end: float) -> SessionSet:
    """Sessions that lie *entirely* within ``[start, end]``.

    Sessions straddling the boundary are dropped, not truncated —
    truncating would fabricate sessions that never happened.

    Raises:
        EvaluationError: if ``end < start``.
    """
    if end < start:
        raise EvaluationError(
            f"window end {end} precedes start {start}")
    return SessionSet(
        session for session in sessions
        if session and start <= session.start_time
        and session.end_time <= end)


def sample_users(sessions: SessionSet, fraction: float,
                 seed: int = 0) -> SessionSet:
    """Keep all sessions of a random ``fraction`` of users.

    Sampling whole users (not individual sessions) preserves per-user
    session structure, which is what evaluation and mining assume.

    Raises:
        EvaluationError: for a fraction outside (0, 1].
    """
    if not 0 < fraction <= 1:
        raise EvaluationError(
            f"fraction must be in (0, 1], got {fraction}")
    users = sorted(sessions.users())
    rng = random.Random(seed)
    keep_count = max(1, round(fraction * len(users))) if users else 0
    kept = set(rng.sample(users, keep_count)) if users else set()
    return SessionSet(session for session in sessions
                      if session and session.user_id in kept)


def rename_pages(sessions: SessionSet,
                 mapping: Callable[[str], str]) -> SessionSet:
    """Apply ``mapping`` to every page id (timestamps/users untouched).

    Useful for joining datasets whose page namespaces differ (or for
    pseudonymizing page names the way :mod:`repro.logs.anonymize` handles
    hosts).
    """
    renamed = []
    for session in sessions:
        renamed.append(Session(
            Request(request.timestamp, request.user_id,
                    mapping(request.page), request.synthetic,
                    (mapping(request.referrer)
                     if request.referrer is not None else None))
            for request in session))
    return SessionSet(renamed)


def split_by_user(sessions: SessionSet) -> dict[str, SessionSet]:
    """One :class:`SessionSet` per user, keyed by user id."""
    return {user: SessionSet(sessions.for_user(user))
            for user in sessions.users()}
