"""Referrer-based session reconstruction (Combined Log Format).

The paper's reactive setting assumes plain CLF — no Referer header — and
shows how much accuracy that costs.  This module implements the classic
referrer-chaining heuristic (Cooley et al.) for sites whose servers *do*
log the Referer field, providing the natural upper baseline for the
reactive heuristics: how close does Smart-SRA get to what richer logging
would give you?

Rules, per user, processing requests chronologically:

* a request with **no referrer** (direct entry / typed URL) opens a new
  session;
* a request whose referrer equals the **last page of an open session**
  (within the page-stay bound ρ) extends the most recently active such
  session;
* a request whose referrer was **visited earlier but is not any open
  session's last page** is a branch through the browser cache: a new
  session opens with a synthetic landing on the referrer followed by the
  request (referrer-driven path completion — the Referer header reveals
  the cache-served page the log itself lost);
* an unknown referrer (external site) opens a new session.

Open sessions retire once their last request is more than ρ old, bounding
the scan and enforcing the page-stay rule.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ConfigurationError
from repro.sessions.base import SessionReconstructor
from repro.sessions.model import Request, Session
from repro.sessions.time_oriented import DEFAULT_PAGE_STAY

__all__ = ["ReferrerHeuristic"]


class ReferrerHeuristic(SessionReconstructor):
    """Referrer-chaining reconstruction over Combined-Log-Format requests.

    Args:
        max_gap: the ρ page-stay bound in seconds (paper default: 10 min).

    Raises:
        ConfigurationError: for a non-positive bound.

    Note:
        Requests lacking referrer information (plain-CLF input) all open
        singleton-seeded sessions, so feeding this heuristic CLF data
        degrades it to "every request starts a session" — by design: the
        heuristic *is* the value of the Referer field.
    """

    name = "referrer"
    label = "referrer-based (Combined Log Format)"

    def __init__(self, max_gap: float = DEFAULT_PAGE_STAY) -> None:
        if max_gap <= 0:
            raise ConfigurationError(
                f"max_gap must be positive, got {max_gap}")
        self.max_gap = max_gap

    def reconstruct_user(self, requests: Sequence[Request]) -> list[Session]:
        finished: list[list[Request]] = []
        open_sessions: list[list[Request]] = []
        visited: set[str] = set()

        for request in requests:
            # Retire sessions that exceeded the page-stay bound: they can
            # no longer legally be extended.
            still_open: list[list[Request]] = []
            for session in open_sessions:
                if request.timestamp - session[-1].timestamp > self.max_gap:
                    finished.append(session)
                else:
                    still_open.append(session)
            open_sessions = still_open

            open_sessions.append(
                self._place(request, open_sessions, visited))
            visited.add(request.page)

        finished.extend(open_sessions)
        return [Session(session) for session in finished]

    def _place(self, request: Request,
               open_sessions: list[list[Request]],
               visited: set[str]) -> list[Request]:
        """Attach ``request`` per the referrer rules.

        Returns the session list that must be (re-)appended as the most
        recently active one; when the request extends an existing session,
        that session is removed from ``open_sessions`` first so the caller
        re-appends it at the back.
        """
        referrer = request.referrer
        if referrer is not None:
            # Most recently active session ending on the referrer wins.
            for index in range(len(open_sessions) - 1, -1, -1):
                if open_sessions[index][-1].page == referrer:
                    session = open_sessions.pop(index)
                    session.append(request)
                    return session
            if referrer in visited:
                # Branch through the browser cache: the Referer header
                # names a page the user re-landed on without a server hit.
                ghost = Request(request.timestamp, request.user_id,
                                referrer, synthetic=True)
                return [ghost, request]
        return [request]
