"""Reconstructor interface and the heuristic registry.

Every session reconstruction heuristic in the library — the paper's three
baselines and Smart-SRA — implements :class:`SessionReconstructor`.  A
heuristic's unit of work is *one user's* chronological request stream (the
``UserRequestSequence`` of the paper); :meth:`SessionReconstructor.reconstruct`
handles a whole multi-user stream by partitioning on ``user_id`` first.

Heuristics register themselves under the short names used throughout the
paper's evaluation (``heur1`` … ``heur4``) plus a descriptive alias, so the
CLI and the experiment harness can be driven by name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence

from repro.exceptions import ConfigurationError, ReconstructionError
from repro.obs import SIZE_BUCKETS, get_registry
from repro.sessions.model import Request, Session, SessionSet

__all__ = [
    "SessionReconstructor",
    "HEURISTIC_REGISTRY",
    "register_heuristic",
    "get_heuristic",
    "available_heuristics",
]


class SessionReconstructor(ABC):
    """Base class for reactive session reconstruction heuristics.

    Subclasses implement :meth:`reconstruct_user`, which receives one user's
    requests already validated and sorted, and return the sessions they
    carve out of it.
    """

    #: short identifier (e.g. ``"heur4"``); set by subclasses.
    name: str = "base"
    #: human-readable label used in reports and plots.
    label: str = "abstract reconstructor"
    #: whether :meth:`reconstruct` accepts ``engine="columnar"`` — set by
    #: subclasses that implement :meth:`_columnar_plane`.
    supports_columnar: bool = False

    def _columnar_plane(self):
        """The heuristic's :class:`~repro.core.columnar.ColumnarPlane`.

        Only called when :attr:`supports_columnar` is true; subclasses
        that set the flag must override this (and should cache the plane,
        so the symbol table is interned once per heuristic instance).
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares no columnar plane")

    @abstractmethod
    def reconstruct_user(self, requests: Sequence[Request]) -> list[Session]:
        """Split one user's chronological request stream into sessions.

        Args:
            requests: the user's requests in non-decreasing timestamp order,
                all sharing one ``user_id``.  Never empty.

        Returns:
            The reconstructed sessions, in discovery order.
        """

    def reconstruct(self, requests: Iterable[Request], *,
                    workers: int | None = None,
                    mode: str = "auto", supervision=None,
                    engine: str = "object") -> SessionSet:
        """Reconstruct sessions for a whole (possibly multi-user) stream.

        The stream is partitioned by ``user_id``; each user's sub-stream is
        sorted by timestamp and handed to :meth:`reconstruct_user`.  Users
        are processed in order of their first appearance so output is
        deterministic — including under parallel execution, which shards
        by user and reassembles in shard order
        (:func:`repro.parallel.parallel_map`), making the result
        byte-identical for every worker count.

        Args:
            requests: the request stream, in any order.
            workers: ``None`` (default) runs in-process; ``0`` fans out
                over all usable CPUs; a positive count uses exactly that
                many workers.
            mode: parallel execution mode (``"auto"`` picks processes when
                the heuristic pickles, else threads); ignored when
                ``workers`` is ``None``.
            supervision: optional
                :class:`~repro.parallel.supervisor.RetryPolicy` — parallel
                chunks then survive worker crashes and hangs (retry with
                backoff, pool respawn, serial degradation), with output
                still byte-identical to the serial run.  Ignored when
                ``workers`` is ``None``.
            engine: ``"object"`` (default) runs :meth:`reconstruct_user`
                per user; ``"columnar"`` runs the heuristic's vectorized
                data plane (:mod:`repro.core.columnar`) over interned
                int columns — same session *set*, deterministic but
                possibly different construction order, and parallel
                fan-out ships compact column buffers instead of pickled
                request lists.  Only heuristics with
                :attr:`supports_columnar` accept it.

        Raises:
            ReconstructionError: if any request has a negative timestamp.
            ConfigurationError: for an invalid ``workers``, ``mode`` or
                ``engine``, or ``engine="columnar"`` on a heuristic
                without a columnar plane.
            ExecutionError: a chunk exhausted its retries under
                ``supervision`` with ``on_failure="raise"``.
        """
        from repro.parallel import parallel_map, paused_gc

        if engine not in ("object", "columnar"):
            raise ConfigurationError(
                f"unknown engine {engine!r}; use 'object' or 'columnar'")
        if engine == "columnar" and not self.supports_columnar:
            raise ConfigurationError(
                f"heuristic {self.name!r} has no columnar data plane; "
                "use engine='object'")
        registry = get_registry()
        # The whole batch — partitioning, sorting, reconstruction and the
        # result set — only allocates objects that stay live until it
        # returns, so generational GC passes mid-batch scan an
        # ever-growing heap for nothing; pausing them keeps per-record
        # cost flat as the log grows (see docs/performance.md).
        with paused_gc():
            per_user: dict[str, list[Request]] = {}
            n_requests = 0
            for request in requests:
                if request.timestamp < 0:
                    raise ReconstructionError(
                        f"negative timestamp {request.timestamp} for user "
                        f"{request.user_id!r}"
                    )
                per_user.setdefault(request.user_id, []).append(request)
                n_requests += 1

            sessions: list[Session] = []
            with registry.span("sessions.reconstruct",
                               heuristic=self.name, users=len(per_user)), \
                    registry.timer("sessions.reconstruct.seconds",
                                   heuristic=self.name):
                for user_requests in per_user.values():
                    user_requests.sort(key=lambda r: r.timestamp)
                if engine == "columnar":
                    from repro.core import columnar
                    plane = self._columnar_plane()
                    with registry.span("sessions.columnar",
                                       heuristic=self.name), \
                            registry.timer("sessions.columnar.seconds",
                                           heuristic=self.name):
                        if workers is None:
                            sessions.extend(columnar.reconstruct_serial(
                                plane, per_user))
                        else:
                            sessions.extend(columnar.reconstruct_parallel(
                                plane, per_user, workers=workers,
                                mode=mode, supervision=supervision))
                elif workers is None:
                    for user_requests in per_user.values():
                        sessions.extend(
                            self.reconstruct_user(user_requests))
                else:
                    per_user_sessions = parallel_map(
                        self.reconstruct_user, list(per_user.values()),
                        workers=workers, mode=mode, supervision=supervision)
                    for user_sessions in per_user_sessions:
                        sessions.extend(user_sessions)
            if registry.enabled:
                registry.counter("sessions.requests",
                                 heuristic=self.name).inc(n_requests)
                registry.counter("sessions.reconstructed",
                                 heuristic=self.name).inc(len(sessions))
                lengths = registry.histogram("sessions.length",
                                             SIZE_BUCKETS,
                                             heuristic=self.name)
                for session in sessions:
                    lengths.observe(len(session))
            return SessionSet(sessions)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


#: Maps registry names to zero-argument factories producing a default-
#: configured instance of the heuristic.  Factories (rather than instances)
#: keep registered heuristics stateless across experiments.
HEURISTIC_REGISTRY: dict[str, Callable[[], SessionReconstructor]] = {}


def register_heuristic(*names: str) -> Callable[
        [Callable[[], SessionReconstructor]],
        Callable[[], SessionReconstructor]]:
    """Class/factory decorator adding an entry to :data:`HEURISTIC_REGISTRY`.

    Args:
        names: one or more registry keys (e.g. ``"heur1"``, ``"duration"``).

    Raises:
        ReconstructionError: if a name is already taken by a different
            factory (idempotent re-registration of the same factory is
            allowed so modules may be re-imported freely).
    """
    def decorator(factory: Callable[[], SessionReconstructor]
                  ) -> Callable[[], SessionReconstructor]:
        for name in names:
            existing = HEURISTIC_REGISTRY.get(name)
            if existing is not None and existing is not factory:
                raise ReconstructionError(
                    f"heuristic name {name!r} is already registered")
            HEURISTIC_REGISTRY[name] = factory
        return factory
    return decorator


def get_heuristic(name: str) -> SessionReconstructor:
    """Instantiate a registered heuristic by name.

    Raises:
        ReconstructionError: for an unknown name; the message lists the
            available names.
    """
    try:
        factory = HEURISTIC_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(HEURISTIC_REGISTRY))
        raise ReconstructionError(
            f"unknown heuristic {name!r}; available: {known}") from None
    return factory()


def available_heuristics() -> tuple[str, ...]:
    """All registered heuristic names, sorted."""
    return tuple(sorted(HEURISTIC_REGISTRY))
