"""The :class:`AllMaximalPaths` reconstructor (``amp``).

Composes Phase 1 (:func:`repro.core.phase1.split_candidates`) with the
All-Maximal-Paths enumeration (:mod:`repro.core.amp` — Bayir–Toroslu
2013, arXiv 1307.1927) behind the standard
:class:`~repro.sessions.base.SessionReconstructor` interface.

Where Smart-SRA's Phase 2 extends one wave of sessions, AMP emits *every*
maximal link-consistent path of each candidate, guarded by
:class:`~repro.core.amp.AMPConfig`'s path budget so dense crawler/NAT
traffic degrades gracefully instead of exploding.  The ``implementation``
knob selects the clear reference enumerator or the interned memoized one
— the ``amp-reference`` / ``amp-optimized`` diffcheck engines hold them
byte-identical.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.amp import (
    AMPConfig,
    amp_sessions_optimized,
    amp_sessions_reference,
    _publish_amp,
)
from repro.core.config import SmartSRAConfig
from repro.core.phase1 import split_candidates
from repro.exceptions import ConfigurationError
from repro.obs import get_registry
from repro.sessions.base import HEURISTIC_REGISTRY, SessionReconstructor
from repro.sessions.model import Request, Session
from repro.topology.graph import WebGraph

__all__ = ["AllMaximalPaths"]


class AllMaximalPaths(SessionReconstructor):
    """amp — All-Maximal-Paths session reconstruction.

    Args:
        topology: the site's hyperlink graph.
        config: Smart-SRA thresholds (shared δ/ρ semantics); defaults to
            the paper's (δ = 30 min, ρ = 10 min).
        amp: path-explosion guards; defaults to
            :class:`~repro.core.amp.AMPConfig` (budget 4096, truncate).
        implementation: ``"optimized"`` (default — interned adjacency,
            memoized suffix extension) or ``"reference"`` (clear DFS);
            outputs are byte-identical.

    Example:
        >>> from repro.topology import WebGraph
        >>> graph = WebGraph([("A", "B"), ("A", "C")], start_pages=["A"])
        >>> from repro.sessions.model import Request
        >>> stream = [Request(0.0, "u", "A"), Request(30.0, "u", "B"),
        ...           Request(60.0, "u", "C")]
        >>> sorted(s.pages for s in AllMaximalPaths(graph).reconstruct(stream))
        [('A', 'B'), ('A', 'C')]
    """

    name = "amp"
    label = "All Maximal Paths (Bayir-Toroslu 2013)"
    supports_columnar = False

    def __init__(self, topology: WebGraph,
                 config: SmartSRAConfig | None = None,
                 amp: AMPConfig | None = None,
                 implementation: str = "optimized") -> None:
        if implementation not in ("optimized", "reference"):
            raise ConfigurationError(
                f"unknown AMP implementation {implementation!r}; "
                "use 'optimized' or 'reference'")
        self.topology = topology
        self.config = config if config is not None else SmartSRAConfig()
        self.amp = amp if amp is not None else AMPConfig()
        self.implementation = implementation
        self._symbols = None

    def _interner(self):
        """The cached per-instance symbol table (optimized path only)."""
        symbols = self._symbols
        if symbols is None:
            from repro.core.columnar import SymbolTable
            symbols = self._symbols = SymbolTable.for_topology(self.topology)
        return symbols

    def __getstate__(self) -> dict[str, object]:
        # the interner duplicates page names the topology already carries;
        # parallel workers re-seed their own copy instead of unpickling it.
        state = self.__dict__.copy()
        state["_symbols"] = None
        return state

    def reconstruct_user(self, requests: Sequence[Request]) -> list[Session]:
        registry = get_registry()
        sessions: list[Session] = []
        with registry.span("sessions.phase1"), \
                registry.timer("sessions.phase1.seconds"):
            candidates = split_candidates(requests, self.config)
        n_paths = truncated = blocked = 0
        with registry.span("sessions.amp"), \
                registry.timer("sessions.amp.seconds"):
            for candidate in candidates:
                if self.implementation == "optimized":
                    outcome = amp_sessions_optimized(
                        candidate, self.topology, self.config, self.amp,
                        interner=self._interner())
                else:
                    outcome = amp_sessions_reference(
                        candidate, self.topology, self.config, self.amp)
                sessions.extend(outcome.sessions)
                n_paths += len(outcome.sessions)
                if outcome.policy == "truncate":
                    truncated += outcome.path_count - len(outcome.sessions)
                elif outcome.policy == "block":
                    blocked += 1
        _publish_amp(len(candidates), n_paths, truncated, blocked)
        return sessions


def _amp_needs_topology() -> SessionReconstructor:  # pragma: no cover
    raise ConfigurationError(
        "amp (All-Maximal-Paths) requires a site topology; construct "
        "AllMaximalPaths(topology) directly or use "
        "repro.evaluation.spec.build_heuristics(['amp'], topology)")


HEURISTIC_REGISTRY.setdefault("amp", _amp_needs_topology)
HEURISTIC_REGISTRY.setdefault("maximal-paths", _amp_needs_topology)
