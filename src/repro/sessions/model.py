"""Value types shared by the simulator, the log substrate and the heuristics.

The paper works with three granularities of web usage data:

* a **request** — one page hit by one user at one instant (the projection of
  a Common Log Format record onto the only three fields session
  reconstruction needs: user identity, timestamp and page);
* a **session** — an ordered sequence of requests belonging to a single
  visit of a single user;
* a **session set** — all sessions of an experiment (ground truth from the
  agent simulator, or the output of one heuristic over a whole log).

All three types are immutable.  Immutability matters here because the
Smart-SRA Phase 2 algorithm *branches*: one open session may be extended by
several pages simultaneously, producing several longer sessions.  Sharing
immutable prefixes makes that cheap and safe.

Timestamps are plain ``float`` seconds (an epoch offset or a simulation
clock — the heuristics only ever take differences).
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from repro.exceptions import ReconstructionError

__all__ = ["Request", "Session", "SessionSet"]


@dataclass(frozen=True, slots=True, order=True)
class Request:
    """One page request by one user.

    Ordering is by ``(timestamp, user_id, page)`` so that sorting a mixed
    list of requests yields a stable chronological stream.

    Attributes:
        timestamp: request time, in seconds on an arbitrary shared clock.
        user_id: stable identity of the requesting agent.  For reactive
            processing this is whatever the log partitioner decided a "user"
            is — typically the client IP (plus user agent, when available).
        page: canonical page identifier, e.g. ``"P13"`` or ``"/docs/a.html"``.
        synthetic: ``True`` for requests that never reached the server and
            were *inserted* by a heuristic (the navigation-oriented
            heuristic's backward browser movements) or observed only on the
            client side (cache hits in the simulator's ground truth).
        referrer: the page whose link the user followed, when known.
            Plain CLF does not record it (``None`` throughout the paper's
            reactive setting); the Combined Log Format does, and the
            referrer-based heuristic (:mod:`repro.sessions.referrer`)
            exploits it.  ``None`` also denotes a direct entry (typed URL).
    """

    timestamp: float
    user_id: str
    page: str
    synthetic: bool = field(default=False, compare=False)
    referrer: str | None = field(default=None, compare=False)

    def shifted(self, delta: float) -> "Request":
        """Return a copy with the timestamp moved by ``delta`` seconds."""
        return Request(self.timestamp + delta, self.user_id, self.page,
                       self.synthetic, self.referrer)

    def without_referrer(self) -> "Request":
        """Return a copy with the referrer stripped (CLF's view)."""
        return Request(self.timestamp, self.user_id, self.page,
                       self.synthetic)


class Session:
    """An immutable, chronologically ordered sequence of requests.

    A :class:`Session` behaves like a read-only sequence of
    :class:`Request` objects and additionally exposes the page-id view used
    by the capture metric (:attr:`pages`).

    Args:
        requests: the member requests, already in timestamp order.  The
            navigation-oriented heuristic legitimately repeats pages and
            reuses timestamps for its inserted backward movements, so only
            *descending* timestamps are rejected.

    Raises:
        ReconstructionError: if the requests are not in non-decreasing
            timestamp order, or if they mix user identities.
    """

    __slots__ = ("_requests", "_pages")

    def __init__(self, requests: Iterable[Request]) -> None:
        reqs = tuple(requests)
        for earlier, later in zip(reqs, reqs[1:]):
            if later.timestamp < earlier.timestamp:
                raise ReconstructionError(
                    "session requests must be in non-decreasing timestamp "
                    f"order; got {earlier.timestamp} then {later.timestamp}"
                )
            if later.user_id != earlier.user_id:
                raise ReconstructionError(
                    "a session may not mix users: "
                    f"{earlier.user_id!r} vs {later.user_id!r}"
                )
        self._requests: tuple[Request, ...] = reqs
        self._pages: tuple[str, ...] = tuple(r.page for r in reqs)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_pages(cls, pages: Sequence[str], *, user_id: str = "u0",
                   start: float = 0.0, gap: float = 60.0) -> "Session":
        """Build a session from bare page ids with evenly spaced timestamps.

        Convenience for tests, docs and worked examples where only the page
        order matters.

        Args:
            pages: page identifiers in visit order.
            user_id: user identity stamped on every request.
            start: timestamp of the first request, seconds.
            gap: constant inter-request gap, seconds.
        """
        return cls(Request(start + i * gap, user_id, page)
                   for i, page in enumerate(pages))

    @classmethod
    def from_trusted_parts(cls, requests: tuple[Request, ...]) -> "Session":
        """Construct from an already-validated request tuple, skipping checks.

        The columnar data plane (:mod:`repro.core.columnar`) proves the
        timestamp-ordering and single-user invariants on integer columns
        before materializing, so re-walking the tuple here would double the
        boundary cost for nothing.  Same contract as the fast path inside
        :meth:`extended`: the caller guarantees the invariants hold.

        The page view is built lazily on first :attr:`pages` access —
        consumers that stay on the request view (or on the plane's index
        output) never pay for it.
        """
        session = cls.__new__(cls)
        session._requests = requests
        session._pages = None
        return session

    def extended(self, request: Request) -> "Session":
        """Return a new session with ``request`` appended.

        The receiver is unchanged; Smart-SRA Phase 2 relies on this to
        branch one open session into several extensions.

        Only the new boundary is validated — the existing requests were
        checked when this session was built, so re-walking them would make
        growing a session O(length²) in Phase 2's hot loop.

        Raises:
            ReconstructionError: if ``request`` predates the current last
                request or belongs to a different user.
        """
        if self._requests:
            last = self._requests[-1]
            if request.timestamp < last.timestamp:
                raise ReconstructionError(
                    "session requests must be in non-decreasing timestamp "
                    f"order; got {last.timestamp} then {request.timestamp}"
                )
            if request.user_id != last.user_id:
                raise ReconstructionError(
                    "a session may not mix users: "
                    f"{last.user_id!r} vs {request.user_id!r}"
                )
        session = Session.__new__(Session)
        session._requests = self._requests + (request,)
        session._pages = self.pages + (request.page,)
        return session

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, index: int) -> Request:
        return self._requests[index]

    def __bool__(self) -> bool:
        return bool(self._requests)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Session):
            return NotImplemented
        return self._requests == other._requests

    def __hash__(self) -> int:
        return hash(self._requests)

    def __repr__(self) -> str:
        return f"Session({list(self.pages)!r})"

    # -- views -------------------------------------------------------------

    @property
    def requests(self) -> tuple[Request, ...]:
        """The member requests, oldest first."""
        return self._requests

    @property
    def pages(self) -> tuple[str, ...]:
        """Page ids in visit order (the view the capture metric compares).

        Sessions built by :meth:`from_trusted_parts` compute this lazily
        on first access and cache it.
        """
        pages = self._pages
        if pages is None:
            pages = self._pages = tuple(r.page for r in self._requests)
        return pages

    @property
    def user_id(self) -> str:
        """Identity of the session's user.

        Raises:
            ReconstructionError: for an empty session, which has no user.
        """
        if not self._requests:
            raise ReconstructionError("an empty session has no user")
        return self._requests[0].user_id

    @property
    def start_time(self) -> float:
        """Timestamp of the first request.

        Raises:
            ReconstructionError: for an empty session.
        """
        if not self._requests:
            raise ReconstructionError("an empty session has no start time")
        return self._requests[0].timestamp

    @property
    def end_time(self) -> float:
        """Timestamp of the last request.

        Raises:
            ReconstructionError: for an empty session.
        """
        if not self._requests:
            raise ReconstructionError("an empty session has no end time")
        return self._requests[-1].timestamp

    @property
    def duration(self) -> float:
        """Seconds between the first and last request (0 for singletons)."""
        if not self._requests:
            return 0.0
        return self.end_time - self.start_time

    def max_gap(self) -> float:
        """Largest inter-request gap in seconds (0 for length < 2)."""
        if len(self._requests) < 2:
            return 0.0
        return max(later.timestamp - earlier.timestamp
                   for earlier, later
                   in zip(self._requests, self._requests[1:]))

    def distinct_pages(self) -> frozenset[str]:
        """The set of page ids visited in this session."""
        return frozenset(self.pages)

    def canonical_key(self) -> tuple[str, tuple[tuple[float, str, bool], ...]]:
        """An engine-independent identity for differential comparison.

        Two sessions reconstructed by different execution paths (serial,
        parallel, streaming, resumed) describe the same visit iff their
        canonical keys are equal: same user, same ``(timestamp, page,
        synthetic)`` sequence.  Referrers are deliberately excluded — they
        are provenance metadata that CLF logs do not carry, and
        :class:`Request` equality already ignores them.
        """
        user = self._requests[0].user_id if self._requests else ""
        return (user, tuple((r.timestamp, r.page, r.synthetic)
                            for r in self._requests))


class SessionSet:
    """An immutable collection of sessions with per-user indexing.

    Produced both by the agent simulator (ground truth) and by every
    heuristic (reconstruction output); consumed by the evaluation metrics.
    Iteration order is the construction order.
    """

    __slots__ = ("_sessions", "_by_user")

    def __init__(self, sessions: Iterable[Session]) -> None:
        self._sessions: tuple[Session, ...] = tuple(sessions)
        by_user: dict[str, list[Session]] = {}
        for session in self._sessions:
            if session:
                by_user.setdefault(session.user_id, []).append(session)
        self._by_user: dict[str, tuple[Session, ...]] = {
            user: tuple(group) for user, group in by_user.items()
        }

    # -- collection protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[Session]:
        return iter(self._sessions)

    def __getitem__(self, index: int) -> Session:
        return self._sessions[index]

    def __bool__(self) -> bool:
        return bool(self._sessions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SessionSet):
            return NotImplemented
        return self._sessions == other._sessions

    def __repr__(self) -> str:
        return (f"SessionSet({len(self._sessions)} sessions, "
                f"{len(self._by_user)} users)")

    # -- views -------------------------------------------------------------

    @property
    def sessions(self) -> tuple[Session, ...]:
        """All member sessions, in construction order."""
        return self._sessions

    def users(self) -> tuple[str, ...]:
        """Identities of all users that own at least one non-empty session."""
        return tuple(self._by_user)

    def for_user(self, user_id: str) -> tuple[Session, ...]:
        """Sessions belonging to ``user_id`` (empty tuple if unknown)."""
        return self._by_user.get(user_id, ())

    def page_vocabulary(self) -> frozenset[str]:
        """Every page id appearing anywhere in the set."""
        return frozenset(page for session in self._sessions
                         for page in session.pages)

    def total_requests(self) -> int:
        """Sum of session lengths."""
        return sum(len(session) for session in self._sessions)

    def mean_length(self) -> float:
        """Mean session length in requests (0.0 for an empty set)."""
        if not self._sessions:
            return 0.0
        return self.total_requests() / len(self._sessions)

    def filtered(self, min_length: int = 1) -> "SessionSet":
        """Return a new set keeping only sessions of at least ``min_length``."""
        return SessionSet(s for s in self._sessions if len(s) >= min_length)

    # -- canonical form ----------------------------------------------------

    def canonical_form(self) -> dict[str, list[tuple[tuple[float, str, bool], ...]]]:
        """Order-independent normal form for cross-engine comparison.

        Maps each user to the *sorted* list of that user's canonical
        session bodies (see :meth:`Session.canonical_key`).  Engines may
        emit sessions in different orders (streaming emits as candidates
        close, parallel emits chunk by chunk), so construction order must
        not participate in equivalence — but multiplicity must: a session
        reconstructed twice is a divergence, hence a sorted list rather
        than a set.  Empty sessions normalize under the ``""`` user.
        """
        grouped: dict[str, list[tuple[tuple[float, str, bool], ...]]] = {}
        for session in self._sessions:
            user, body = session.canonical_key()
            grouped.setdefault(user, []).append(body)
        return {user: sorted(bodies) for user, bodies in grouped.items()}

    def canonical_digest(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_form`.

        Stable across processes and sessions-set construction order; two
        sets digest equally iff their canonical forms are equal (floats
        serialize via ``repr``, which round-trips exactly).
        """
        form = self.canonical_form()
        payload = json.dumps(
            [[user, bodies] for user, bodies in sorted(form.items())],
            separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- serialization -----------------------------------------------------

    def to_jsonable(self) -> list[dict[str, object]]:
        """Encode as plain JSON-serializable data (see :meth:`from_jsonable`)."""
        return [
            {
                "user": session.user_id if session else "",
                "requests": [
                    {"t": request.timestamp, "page": request.page,
                     "synthetic": request.synthetic}
                    for request in session
                ],
            }
            for session in self._sessions
        ]

    @classmethod
    def from_jsonable(cls, data: Iterable[Mapping[str, object]]) -> "SessionSet":
        """Decode the structure produced by :meth:`to_jsonable`."""
        sessions = []
        for entry in data:
            user = str(entry["user"])
            requests = [
                Request(float(item["t"]), user, str(item["page"]),
                        bool(item.get("synthetic", False)))
                for item in entry["requests"]  # type: ignore[union-attr]
            ]
            sessions.append(Session(requests))
        return cls(sessions)

    def save(self, path: str) -> None:
        """Write the set to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_jsonable(), handle)

    @classmethod
    def load(cls, path: str) -> "SessionSet":
        """Read a set previously written by :meth:`save`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_jsonable(json.load(handle))
