"""Time-oriented session reconstruction heuristics (paper §2.1).

Two classic reactive heuristics that look only at timestamps:

* :class:`DurationHeuristic` (the paper's **heur1**) bounds the *total
  session duration*: a request joins the current session iff its timestamp
  is within ``δ`` of the session's **first** request.  δ defaults to
  30 minutes (Catledge & Pitkow, 1995).
* :class:`PageStayHeuristic` (the paper's **heur2**) bounds the *page-stay
  time*: a request joins iff its gap from the **previous** request is at
  most ``ρ``.  ρ defaults to 10 minutes.

Worked example (paper Table 1): for the stream ``P1@0, P20@6, P13@15,
P49@29, P34@32, P23@47`` (minutes), heur1 yields ``[P1 P20 P13 P49]``,
``[P34 P23]`` and heur2 yields ``[P1 P20 P13]``, ``[P49 P34]``, ``[P23]``.
Both are verified verbatim in ``tests/unit/test_time_oriented.py``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ConfigurationError
from repro.sessions.base import SessionReconstructor, register_heuristic
from repro.sessions.model import Request, Session

__all__ = [
    "DurationHeuristic",
    "PageStayHeuristic",
    "DEFAULT_SESSION_DURATION",
    "DEFAULT_PAGE_STAY",
]

#: δ — default total-session-duration bound, seconds (30 minutes).
DEFAULT_SESSION_DURATION = 30.0 * 60.0
#: ρ — default page-stay bound, seconds (10 minutes).
DEFAULT_PAGE_STAY = 10.0 * 60.0


@register_heuristic("heur1", "duration")
class DurationHeuristic(SessionReconstructor):
    """heur1 — total session duration ≤ δ.

    Args:
        max_duration: the δ bound in seconds.

    Raises:
        ConfigurationError: for a non-positive bound.
    """

    name = "heur1"
    label = "time-oriented (total duration ≤ 30 min)"
    supports_columnar = True

    def __init__(self, max_duration: float = DEFAULT_SESSION_DURATION) -> None:
        if max_duration <= 0:
            raise ConfigurationError(
                f"max_duration must be positive, got {max_duration}")
        self.max_duration = max_duration
        self._plane = None

    def _columnar_plane(self):
        plane = self._plane
        if plane is None:
            from repro.core.columnar import ColumnarPlane
            plane = self._plane = ColumnarPlane.split_only(
                max_duration=self.max_duration)
        return plane

    def reconstruct_user(self, requests: Sequence[Request]) -> list[Session]:
        sessions: list[Session] = []
        current: list[Request] = []
        for request in requests:
            if current and (request.timestamp - current[0].timestamp
                            > self.max_duration):
                sessions.append(Session(current))
                current = []
            current.append(request)
        if current:
            sessions.append(Session(current))
        return sessions


@register_heuristic("heur2", "page-stay")
class PageStayHeuristic(SessionReconstructor):
    """heur2 — inter-request gap ≤ ρ.

    Args:
        max_gap: the ρ bound in seconds.

    Raises:
        ConfigurationError: for a non-positive bound.
    """

    name = "heur2"
    label = "time-oriented (page stay ≤ 10 min)"
    supports_columnar = True

    def __init__(self, max_gap: float = DEFAULT_PAGE_STAY) -> None:
        if max_gap <= 0:
            raise ConfigurationError(
                f"max_gap must be positive, got {max_gap}")
        self.max_gap = max_gap
        self._plane = None

    def _columnar_plane(self):
        plane = self._plane
        if plane is None:
            from repro.core.columnar import ColumnarPlane
            plane = self._plane = ColumnarPlane.split_only(
                max_gap=self.max_gap)
        return plane

    def reconstruct_user(self, requests: Sequence[Request]) -> list[Session]:
        sessions: list[Session] = []
        current: list[Request] = []
        for request in requests:
            if current and (request.timestamp - current[-1].timestamp
                            > self.max_gap):
                sessions.append(Session(current))
                current = []
            current.append(request)
        if current:
            sessions.append(Session(current))
        return sessions
