"""Adaptive-timeout session reconstruction.

The fixed 10-minute page-stay threshold treats every user identically,
but browsing tempo varies wildly: a fast scanner's genuine session break
can be shorter than a slow reader's ordinary page stay.  The adaptive
variant — a standard refinement in the session-identification literature —
fits the cutoff *per user*:

    cutoff(u) = clamp(mean_gap(u) + k · std_gap(u), floor, ceiling)

and splits whenever a gap exceeds the user's own cutoff.  Users with too
few gaps to estimate from fall back to the fixed default.  This is a
timing-only heuristic (no topology), so it slots between heur2 and the
topology-aware methods and is registered as ``"adaptive"``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.exceptions import ConfigurationError
from repro.sessions.base import SessionReconstructor, register_heuristic
from repro.sessions.model import Request, Session
from repro.sessions.time_oriented import DEFAULT_PAGE_STAY

__all__ = ["AdaptiveTimeoutHeuristic"]


@register_heuristic("adaptive")
class AdaptiveTimeoutHeuristic(SessionReconstructor):
    """Per-user adaptive page-stay threshold.

    Args:
        sigmas: the *k* in ``mean + k·std`` (default 2.0 — a gap two
            standard deviations above the user's norm is a break).
        floor: minimum cutoff, seconds — guards users whose observed gaps
            are uniformly tiny (default 60 s).
        ceiling: maximum cutoff, seconds (default: the classic 10 min).
        min_gaps: minimum observed gaps before the per-user estimate is
            trusted; below it the ceiling is used as a fixed cutoff.

    Raises:
        ConfigurationError: for non-positive bounds, a negative ``sigmas``,
            a floor above the ceiling, or ``min_gaps < 2``.
    """

    name = "adaptive"
    label = "adaptive timeout (per-user mean + k*std)"

    def __init__(self, sigmas: float = 2.0, floor: float = 60.0,
                 ceiling: float = DEFAULT_PAGE_STAY,
                 min_gaps: int = 3) -> None:
        if sigmas < 0:
            raise ConfigurationError(f"sigmas must be >= 0, got {sigmas}")
        if floor <= 0 or ceiling <= 0:
            raise ConfigurationError(
                f"floor and ceiling must be positive, got {floor}/{ceiling}")
        if floor > ceiling:
            raise ConfigurationError(
                f"floor {floor} exceeds ceiling {ceiling}")
        if min_gaps < 2:
            raise ConfigurationError(
                f"min_gaps must be >= 2, got {min_gaps}")
        self.sigmas = sigmas
        self.floor = floor
        self.ceiling = ceiling
        self.min_gaps = min_gaps

    def user_cutoff(self, requests: Sequence[Request]) -> float:
        """The cutoff this user's gap statistics imply."""
        gaps = [later.timestamp - earlier.timestamp
                for earlier, later in zip(requests, requests[1:])]
        if len(gaps) < self.min_gaps:
            return self.ceiling
        mean = sum(gaps) / len(gaps)
        variance = sum((gap - mean) ** 2 for gap in gaps) / len(gaps)
        cutoff = mean + self.sigmas * math.sqrt(variance)
        return min(self.ceiling, max(self.floor, cutoff))

    def reconstruct_user(self, requests: Sequence[Request]) -> list[Session]:
        cutoff = self.user_cutoff(requests)
        sessions: list[Session] = []
        current: list[Request] = []
        for request in requests:
            if current and (request.timestamp - current[-1].timestamp
                            > cutoff):
                sessions.append(Session(current))
                current = []
            current.append(request)
        if current:
            sessions.append(Session(current))
        return sessions
