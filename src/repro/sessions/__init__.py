"""Session data model and reactive session-reconstruction heuristics.

This package contains the shared value types (:class:`~repro.sessions.model.Request`,
:class:`~repro.sessions.model.Session`, :class:`~repro.sessions.model.SessionSet`)
and the three *baseline* heuristics the paper compares against:

* ``heur1`` — time-oriented, total session duration bound
  (:class:`~repro.sessions.time_oriented.DurationHeuristic`)
* ``heur2`` — time-oriented, page-stay (inter-request gap) bound
  (:class:`~repro.sessions.time_oriented.PageStayHeuristic`)
* ``heur3`` — navigation-oriented with path completion
  (:class:`~repro.sessions.navigation_oriented.NavigationHeuristic`)

The paper's own contribution, Smart-SRA (``heur4``), lives in
:mod:`repro.core`.
"""

from repro.sessions.base import (
    HEURISTIC_REGISTRY,
    SessionReconstructor,
    get_heuristic,
    register_heuristic,
)
from repro.sessions.model import Request, Session, SessionSet
from repro.sessions.ops import (
    concatenate,
    rename_pages,
    sample_users,
    split_by_user,
    within_window,
)
from repro.sessions.navigation_oriented import NavigationHeuristic
from repro.sessions.adaptive import AdaptiveTimeoutHeuristic
from repro.sessions.maximal_paths import AllMaximalPaths
from repro.sessions.referrer import ReferrerHeuristic
from repro.sessions.time_oriented import DurationHeuristic, PageStayHeuristic

__all__ = [
    "Request",
    "Session",
    "SessionSet",
    "SessionReconstructor",
    "DurationHeuristic",
    "PageStayHeuristic",
    "NavigationHeuristic",
    "ReferrerHeuristic",
    "AdaptiveTimeoutHeuristic",
    "AllMaximalPaths",
    "HEURISTIC_REGISTRY",
    "register_heuristic",
    "get_heuristic",
    "concatenate",
    "within_window",
    "sample_users",
    "rename_pages",
    "split_by_user",
]
