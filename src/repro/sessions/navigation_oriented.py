"""Navigation-oriented session reconstruction (paper §2.2, **heur3**).

The navigation-oriented heuristic (Cooley et al., 1999/2000) uses the site
topology to decide session membership and performs *path completion*: when
the new request is not linked from the session's last page, the user is
assumed to have pressed "Back" (served by the browser cache, hence invisible
in the log) until reaching the most recent page that does link to the new
request.  Those backward movements are **inserted** into the session as
synthetic requests.

Growth rule for current session ``[WP1 … WPN]`` and new page ``WPN+1``:

* ``Link[WPN, WPN+1] = 1`` → append ``WPN+1``;
* otherwise, let ``WPKmax`` be the member page with the **largest position**
  having a hyperlink to ``WPN+1``; append the backward walk
  ``WPN-1, WPN-2, …, WPKmax`` (synthetic) and then ``WPN+1``;
* if *no* member page links to ``WPN+1``, the current session is closed and
  ``WPN+1`` starts a new one.

The worked example of the paper's Tables 1-2 — producing
``[P1 P20 P1 P13 P49 P13 P34 P23]`` — is verified step by step in
``tests/unit/test_navigation_oriented.py``.

By default no time bound is applied, matching the paper's description (and
its criticism that heur3 sessions can grow arbitrarily long); pass
``max_gap`` to additionally split on large inter-request gaps.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ConfigurationError
from repro.sessions.base import SessionReconstructor, register_heuristic
from repro.sessions.model import Request, Session
from repro.topology.graph import WebGraph

__all__ = ["NavigationHeuristic"]


class NavigationHeuristic(SessionReconstructor):
    """heur3 — navigation-oriented reconstruction with path completion.

    Args:
        topology: the site's hyperlink graph.
        max_gap: optional inter-request gap bound in seconds; ``None``
            (the default, as in the paper) disables time splitting.

    Raises:
        ConfigurationError: if ``max_gap`` is given and non-positive.
    """

    name = "heur3"
    label = "navigation-oriented (path completion)"

    def __init__(self, topology: WebGraph,
                 max_gap: float | None = None) -> None:
        if max_gap is not None and max_gap <= 0:
            raise ConfigurationError(
                f"max_gap must be positive or None, got {max_gap}")
        self.topology = topology
        self.max_gap = max_gap

    def reconstruct_user(self, requests: Sequence[Request]) -> list[Session]:
        sessions: list[Session] = []
        current: list[Request] = []

        for request in requests:
            if not current:
                current.append(request)
                continue

            gap_exceeded = (
                self.max_gap is not None
                and request.timestamp - current[-1].timestamp > self.max_gap)
            if gap_exceeded:
                sessions.append(Session(current))
                current = [request]
                continue

            if self.topology.has_link(current[-1].page, request.page):
                current.append(request)
                continue

            linker_index = self._latest_linker(current, request.page)
            if linker_index is None:
                # Nothing in the session explains this request: new session.
                sessions.append(Session(current))
                current = [request]
                continue

            # Path completion: insert the backward walk from the page before
            # the last one down to (and including) the latest linker.  The
            # inserted requests are synthetic — they never hit the server —
            # and are stamped with the triggering request's timestamp so the
            # session stays chronologically ordered.
            for position in range(len(current) - 2, linker_index - 1, -1):
                current.append(Request(request.timestamp, request.user_id,
                                       current[position].page,
                                       synthetic=True))
            current.append(request)

        if current:
            sessions.append(Session(current))
        return sessions

    def _latest_linker(self, session: list[Request],
                       page: str) -> int | None:
        """Index of the last session member with a hyperlink to ``page``.

        Returns ``None`` when no member links to ``page``.  The last member
        itself is excluded — the caller already know it does not link.
        """
        for index in range(len(session) - 2, -1, -1):
            if self.topology.has_link(session[index].page, page):
                return index
        return None


def _default_navigation_heuristic() -> NavigationHeuristic:  # pragma: no cover
    """Registry factories must be zero-argument; heur3 needs a topology.

    The experiment harness always constructs :class:`NavigationHeuristic`
    explicitly with the simulated topology, so the registry entry raises a
    helpful error instead of guessing a graph.
    """
    raise ConfigurationError(
        "heur3 (navigation-oriented) requires a site topology; construct "
        "NavigationHeuristic(topology) directly or use "
        "repro.evaluation.harness.standard_heuristics(topology)")


# Register the factory under the paper's name so name-driven tooling can at
# least report a clear error for the topology-dependent heuristic.
from repro.sessions.base import HEURISTIC_REGISTRY as _REGISTRY  # noqa: E402

_REGISTRY.setdefault("heur3", _default_navigation_heuristic)
_REGISTRY.setdefault("navigation", _default_navigation_heuristic)
