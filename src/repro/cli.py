"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands mirror the paper's pipeline:

* ``topology``   — generate a site graph and save it as JSON;
* ``simulate``   — run the agent simulator over a topology, writing the
  CLF access log and the ground-truth session file;
* ``clean``      — run the cleaning pipeline over a (noisy) CLF log;
* ``reconstruct``— apply one heuristic to a CLF log (alias:
  ``sessionize``); ``--workers N`` fans reconstruction out over the
  :mod:`repro.parallel` engine with identical output;
* ``stream``     — incremental reconstruction (:mod:`repro.streaming`):
  feed the log in arrival order, emit sessions as they close;
  ``--memory-budget``/``--overload-policy`` put the resource governor
  in front so tracked state stays bounded under adversarial traffic;
  ``--shards N`` hash-shards users across crash-safe worker processes
  (:mod:`repro.streaming.sharded`) with ``--on-shard-failure``
  selecting failover / shed-shard / raise degradation;
* ``evaluate``   — score a reconstructed session file against ground truth;
* ``experiment`` — regenerate Figure 8, 9 or 10 and print the table;
* ``sweep``      — sweep one simulation parameter (stp/lpp/nip), scoring
  all heuristics per value, optionally in parallel; ``--checkpoint DIR``
  persists every completed point and ``--resume`` continues a killed
  sweep with identical final results;
* ``mine``       — mine frequent navigation patterns from a session file;
* ``stats``      — profile a session file (lengths, durations, top pages);
* ``run-spec``   — execute a declarative JSON experiment specification;
* ``dataset``    — generate a frozen benchmark dataset bundle;
* ``compare``    — McNemar significance test between two reconstructions;
* ``anonymize``  — pseudonymize or truncate host identities in a log;
* ``selftest``   — verify the installation against the paper's worked
  examples and the pinned golden numbers;
* ``leaderboard``— rank every heuristic on one simulated workload;
* ``chaos``      — corrupt a log with seeded fault injection (degraded-
  input testing; composable with ``ingest`` over a pipe), or — with
  ``--exec-selftest`` — inject *execution* faults (crashed / hung / slow
  workers) and verify the supervised engine recovers byte-identically,
  or — with ``--overload-selftest`` — stream an adversarial crawler+NAT
  workload through the governed pipeline under ``mem-pressure``/
  ``burst`` faults and verify memory stays bounded and the stats
  ledger reconciles, or — with ``--shard-selftest`` — kill sharded
  stream workers mid-run and verify failover replay reproduces the
  serial output byte-identically;
* ``ingest``     — parse a (possibly degraded) log under an explicit
  error policy, with full accounting and a quarantine file;
* ``doctor``     — audit a ``--checkpoint`` directory (schema, integrity
  hashes, orphans, what a ``--resume`` would skip or redo) or, given
  overload/sharded flags, audit a streaming governor or sharded-runtime
  configuration for legal-but-degenerate combinations;
* ``diffcheck``  — the differential correctness oracle: run a corpus
  through every Smart-SRA execution path (serial, parallel, supervised,
  checkpoint/resume, streaming), verify the paper's five output rules,
  and exit non-zero on any divergence;
* ``trace``      — analyze a ``--trace`` JSON-lines file: span tree,
  inclusive/exclusive time, critical-path attribution and folded-stack
  flamegraph output (``repro trace analyze FILE``);
* ``bench-diff`` — compare fresh benchmark metric sidecars against the
  committed ``BENCH_BASELINE.json`` perf baseline, exiting non-zero on
  regression (``--update`` re-records the baseline).

Long-running commands (``sweep``, ``simulate``, ``reconstruct``) accept
supervision flags (``--max-retries``, ``--chunk-deadline``,
``--on-chunk-failure``) that wrap parallel execution in the fault-
tolerant supervisor; Ctrl-C exits with code 130 after flushing completed
checkpoint units, so an interrupted run is always resumable.

Every command prints a short human-readable summary to stdout; files are
only written where an ``--output``-style flag points.

Every command also accepts ``--metrics FILE`` and ``--trace FILE``: the
former enables the :mod:`repro.obs` registry for the run and exports its
snapshot (JSON by default, Prometheus text for a ``.prom``/``.txt``
path), the latter streams span/event JSON lines as the command executes.
``--metrics -`` reserves stdout for the snapshot — the command's normal
output moves to stderr so the emitted JSON stays machine-parseable.
``repro stats --snapshot FILE`` renders a saved snapshot as a table,
JSON, or Prometheus text.  The metric catalog is documented in
``docs/observability.md``.

The long-running commands (``stream``, ``simulate``, ``sweep``) further
accept ``--serve-metrics PORT``: a loopback HTTP endpoint (stdlib
``http.server``, daemon thread) serving ``/metrics`` (Prometheus),
``/health``, ``/snapshot`` and ``/timeline`` *while the run is going*,
with a :class:`repro.obs.TimelineSampler` recording counter/gauge series
into a bounded ring (``--timeline-interval``/``--timeline-capacity``).
The server and sampler are torn down cleanly on exit and on SIGINT.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from collections.abc import Sequence

from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import fig8_sweep, fig9_sweep, fig10_sweep
from repro.evaluation.metrics import evaluate_reconstruction
from repro.evaluation.report import render_csv, render_sweep_table
from repro.exceptions import ReproError
from repro.logs.cleaning import LogCleaner
from repro.logs.reader import (
    iter_clf_lines,
    iter_requests,
    read_clf_file,
    records_to_requests,
)
from repro.evaluation.statistics import describe, render_statistics
from repro.logs.users import IdentityAddressMap
from repro.logs.writer import (
    requests_to_records,
    write_clf_file,
    write_combined_file,
)
from repro.mining.sequential import frequent_sequences
from repro.obs import (
    Registry,
    Tracer,
    snapshot_to_prometheus,
    snapshot_to_table,
    use_registry,
)
from repro.sessions.base import get_heuristic
from repro.sessions.model import SessionSet
from repro.sessions.navigation_oriented import NavigationHeuristic
from repro.simulator.config import SimulationConfig
from repro.simulator.population import simulate_population
from repro.topology.analysis import summarize
from repro.topology.generators import (
    hierarchical_site,
    power_law_site,
    random_site,
)
from repro.topology.io import load_graph, save_graph

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the full argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reactive web usage data processing (Smart-SRA "
                    "reproduction)")
    subcommands = parser.add_subparsers(dest="command", required=True)

    # observability flags shared by every subcommand (see repro.obs).
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--metrics", metavar="FILE",
        help="collect pipeline metrics and export the snapshot here "
             "(JSON; '.prom'/'.txt' paths get Prometheus text; '-' "
             "writes JSON to stdout and moves command output to stderr)")
    obs_flags.add_argument(
        "--trace", metavar="FILE",
        help="stream span/event JSON lines here as the command runs "
             "('-' writes to stderr)")

    class _Sub:
        """``add_parser`` shim threading the shared flags through."""

        def add_parser(self, name: str, **kwargs: object):
            return subcommands.add_parser(name, parents=[obs_flags],
                                          **kwargs)

    sub = _Sub()

    def add_workers_flag(command_parser: argparse.ArgumentParser) -> None:
        command_parser.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="parallel workers (repro.parallel engine): 1 = serial "
                 "(default), 0 = all usable CPUs, N = exactly N; output "
                 "is identical for every value")

    def add_supervision_flags(
            command_parser: argparse.ArgumentParser) -> None:
        """Fault-tolerance knobs (repro.parallel.supervisor); supervision
        activates when any of them is given."""
        command_parser.add_argument(
            "--max-retries", type=int, default=None, metavar="N",
            help="retry a crashed or hung chunk up to N times with "
                 "exponential backoff (supervised execution; default 2 "
                 "once supervision is active)")
        command_parser.add_argument(
            "--chunk-deadline", type=float, default=None, metavar="SECONDS",
            help="progress deadline: if no chunk completes within this "
                 "window the worker pool is presumed hung, killed, and "
                 "the outstanding chunks are retried")
        command_parser.add_argument(
            "--on-chunk-failure", choices=["raise", "serial", "skip"],
            default=None,
            help="what to do with a chunk that exhausts its retries: "
                 "re-run it serially in-process (default), quarantine "
                 "and skip it, or abort the run")

    def add_serve_flags(command_parser: argparse.ArgumentParser) -> None:
        """Live telemetry knobs (repro.obs.export / repro.obs.timeline);
        the HTTP exporter + timeline sampler start when --serve-metrics
        is given."""
        command_parser.add_argument(
            "--serve-metrics", type=int, default=None, metavar="PORT",
            help="serve /metrics, /health, /snapshot and /timeline on "
                 "this loopback port for the duration of the run "
                 "(0 = any free port, printed to stderr)")
        command_parser.add_argument(
            "--timeline-interval", type=float, default=None,
            metavar="SECONDS",
            help="timeline sampling interval (default 1.0; only "
                 "meaningful with --serve-metrics)")
        command_parser.add_argument(
            "--timeline-capacity", type=int, default=None, metavar="N",
            help="timeline ring capacity in points (default 600; oldest "
                 "points are evicted beyond it)")

    topo = sub.add_parser("topology", help="generate a site topology")
    topo.add_argument("--family", choices=["random", "hierarchical",
                                           "power-law"], default="random")
    topo.add_argument("--pages", type=int, default=300)
    topo.add_argument("--out-degree", type=float, default=15.0,
                      help="average out-degree (random family)")
    topo.add_argument("--seed", type=int, default=0)
    topo.add_argument("--output", required=True, help="JSON output path")

    sim = sub.add_parser("simulate", help="simulate agents over a topology")
    sim.add_argument("--topology", required=True)
    sim.add_argument("--agents", type=int, default=1000)
    sim.add_argument("--stp", type=float, default=0.05)
    sim.add_argument("--lpp", type=float, default=0.30)
    sim.add_argument("--nip", type=float, default=0.30)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--log", required=True, help="CLF output path")
    sim.add_argument("--sessions", required=True,
                     help="ground-truth session JSON output path")
    sim.add_argument("--format", choices=["clf", "combined"],
                     default="clf",
                     help="log format: plain CLF (the paper's reactive "
                          "setting) or Combined (adds Referer/User-Agent)")
    add_workers_flag(sim)
    add_supervision_flags(sim)
    add_serve_flags(sim)
    sim.add_argument("--checkpoint", metavar="DIR",
                     help="persist completed agent blocks here so an "
                          "interrupted simulation can --resume")
    sim.add_argument("--resume", action="store_true",
                     help="continue from --checkpoint, re-simulating "
                          "only the missing agent blocks")

    clean = sub.add_parser("clean", help="filter a CLF log to page views")
    clean.add_argument("--log", required=True)
    clean.add_argument("--output", required=True)

    def add_amp_flags(command_parser: argparse.ArgumentParser) -> None:
        """Path-explosion guards for the All-Maximal-Paths engine
        (repro.core.amp); only meaningful with heuristic ``amp``."""
        command_parser.add_argument(
            "--path-budget", type=int, default=None, metavar="N",
            help="max maximal paths materialized per candidate session "
                 "by the amp heuristic (the count is computed exactly "
                 "before anything is enumerated; default 4096)")
        command_parser.add_argument(
            "--path-overflow", choices=["block", "truncate", "raise"],
            default=None,
            help="what amp does when a candidate's maximal-path count "
                 "exceeds the budget: truncate to the first N paths in "
                 "deterministic order (default), block (skip the "
                 "candidate, counted), or raise PathBudgetError")

    rec = sub.add_parser("reconstruct", aliases=["sessionize"],
                         help="apply a heuristic to a log")
    rec.add_argument("--log", required=True)
    rec.add_argument("--heuristic", default="heur4",
                     help="heur1 | heur2 | heur3 | heur4 | amp | phase1 | "
                          "referrer (needs a combined-format log)")
    rec.add_argument("--topology",
                     help="topology JSON (required by heur3/heur4)")
    rec.add_argument("--output", required=True,
                     help="session JSON output path")
    rec.add_argument("--engine", choices=["object", "columnar"],
                     default="object",
                     help="reconstruction data plane: per-user Python "
                          "objects (default) or the vectorized columnar "
                          "plane (same sessions; needs a heuristic with "
                          "columnar support, e.g. heur1/heur2/heur4)")
    add_workers_flag(rec)
    add_supervision_flags(rec)
    add_amp_flags(rec)

    def add_overload_flags(command_parser: argparse.ArgumentParser) -> None:
        """Resource-governor knobs (repro.streaming.governor); the
        governed pipeline activates when any of them is given."""
        command_parser.add_argument(
            "--memory-budget", metavar="SIZE", default=None,
            help="byte budget for tracked streaming state (open "
                 "candidates + quarantine channels); accepts k/m/g "
                 "binary suffixes (e.g. 64k, 8m)")
        command_parser.add_argument(
            "--overload-policy", choices=["block", "evict", "shed",
                                          "raise"], default=None,
            help="degradation above the budget's high watermark: evict "
                 "oldest-idle users (default), block (spill cold buffers "
                 "to --spill-dir), shed new requests, or raise "
                 "OverloadError")
        command_parser.add_argument(
            "--per-user-cap", type=int, default=None, metavar="N",
            help="max requests in one user's open candidate before it "
                 "is force-finished (and the user earns a quarantine "
                 "strike)")
        command_parser.add_argument(
            "--spill-dir", metavar="DIR", default=None,
            help="spill store directory (required by, and only "
                 "meaningful under, --overload-policy block)")
        command_parser.add_argument(
            "--quarantine-after", type=int, default=None, metavar="N",
            help="cap strikes before a pathological user is routed to "
                 "the bounded quarantine side channel")
        command_parser.add_argument(
            "--quarantine-cap", type=int, default=None, metavar="N",
            help="requests held per quarantine channel before it is "
                 "flushed through the finisher")

    def add_sharded_flags(command_parser: argparse.ArgumentParser) -> None:
        """Sharded-runtime knobs (repro.streaming.sharded); the
        crash-safe sharded runtime activates when any of them is
        given."""
        command_parser.add_argument(
            "--shards", type=int, default=None, metavar="N",
            help="hash-shard users across N crash-safe worker "
                 "processes; sealed output is byte-identical to the "
                 "single-process run")
        command_parser.add_argument(
            "--on-shard-failure", choices=["failover", "shed-shard",
                                           "raise"], default=None,
            help="what to do when a shard worker dies or wedges: "
                 "failover (respawn from the acked capsule and replay "
                 "the unsealed tail, default), shed-shard (abandon the "
                 "shard's pending events, counted), or raise")
        command_parser.add_argument(
            "--ack-interval", type=int, default=None, metavar="N",
            help="events between worker progress acks; smaller means "
                 "less replay after a crash, more capsule traffic")
        command_parser.add_argument(
            "--shard-lease", type=float, default=None, metavar="SECONDS",
            help="wall-clock quiet period with work outstanding after "
                 "which a worker is declared wedged and failed over")
        command_parser.add_argument(
            "--replay-capacity", type=int, default=None, metavar="N",
            help="unacked events retained per shard for failover "
                 "replay; routing backpressures when a shard's log is "
                 "full")
        command_parser.add_argument(
            "--replay-dir", metavar="DIR", default=None,
            help="persist per-shard replay logs here (atomic, "
                 "digest-sealed) instead of holding them only in "
                 "coordinator memory")

    strm = sub.add_parser("stream",
                          help="incremental (streaming) reconstruction, "
                               "optionally under a memory governor")
    strm.add_argument("--log", required=True,
                      help="CLF log, fed in file order")
    strm.add_argument("--heuristic",
                      choices=["smart-sra", "phase1", "amp"],
                      default="smart-sra",
                      help="finisher for closed candidates: full "
                           "Smart-SRA Phase 2 (needs --topology), raw "
                           "Phase-1 candidates, or all maximal paths "
                           "(needs --topology; see --path-budget)")
    strm.add_argument("--topology",
                      help="topology JSON (required by smart-sra)")
    strm.add_argument("--output", required=True,
                      help="session JSON output path")
    strm.add_argument("--late-policy", choices=["raise", "drop"],
                      default="raise",
                      help="what to do with a request behind the "
                           "watermark or its user's buffered tail")
    strm.add_argument("--reorder-window", type=float, default=0.0,
                      metavar="SECONDS",
                      help="event-time bound for out-of-order arrival "
                           "tolerance (0 = strict order)")
    strm.add_argument("--dedup", action="store_true",
                      help="drop adjacent duplicates (double logging)")
    strm.add_argument("--flush-every", type=float, default=0.0,
                      metavar="SECONDS",
                      help="emit provably-closed sessions at periodic "
                           "event-time watermarks instead of only at end "
                           "of stream")
    add_overload_flags(strm)
    add_sharded_flags(strm)
    add_serve_flags(strm)
    add_amp_flags(strm)

    ev = sub.add_parser("evaluate", help="score reconstruction vs truth")
    ev.add_argument("--truth", required=True)
    ev.add_argument("--reconstructed", required=True)
    ev.add_argument("--global-match", action="store_true",
                    help="allow capture across user boundaries")

    exp = sub.add_parser("experiment", help="regenerate a paper figure")
    exp.add_argument("figure", choices=["fig8", "fig9", "fig10"])
    exp.add_argument("--agents", type=int, default=2000,
                     help="agents per sweep point (paper: 10000)")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--csv", help="also write the series as CSV here")

    swp = sub.add_parser("sweep",
                         help="sweep one simulation parameter, scoring "
                              "all heuristics per value")
    swp.add_argument("--topology",
                     help="topology JSON (random Table 5 site when "
                          "omitted)")
    swp.add_argument("--parameter", choices=["stp", "lpp", "nip"],
                     required=True,
                     help="the SimulationConfig field to vary")
    swp.add_argument("--values", required=True,
                     help="comma-separated parameter values, run in order")
    swp.add_argument("--agents", type=int, default=500,
                     help="agents per sweep point")
    swp.add_argument("--seed", type=int, default=0)
    swp.add_argument("--engine", choices=["object", "columnar"],
                     default="object",
                     help="reconstruction data plane for every point; "
                          "heuristics without columnar support keep the "
                          "object path (accuracies are identical)")
    swp.add_argument("--heuristics", default=None,
                     help="comma-separated lineup to score per value "
                          "(spec-runner names, e.g. heur1,heur4,amp); "
                          "the paper's four when omitted")
    swp.add_argument("--csv", help="also write the series as CSV here")
    add_workers_flag(swp)
    add_supervision_flags(swp)
    add_serve_flags(swp)
    swp.add_argument("--checkpoint", metavar="DIR",
                     help="persist every completed sweep point here "
                          "(report + metrics snapshot) the moment it "
                          "finishes")
    swp.add_argument("--resume", action="store_true",
                     help="continue from --checkpoint, recomputing only "
                          "the missing points; the final table and "
                          "metrics equal an uninterrupted run's")

    mine = sub.add_parser("mine", help="mine frequent navigation patterns")
    mine.add_argument("--sessions", required=True)
    mine.add_argument("--min-support", type=float, default=0.01)
    mine.add_argument("--max-length", type=int, default=4)
    mine.add_argument("--top", type=int, default=20)

    stats = sub.add_parser("stats",
                           help="profile a session JSON file, or render "
                                "a metrics snapshot")
    stats.add_argument("--sessions", help="session JSON file to profile")
    stats.add_argument("--top", type=int, default=5)
    stats.add_argument("--snapshot", metavar="FILE", action="append",
                       help="metrics snapshot JSON (written by --metrics) "
                            "to render instead ('-' reads stdin); "
                            "repeatable — multiple snapshots (e.g. one "
                            "per worker) are merged before rendering")
    stats.add_argument("--format", dest="render_format",
                       choices=["table", "json", "prom"], default="table",
                       help="snapshot rendering (with --snapshot)")

    spec = sub.add_parser("run-spec",
                          help="execute a JSON experiment specification")
    spec.add_argument("spec", help="path to the spec document")
    spec.add_argument("--csv", help="write sweep series as CSV here")

    dataset = sub.add_parser("dataset",
                             help="generate a frozen benchmark dataset")
    dataset.add_argument("tier", choices=["small", "medium", "large"])
    dataset.add_argument("--output", required=True,
                         help="bundle directory to create")

    cmp = sub.add_parser("compare",
                         help="paired McNemar test between two "
                              "reconstructions of one ground truth")
    cmp.add_argument("--truth", required=True)
    cmp.add_argument("--a", dest="first", required=True,
                     help="first reconstruction (session JSON)")
    cmp.add_argument("--b", dest="second", required=True,
                     help="second reconstruction (session JSON)")
    cmp.add_argument("--name-a", default="A")
    cmp.add_argument("--name-b", default="B")

    anon = sub.add_parser("anonymize",
                          help="anonymize host identities in a log")
    anon.add_argument("--log", required=True)
    anon.add_argument("--output", required=True)
    group = anon.add_mutually_exclusive_group(required=True)
    group.add_argument("--key", help="keyed pseudonymization secret")
    group.add_argument("--truncate", type=int, metavar="OCTETS",
                       help="keep this many leading IPv4 octets (1-3)")

    sub.add_parser("selftest",
                   help="verify the install against the paper's worked "
                        "examples")

    board = sub.add_parser("leaderboard",
                           help="rank all heuristics on one simulation")
    board.add_argument("--topology", help="topology JSON (random Table 5 "
                                          "site when omitted)")
    board.add_argument("--agents", type=int, default=500)
    board.add_argument("--seed", type=int, default=0)

    chaos = sub.add_parser("chaos",
                           help="corrupt a log with seeded fault "
                                "injection, or selftest execution-fault "
                                "recovery")
    chaos.add_argument("--log",
                       help="input log path ('-' reads stdin); required "
                            "unless --exec-selftest is given")
    chaos.add_argument("--output", default="-",
                       help="corrupted log path ('-' writes stdout)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed; same seed, same corruption, "
                            "byte for byte")
    chaos.add_argument("--fault", action="append", metavar="NAME[:RATE]",
                       help="fault model to apply, repeatable "
                            "(truncate, garble, encoding, duplicate, "
                            "reorder, clock-skew, rotation-split, bot); "
                            "all models at the default rate when omitted")
    chaos.add_argument("--exec-selftest", action="store_true",
                       help="instead of corrupting a log, run the "
                            "execution-fault recovery selftest: inject "
                            "worker crashes/hangs into a supervised "
                            "parallel run and verify the output is "
                            "byte-identical to serial")
    chaos.add_argument("--exec-fault", action="append",
                       metavar="KIND:INDEX[:SECONDS[:ATTEMPTS]]",
                       help="execution fault to arm (with "
                            "--exec-selftest or --shard-selftest), "
                            "repeatable: crash-chunk, hang-chunk, "
                            "slow-chunk, corrupt-checkpoint, "
                            "kill-worker, wedge-worker, drop-pipe; "
                            "default: crash-chunk:1 and hang-chunk:2:30 "
                            "(one kill-worker per shard for "
                            "--shard-selftest)")
    chaos.add_argument("--selftest-items", type=int, default=64,
                       help="work items for --exec-selftest (default 64)")
    chaos.add_argument("--selftest-workers", type=int, default=2,
                       help="pool workers for --exec-selftest (default 2)")
    chaos.add_argument("--overload-selftest", action="store_true",
                       help="stream an adversarial crawler+NAT workload "
                            "through the governed pipeline under "
                            "mem-pressure/burst faults and verify "
                            "tracked memory stays under budget and the "
                            "stats ledger reconciles")
    chaos.add_argument("--overload-budget", metavar="SIZE", default="48k",
                       help="memory budget for --overload-selftest "
                            "(k/m/g suffixes; default 48k)")
    chaos.add_argument("--overload-policy",
                       choices=["block", "evict", "shed", "raise"],
                       default="evict",
                       help="overload policy for --overload-selftest")
    chaos.add_argument("--overload-spill-dir", metavar="DIR",
                       help="spill directory for --overload-selftest "
                            "with policy block")
    chaos.add_argument("--shard-selftest", action="store_true",
                       help="run the sharded-failover selftest: kill "
                            "stream workers mid-run (--exec-fault "
                            "kill-worker/wedge-worker/drop-pipe specs, "
                            "default one kill per shard) and verify the "
                            "sealed output is byte-identical to the "
                            "serial run and the ledger reconciles")
    chaos.add_argument("--selftest-shards", type=int, default=2,
                       help="worker processes for --shard-selftest "
                            "(default 2)")
    chaos.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the --overload-selftest or "
                            "--shard-selftest verdict as a JSON "
                            "document instead of text")

    ing = sub.add_parser("ingest",
                         help="parse a degraded log under an error policy")
    ing.add_argument("--log", required=True,
                     help="input log path ('-' reads stdin)")
    ing.add_argument("--error-policy", default="strict",
                     choices=["strict", "skip", "quarantine", "repair"])
    ing.add_argument("--quarantine",
                     help="quarantine file for offending lines (default: "
                          "<log>.quarantine, or quarantine.log for stdin)")
    ing.add_argument("--output",
                     help="write the successfully parsed records back out "
                          "as a normalized log")

    doctor = sub.add_parser("doctor",
                            help="audit a checkpoint directory "
                                 "(integrity, schema, what --resume "
                                 "would skip) or an overload "
                                 "configuration")
    doctor.add_argument("checkpoint", metavar="DIR", nargs="?",
                        help="the --checkpoint directory to audit "
                             "(omit when auditing overload flags)")
    doctor.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the audit as a JSON document instead "
                             "of text")
    add_overload_flags(doctor)
    add_sharded_flags(doctor)
    # telemetry flags are auditable too: doctor never starts a server,
    # it vets the configuration (interval, port, ring size vs budget).
    add_serve_flags(doctor)
    # likewise the amp path-budget vs --memory-budget interaction.
    add_amp_flags(doctor)

    diff = sub.add_parser("diffcheck",
                          help="cross-engine differential correctness "
                               "oracle: run a corpus through every "
                               "Smart-SRA execution path and diff the "
                               "canonical outputs")
    diff.add_argument("--corpus",
                      help="directory of corpus case JSON files (e.g. the "
                           "committed tests/data/diffcheck); omitted, a "
                           "fresh adversarial corpus is generated from "
                           "--seed")
    diff.add_argument("--engines", default="all",
                      help="comma-separated engine names, or 'all' "
                           "(default); the serial baseline is always "
                           "included")
    diff.add_argument("--seed", type=int, default=None,
                      help="override the per-case seeds (default: each "
                           "case's own pinned seed)")
    diff.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the full report as a JSON document "
                           "instead of text")
    diff.add_argument("--write-golden", metavar="DIR",
                      help="regenerate the golden corpus into DIR (cases "
                           "pinned against the serial engine) and exit")

    trace = sub.add_parser("trace",
                           help="analyze a --trace JSON-lines file: span "
                                "tree, critical path, folded stacks")
    trace.add_argument("action", choices=["analyze"],
                       help="'analyze' is the only action today")
    trace.add_argument("file", help="trace file written by --trace "
                                    "('-' reads stdin)")
    trace.add_argument("--folded", metavar="OUT",
                       help="also write folded-stack flamegraph lines "
                            "here (flamegraph.pl / speedscope input)")
    trace.add_argument("--top", type=int, default=10,
                       help="rows in the by-name self-time table "
                            "(default 10)")
    trace.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the report as a JSON document instead "
                            "of text")

    bdiff = sub.add_parser("bench-diff",
                           help="compare fresh bench metric sidecars "
                                "against the committed perf baseline; "
                                "non-zero exit on regression")
    bdiff.add_argument("--results", metavar="DIR",
                       default="benchmarks/results",
                       help="directory of *.metrics.json sidecars "
                            "(default benchmarks/results)")
    bdiff.add_argument("--baseline", metavar="FILE",
                       default="BENCH_BASELINE.json",
                       help="baseline document (default "
                            "BENCH_BASELINE.json)")
    bdiff.add_argument("--threshold", type=float, default=None,
                       help="relative regression threshold (default "
                            "0.20 = 20%%)")
    bdiff.add_argument("--quick", action="store_true",
                       help="structural check only (CI on shrunken "
                            "REPRO_BENCH_QUICK workloads): every "
                            "baselined bench and metric must still be "
                            "present; values are not compared")
    bdiff.add_argument("--update", action="store_true",
                       help="re-record the baseline from the current "
                            "sidecars instead of comparing")
    bdiff.add_argument("--verbose", action="store_true",
                       help="also list metrics that are within "
                            "threshold")
    bdiff.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the diff report as a JSON document "
                            "instead of text")

    return parser


def _cmd_topology(args: argparse.Namespace) -> int:
    if args.family == "random":
        graph = random_site(args.pages, args.out_degree, seed=args.seed)
    elif args.family == "hierarchical":
        graph = hierarchical_site(args.pages, seed=args.seed)
    else:
        graph = power_law_site(args.pages, seed=args.seed)
    save_graph(graph, args.output)
    print(f"wrote {args.output}")
    for key, value in summarize(graph).items():
        print(f"  {key}: {value}")
    return 0


def _validated_workers(args: argparse.Namespace) -> int | None:
    """Map the ``--workers`` flag to the library knob.

    Returns ``None`` for serial (the flag's default of 1), the count
    otherwise; a negative count is a usage error reported by the caller
    (sentinel ``-1`` is never returned — callers test with
    :func:`_workers_invalid` first).
    """
    return None if args.workers == 1 else args.workers


def _workers_invalid(args: argparse.Namespace) -> bool:
    """Validate ``--workers``, printing the one-line usage error."""
    if args.workers < 0:
        print("error: --workers must be >= 0 (0 = auto-detect), got "
              f"{args.workers}", file=sys.stderr)
        return True
    return False


def _supervision_from(args: argparse.Namespace):
    """Build a RetryPolicy from the supervision flags (None = inactive).

    Supervision activates when any flag is given; unset companions take
    the policy defaults (2 retries, no deadline, serial degradation).
    """
    if (args.max_retries is None and args.chunk_deadline is None
            and args.on_chunk_failure is None):
        return None
    from repro.parallel.supervisor import RetryPolicy
    return RetryPolicy(
        max_retries=(2 if args.max_retries is None else args.max_retries),
        deadline=args.chunk_deadline,
        on_failure=args.on_chunk_failure or "serial",
        seed=getattr(args, "seed", 0) or 0)


def _resume_invalid(args: argparse.Namespace) -> bool:
    """Validate the --resume/--checkpoint pairing."""
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return True
    return False


def _cmd_simulate(args: argparse.Namespace) -> int:
    if _workers_invalid(args) or _resume_invalid(args):
        return 2
    graph = load_graph(args.topology)
    config = SimulationConfig(stp=args.stp, lpp=args.lpp, nip=args.nip,
                              n_agents=args.agents, seed=args.seed)
    result = simulate_population(graph, config,
                                 n_workers=_validated_workers(args),
                                 supervision=_supervision_from(args),
                                 checkpoint=args.checkpoint,
                                 resume=args.resume)
    records = requests_to_records(result.log_requests, IdentityAddressMap())
    if args.format == "combined":
        written = write_combined_file(args.log, records)
    else:
        written = write_clf_file(args.log, records)
    result.ground_truth.save(args.sessions)
    print(f"simulated {args.agents} agents: "
          f"{len(result.ground_truth)} real sessions, "
          f"{written} log records "
          f"(cache hit rate {result.cache_hit_rate:.1%})")
    print(f"wrote {args.log} and {args.sessions}")
    return 0


def _note_drops(report) -> None:
    """Say so when a skip-malformed read dropped lines (never silently)."""
    if report.dropped:
        faults = ", ".join(f"{name}={count}" for name, count
                           in sorted(report.fault_counts.items()))
        print(f"note: skipped {report.dropped} malformed lines "
              f"({faults}) — use 'repro ingest' to quarantine or "
              f"repair them", file=sys.stderr)


def _read_log_surfacing_drops(path: str) -> list:
    """Read a log skipping malformed lines, but say so when any dropped."""
    from repro.logs.ingest import IngestReport
    report = IngestReport()
    records = read_clf_file(path, skip_malformed=True, report=report)
    _note_drops(report)
    return records


def _cmd_clean(args: argparse.Namespace) -> int:
    records = _read_log_surfacing_drops(args.log)
    kept, stats = LogCleaner().clean(records)
    # preserve the input's richness: combined stays combined.
    has_headers = any(record.referrer is not None
                      or record.user_agent is not None for record in kept)
    if has_headers:
        write_combined_file(args.output, kept)
    else:
        write_clf_file(args.output, kept)
    print(f"kept {stats.kept} of {len(records)} records "
          f"(dropped: {stats.dropped_resources} resources, "
          f"{stats.dropped_errors} errors, {stats.dropped_methods} non-GET, "
          f"{stats.dropped_robots} robot)")
    print(f"wrote {args.output}")
    return 0


def _cmd_reconstruct(args: argparse.Namespace) -> int:
    if _workers_invalid(args):
        return 2
    records = _read_log_surfacing_drops(args.log)
    requests = records_to_requests(records)
    if args.heuristic == "referrer":
        from repro.sessions.referrer import ReferrerHeuristic
        heuristic = ReferrerHeuristic()
    elif args.heuristic in ("heur3", "navigation", "heur4", "smart-sra",
                            "amp", "maximal-paths"):
        if not args.topology:
            print(f"error: {args.heuristic} requires --topology",
                  file=sys.stderr)
            return 2
        graph = load_graph(args.topology)
        if args.heuristic in ("heur3", "navigation"):
            heuristic = NavigationHeuristic(graph)
        elif args.heuristic in ("amp", "maximal-paths"):
            from repro.sessions.maximal_paths import AllMaximalPaths
            heuristic = AllMaximalPaths(graph, amp=_amp_from(args))
        else:
            heuristic = SmartSRA(graph)
    else:
        heuristic = get_heuristic(args.heuristic)
    if args.engine == "columnar" and not heuristic.supports_columnar:
        print(f"error: {args.heuristic} has no columnar data plane; "
              "drop --engine columnar", file=sys.stderr)
        return 2
    sessions = heuristic.reconstruct(requests,
                                     workers=_validated_workers(args),
                                     supervision=_supervision_from(args),
                                     engine=args.engine)
    sessions.save(args.output)
    print(f"{heuristic.label}: {len(sessions)} sessions from "
          f"{len(requests)} requests "
          f"(mean length {sessions.mean_length():.2f})")
    print(f"wrote {args.output}")
    return 0


_OVERLOAD_FLAGS = ("memory_budget", "overload_policy", "per_user_cap",
                   "spill_dir", "quarantine_after", "quarantine_cap")

_AMP_FLAGS = ("path_budget", "path_overflow")


def _amp_from(args: argparse.Namespace):
    """Build an AMPConfig from the path-explosion flags (None = defaults)."""
    if all(getattr(args, flag, None) is None for flag in _AMP_FLAGS):
        return None
    from repro.core.amp import AMPConfig
    overrides = {}
    if getattr(args, "path_budget", None) is not None:
        overrides["path_budget"] = args.path_budget
    if getattr(args, "path_overflow", None) is not None:
        overrides["overflow"] = args.path_overflow
    return AMPConfig(**overrides)


def _governor_from(args: argparse.Namespace):
    """Build a GovernorConfig from the overload flags (None = ungoverned).

    The governed pipeline activates when any flag is given; unset
    companions take the :class:`GovernorConfig` defaults.
    """
    if all(getattr(args, flag, None) is None for flag in _OVERLOAD_FLAGS):
        return None
    from repro.streaming.governor import GovernorConfig, parse_memory_budget
    overrides = {flag: getattr(args, flag) for flag in _OVERLOAD_FLAGS
                 if getattr(args, flag) is not None}
    if "memory_budget" in overrides:
        overrides["memory_budget"] = parse_memory_budget(
            overrides["memory_budget"])
    return GovernorConfig(**overrides)


#: CLI flag dest -> ShardedConfig field, for _sharded_from.
_SHARDED_FLAGS = {"shards": "shards",
                  "on_shard_failure": "on_shard_failure",
                  "ack_interval": "ack_interval",
                  "shard_lease": "lease",
                  "replay_capacity": "replay_capacity",
                  "replay_dir": "replay_dir"}


def _sharded_from(args: argparse.Namespace):
    """Build a ShardedConfig from the sharded flags (None = in-process).

    The crash-safe sharded runtime activates when any flag is given;
    unset companions take the :class:`ShardedConfig` defaults.
    """
    if all(getattr(args, flag, None) is None for flag in _SHARDED_FLAGS):
        return None
    from repro.streaming.sharded import ShardedConfig
    overrides = {field: getattr(args, flag)
                 for flag, field in _SHARDED_FLAGS.items()
                 if getattr(args, flag, None) is not None}
    return ShardedConfig(**overrides)


def _stream_sharded(args: argparse.Namespace, sharded, governor) -> int:
    """The ``repro stream --shards N`` leg: run the crash-safe sharded
    runtime over the log and report the failover/replay ledger."""
    from repro.streaming.sharded import ShardedStreamingRuntime
    topology = None
    if args.heuristic != "phase1":
        if not args.topology:
            print("error: smart-sra requires --topology", file=sys.stderr)
            return 2
        topology = load_graph(args.topology)
    runtime = ShardedStreamingRuntime(
        topology, sharded=sharded, governor=governor,
        heuristic=args.heuristic, late_policy=args.late_policy,
        reorder_window=args.reorder_window, dedup=args.dedup)
    from repro.logs.ingest import IngestReport
    report = IngestReport()
    with open(args.log, encoding="utf-8") as handle:
        result = runtime.run(
            iter_requests(iter_clf_lines(handle, skip_malformed=True,
                                         report=report)),
            flush_interval=args.flush_every or None)
    _note_drops(report)
    result.sessions.save(args.output)
    stats = result.stats
    print(f"streamed {stats.fed} requests -> {stats.sealed_sessions} "
          f"sessions ({args.heuristic}, {stats.shards} shards, "
          f"on-failure {sharded.on_shard_failure})")
    print(f"  ledger: routed {stats.routed}, replayed {stats.replayed}, "
          f"shed {stats.shed} "
          f"({'reconciles' if stats.reconciles() else 'DOES NOT RECONCILE'})")
    if (stats.failovers or stats.wedged or stats.worker_deaths
            or stats.shed_shards):
        recovery = ", ".join(f"{seconds * 1000.0:.0f}ms"
                             for seconds in result.recovery_seconds)
        print(f"  failovers {stats.failovers} (respawns {stats.respawns}, "
              f"wedged {stats.wedged}, deaths {stats.worker_deaths}, "
              f"shards shed {stats.shed_shards})"
              + (f"; recovery {recovery}" if recovery else ""))
    if stats.replay_integrity_failures:
        print(f"  replay log integrity failures: "
              f"{stats.replay_integrity_failures} (replayed from memory)",
              file=sys.stderr)
    print(f"wrote {args.output}")
    if not stats.reconciles():
        print("error: sharded accounting does not reconcile",
              file=sys.stderr)
        return 1
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.streaming import (
        streaming_amp,
        streaming_phase1,
        streaming_smart_sra,
    )
    from repro.streaming.governor import GovernedStreamingStats
    if args.flush_every < 0:
        print(f"error: --flush-every must be >= 0, got {args.flush_every}",
              file=sys.stderr)
        return 2
    governor = _governor_from(args)
    sharded = _sharded_from(args)
    if sharded is not None:
        if args.heuristic == "amp":
            print("error: --shards supports smart-sra and phase1 only; "
                  "run amp without sharding flags", file=sys.stderr)
            return 2
        return _stream_sharded(args, sharded, governor)
    options = dict(late_policy=args.late_policy,
                   reorder_window=args.reorder_window, dedup=args.dedup)
    if args.heuristic == "phase1":
        pipeline = streaming_phase1(governor=governor, **options)
    elif args.heuristic == "amp":
        if not args.topology:
            print("error: amp requires --topology", file=sys.stderr)
            return 2
        pipeline = streaming_amp(load_graph(args.topology),
                                 amp=_amp_from(args), governor=governor,
                                 **options)
    else:
        if not args.topology:
            print("error: smart-sra requires --topology", file=sys.stderr)
            return 2
        pipeline = streaming_smart_sra(load_graph(args.topology),
                                       governor=governor, **options)
    # feed lazily — one parsed line in, zero or more sessions out — so a
    # live source (a pipe, a FIFO, a slowly growing file) is processed
    # as it arrives; --serve-metrics watches exactly this loop.
    from repro.logs.ingest import IngestReport
    report = IngestReport()
    sessions = []
    next_watermark = None
    with open(args.log, encoding="utf-8") as handle:
        for request in iter_requests(
                iter_clf_lines(handle, skip_malformed=True,
                               report=report)):
            if next_watermark is None and args.flush_every > 0:
                next_watermark = request.timestamp + args.flush_every
            while (next_watermark is not None
                   and request.timestamp >= next_watermark):
                sessions.extend(pipeline.flush(next_watermark))
                next_watermark += args.flush_every
            sessions.extend(pipeline.feed(request))
    sessions.extend(pipeline.flush())
    _note_drops(report)
    SessionSet(sessions).save(args.output)
    stats = pipeline.stats()
    mode = ("governed" if isinstance(stats, GovernedStreamingStats)
            else "ungoverned")
    print(f"streamed {stats.fed_requests} requests -> "
          f"{stats.emitted_sessions} sessions ({args.heuristic}, {mode})")
    if stats.late_dropped or stats.duplicates_dropped:
        print(f"  dropped: {stats.late_dropped} late, "
              f"{stats.duplicates_dropped} duplicates")
    if isinstance(stats, GovernedStreamingStats):
        print(f"  budget {stats.memory_budget}B, peak tracked "
              f"{stats.peak_tracked_bytes}B "
              f"({'bounded' if stats.peak_tracked_bytes <= stats.memory_budget else 'EXCEEDED'})")
        print(f"  degradation: {stats.evictions} evictions "
              f"({stats.evicted_requests} requests), "
              f"{stats.shed_requests} shed, "
              f"{stats.spill_writes} spills "
              f"({stats.spill_restores} restored, "
              f"{stats.spill_lost} lost), "
              f"{stats.quarantined_users} quarantined users "
              f"({stats.quarantine_flushes} channel flushes, "
              f"{stats.cap_strikes} cap strikes)")
    print(f"wrote {args.output}")
    if not stats.reconciles():
        print("error: streaming accounting does not reconcile",
              file=sys.stderr)
        return 1
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    truth = SessionSet.load(args.truth)
    reconstructed = SessionSet.load(args.reconstructed)
    report = evaluate_reconstruction(
        "cli", truth, reconstructed,
        match_within_user=not args.global_match)
    print(f"real sessions:        {report.total_real}")
    print(f"captured (⊏):         {report.captured}")
    print(f"real accuracy:        {report.accuracy:.1%}")
    print(f"exact reconstructions:{report.exact}")
    print(f"reconstructed total:  {report.reconstructed_count}")
    print(f"precision:            {report.precision:.1%}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    sweeps = {"fig8": fig8_sweep, "fig9": fig9_sweep, "fig10": fig10_sweep}
    result = sweeps[args.figure](n_agents=args.agents, seed=args.seed)
    titles = {
        "fig8": "Figure 8 — real accuracy (%) vs STP",
        "fig9": "Figure 9 — real accuracy (%) vs LPP",
        "fig10": "Figure 10 — real accuracy (%) vs NIP",
    }
    print(render_sweep_table(result, titles[args.figure]))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(render_csv(result))
        print(f"wrote {args.csv}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if _workers_invalid(args) or _resume_invalid(args):
        return 2
    try:
        values = [float(token) for token in args.values.split(",") if token]
    except ValueError:
        print(f"error: --values must be comma-separated numbers, got "
              f"{args.values!r}", file=sys.stderr)
        return 2
    if not values:
        print("error: --values needs at least one value", file=sys.stderr)
        return 2
    from repro.evaluation.harness import sweep as run_sweep
    if args.topology:
        graph = load_graph(args.topology)
    else:
        graph = random_site(300, 15.0, seed=args.seed)
    heuristic_factory = None
    if getattr(args, "heuristics", None):
        from repro.evaluation.spec import build_heuristics
        names = [token.strip() for token in args.heuristics.split(",")
                 if token.strip()]
        build_heuristics(names, graph)  # fail on unknown names up front
        heuristic_factory = lambda: build_heuristics(names, graph)
    base = SimulationConfig(n_agents=args.agents, seed=args.seed)
    result = run_sweep(graph, base, args.parameter, values,
                       heuristic_factory=heuristic_factory,
                       workers=_validated_workers(args),
                       engine=args.engine,
                       supervision=_supervision_from(args),
                       checkpoint=args.checkpoint, resume=args.resume)
    for failure in result.failures:
        print(f"warning: {failure.reason} at chunk {failure.chunk_index} "
              f"resolved by {failure.resolution}", file=sys.stderr)
    print(render_sweep_table(
        result, f"sweep: real accuracy (%) vs {args.parameter.upper()} "
                f"({args.agents} agents)"))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(render_csv(result))
        print(f"wrote {args.csv}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    sessions = SessionSet.load(args.sessions)
    patterns = frequent_sequences(sessions, min_support=args.min_support,
                                  max_length=args.max_length)
    multi = [pattern for pattern in patterns if len(pattern.pages) >= 2]
    multi.sort(key=lambda pattern: -pattern.support)
    print(f"{len(patterns)} frequent patterns "
          f"({len(multi)} of length >= 2); top {args.top}:")
    for pattern in multi[:args.top]:
        path = " -> ".join(pattern.pages)
        print(f"  {pattern.support:6.2%}  {path}")
    return 0


def _load_snapshot(path: str) -> dict:
    """Read and structurally validate a ``--metrics`` snapshot document."""
    from repro.exceptions import ConfigurationError
    if path == "-":
        document = json.load(sys.stdin)
    else:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    if (not isinstance(document, dict)
            or not any(key in document
                       for key in ("counters", "gauges", "histograms"))):
        raise ConfigurationError(
            f"{path!r} is not a metrics snapshot (expected the JSON "
            f"document written by --metrics)")
    return document


def _cmd_stats(args: argparse.Namespace) -> int:
    if (args.sessions is None) == (args.snapshot is None):
        print("error: stats needs exactly one of --sessions or --snapshot",
              file=sys.stderr)
        return 2
    if args.snapshot is not None:
        snapshots = [_load_snapshot(path) for path in args.snapshot]
        if len(snapshots) == 1:
            snapshot = snapshots[0]
        else:
            from repro.obs import merge_snapshots
            snapshot = merge_snapshots(*snapshots)
        if args.render_format == "json":
            print(json.dumps(snapshot, indent=1, sort_keys=True))
        elif args.render_format == "prom":
            print(snapshot_to_prometheus(snapshot), end="")
        else:
            print(snapshot_to_table(snapshot), end="")
        return 0
    sessions = SessionSet.load(args.sessions)
    print(render_statistics(describe(sessions, top=args.top)), end="")
    return 0


def _cmd_run_spec(args: argparse.Namespace) -> int:
    from repro.evaluation.harness import SweepResult
    from repro.evaluation.spec import load_spec, run_spec
    result = run_spec(load_spec(args.spec))
    if isinstance(result, SweepResult):
        print(render_sweep_table(result, f"spec sweep: {args.spec}"))
        if args.csv:
            with open(args.csv, "w", encoding="utf-8") as handle:
                handle.write(render_csv(result))
            print(f"wrote {args.csv}")
    else:
        print(f"spec trial: {args.spec}")
        for name, report in result.reports.items():
            print(f"  {name}: matched {report.matched_accuracy:.1%}  "
                  f"captured {report.accuracy:.1%}  "
                  f"sessions {report.reconstructed_count}")
    return 0


def _cmd_leaderboard(args: argparse.Namespace) -> int:
    from repro.evaluation.leaderboard import leaderboard, render_leaderboard
    if args.topology:
        graph = load_graph(args.topology)
    else:
        graph = random_site(300, 15.0, seed=args.seed)
    config = SimulationConfig(n_agents=args.agents, seed=args.seed)
    rows = leaderboard(graph, config)
    print(f"leaderboard over {args.agents} simulated agents "
          f"(matched accuracy, bootstrap 95% CI):")
    print(render_leaderboard(rows), end="")
    print("note: 'referrer' consumes the combined log (with Referer "
          "headers) — the others see plain CLF.")
    return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    """Re-derive the paper's worked examples and check them exactly."""
    from repro.core.smart_sra import SmartSRA
    from repro.evaluation.experiments import (
        paper_example_topology,
        paper_table1_stream,
        paper_table3_stream,
    )
    from repro.sessions.time_oriented import (
        DurationHeuristic,
        PageStayHeuristic,
    )

    topology = paper_example_topology()
    checks: list[tuple[str, bool]] = []

    heur1 = [s.pages for s in
             DurationHeuristic().reconstruct_user(paper_table1_stream())]
    checks.append(("Table 1 / heur1",
                   heur1 == [("P1", "P20", "P13", "P49"), ("P34", "P23")]))

    heur2 = [s.pages for s in
             PageStayHeuristic().reconstruct_user(paper_table1_stream())]
    checks.append(("Table 1 / heur2",
                   heur2 == [("P1", "P20", "P13"), ("P49", "P34"),
                             ("P23",)]))

    heur3 = NavigationHeuristic(topology).reconstruct_user(
        paper_table1_stream())
    checks.append(("Table 2 / heur3",
                   [s.pages for s in heur3]
                   == [("P1", "P20", "P1", "P13", "P49", "P13", "P34",
                        "P23")]))

    heur4 = SmartSRA(topology).reconstruct_user(paper_table3_stream())
    checks.append(("Table 4 / Smart-SRA",
                   {s.pages for s in heur4}
                   == {("P1", "P13", "P34", "P23"),
                       ("P1", "P13", "P49", "P23"),
                       ("P1", "P20", "P23")}))

    failed = 0
    for label, passed in checks:
        status = "ok" if passed else "FAILED"
        print(f"  {label}: {status}")
        failed += 0 if passed else 1
    if failed:
        print(f"selftest FAILED ({failed} of {len(checks)} checks)")
        return 1
    print(f"selftest passed ({len(checks)} checks — the paper's worked "
          f"examples reproduce exactly)")
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    from repro.logs.anonymize import pseudonymize_hosts, truncate_ipv4_hosts
    records = _read_log_surfacing_drops(args.log)
    if args.key is not None:
        anonymous = pseudonymize_hosts(records, key=args.key)
        scheme = "keyed pseudonyms"
    else:
        anonymous = truncate_ipv4_hosts(records, keep_octets=args.truncate)
        scheme = f"IPv4 /{args.truncate * 8} truncation"
    has_headers = any(record.referrer is not None
                      or record.user_agent is not None
                      for record in anonymous)
    if has_headers:
        write_combined_file(args.output, anonymous)
    else:
        write_clf_file(args.output, anonymous)
    hosts_before = len({record.host for record in records})
    hosts_after = len({record.host for record in anonymous})
    print(f"anonymized {len(records)} records ({scheme}): "
          f"{hosts_before} hosts -> {hosts_after}")
    print(f"wrote {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.evaluation.comparison import compare_heuristics
    truth = SessionSet.load(args.truth)
    result = compare_heuristics(
        truth, SessionSet.load(args.first), SessionSet.load(args.second),
        name_a=args.name_a, name_b=args.name_b)
    print(result)
    print(f"  both captured: {result.both}   neither: {result.neither}")
    print(f"  significant at 5%: {'yes' if result.significant() else 'no'}")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.datasets import write_dataset
    manifest = write_dataset(args.tier, args.output)
    statistics = manifest["statistics"]
    print(f"wrote dataset '{args.tier}' to {args.output}")
    for key, value in statistics.items():  # type: ignore[union-attr]
        print(f"  {key}: {value}")
    return 0


def _chaos_exec_selftest(args: argparse.Namespace) -> int:
    """Run the execution-fault self-test (``chaos --exec-selftest``)."""
    from repro.faults import run_exec_selftest
    specs = args.exec_fault or ["crash-chunk:1", "hang-chunk:2:30"]
    result = run_exec_selftest(specs, items=args.selftest_items,
                               workers=args.selftest_workers,
                               seed=args.seed)
    stats = result["stats"]
    print(f"exec selftest: {result['items']} items over "
          f"{result['chunks']} chunks with faults "
          f"{'; '.join(specs)}", file=sys.stderr)
    print(f"  retries {stats['retries']}, respawns {stats['respawns']}, "
          f"deadline hits {stats['deadline_hits']}, "
          f"crashes {stats['crashes']}, "
          f"degraded serial {stats['degraded_serial']}, "
          f"skipped {stats['skipped']}", file=sys.stderr)
    for failure in result["failures"]:
        print(f"  chunk {failure['chunk_index']} exhausted retries "
              f"({failure['reason']}) -> {failure['resolution']}",
              file=sys.stderr)
    verdict = "identical to serial" if result["identical"] else "DIVERGED"
    print(f"  recovered output: {verdict}", file=sys.stderr)
    return 0 if result["identical"] else 1


def _chaos_overload_selftest(args: argparse.Namespace) -> int:
    """Run the overload-degradation self-test (``chaos
    --overload-selftest``)."""
    from repro.faults import run_overload_selftest
    from repro.streaming.governor import parse_memory_budget
    specs = args.exec_fault or ["mem-pressure:500:0.5", "burst:800:96"]
    result = run_overload_selftest(
        specs, budget=parse_memory_budget(args.overload_budget),
        policy=args.overload_policy, seed=args.seed,
        spill_dir=args.overload_spill_dir)
    ok = (result["bounded"] and result["reconciled"]
          and result["invariant_clean"])
    if args.as_json:
        print(json.dumps({**result, "ok": ok}, indent=1, sort_keys=True))
        return 0 if ok else 1
    stats = result["stats"]
    print(f"overload selftest: {result['requests']} requests under "
          f"policy={result['policy']} budget={result['budget']}B with "
          f"faults {'; '.join(specs)}", file=sys.stderr)
    print(f"  peak tracked {stats['peak_tracked_bytes']}B "
          f"({'bounded' if result['bounded'] else 'EXCEEDED BUDGET'}), "
          f"{result['sessions']} sessions", file=sys.stderr)
    print(f"  evictions {stats['evictions']} "
          f"({stats['evicted_requests']} requests), "
          f"shed {stats['shed_requests']}, "
          f"spills {stats['spill_writes']} "
          f"(restored {stats['spill_restores']}), "
          f"quarantine flushes {stats['quarantine_flushes']}",
          file=sys.stderr)
    print(f"  ledger: "
          f"{'reconciles' if result['reconciled'] else 'DOES NOT RECONCILE'}"
          f"; output rules: "
          f"{'clean' if result['invariant_clean'] else 'VIOLATED'}",
          file=sys.stderr)
    for violation in result["violations"]:
        print(f"    ! {violation}", file=sys.stderr)
    return 0 if ok else 1


def _chaos_shard_selftest(args: argparse.Namespace) -> int:
    """Run the sharded-failover self-test (``chaos --shard-selftest``)."""
    from repro.faults import run_shard_selftest
    result = run_shard_selftest(args.exec_fault, shards=args.selftest_shards,
                                seed=args.seed)
    ok = (result["identical"] and result["reconciled"]
          and result["recovered"])
    if args.as_json:
        print(json.dumps({**result, "ok": ok}, indent=1, sort_keys=True))
        return 0 if ok else 1
    stats = result["stats"]
    print(f"shard selftest: {result['requests']} requests over "
          f"{result['shards']} shards with faults "
          f"{'; '.join(result['specs'])}", file=sys.stderr)
    print(f"  ledger: routed {stats['routed']}, "
          f"replayed {stats['replayed']}, shed {stats['shed']} "
          f"({'reconciles' if result['reconciled'] else 'DOES NOT RECONCILE'})",
          file=sys.stderr)
    print(f"  failovers {stats['failovers']} "
          f"(respawns {stats['respawns']}, wedged {stats['wedged']}, "
          f"deaths {stats['worker_deaths']}, "
          f"shards shed {stats['shed_shards']}) -> "
          f"{'recovered' if result['recovered'] else 'NO FAILOVER FIRED'}",
          file=sys.stderr)
    verdict = ("identical to serial" if result["identical"]
               else "DIVERGED from serial")
    print(f"  sealed output ({result['sessions']} sessions): {verdict}",
          file=sys.stderr)
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    selftests = [flag for flag in ("exec_selftest", "overload_selftest",
                                   "shard_selftest")
                 if getattr(args, flag)]
    if len(selftests) > 1:
        print("error: --exec-selftest, --overload-selftest and "
              "--shard-selftest are mutually exclusive", file=sys.stderr)
        return 2
    if args.exec_selftest:
        return _chaos_exec_selftest(args)
    if args.overload_selftest:
        return _chaos_overload_selftest(args)
    if args.shard_selftest:
        return _chaos_shard_selftest(args)
    if args.log is None:
        print("error: --log is required (unless --exec-selftest, "
              "--overload-selftest or --shard-selftest)", file=sys.stderr)
        return 2
    from repro.faults import chaos_stream, parse_fault_spec
    specs = None
    if args.fault:
        specs = [parse_fault_spec(spec) for spec in args.fault]
    if args.log == "-":
        lines = [line.rstrip("\n") for line in sys.stdin]
    else:
        with open(args.log, encoding="utf-8", errors="replace") as handle:
            lines = [line.rstrip("\n") for line in handle]
    corrupted = list(chaos_stream(lines, specs, seed=args.seed))
    payload = "".join(line + "\n" for line in corrupted)
    if args.output == "-":
        sys.stdout.write(payload)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload)
    applied = (", ".join(f"{name}:{rate:g}" for name, rate in specs)
               if specs is not None else "all models (default mix)")
    # the summary goes to stderr so stdout stays a clean log pipe.
    print(f"chaos: {len(lines)} lines in, {len(corrupted)} out "
          f"(seed {args.seed}; {applied})", file=sys.stderr)
    if args.output != "-":
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.logs.ingest import IngestReport, ingest_clf_file, ingest_lines
    quarantine_path = args.quarantine
    if quarantine_path is None and args.error_policy in ("quarantine",
                                                         "repair"):
        quarantine_path = ("quarantine.log" if args.log == "-"
                          else f"{args.log}.quarantine")
    if args.log == "-":
        report = IngestReport()
        if quarantine_path is not None:
            with open(quarantine_path, "w", encoding="utf-8") as sink:
                records = list(ingest_lines(sys.stdin,
                                            policy=args.error_policy,
                                            report=report, quarantine=sink))
        else:
            records = list(ingest_lines(sys.stdin,
                                        policy=args.error_policy,
                                        report=report))
    else:
        result = ingest_clf_file(args.log, policy=args.error_policy,
                                 quarantine_path=quarantine_path)
        records, report = result.records, result.report
    print(report.summary())
    if not report.reconciles():  # pragma: no cover - invariant guard
        print("error: ingest accounting does not reconcile",
              file=sys.stderr)
        return 1
    if args.output:
        has_headers = any(record.referrer is not None
                          or record.user_agent is not None
                          for record in records)
        if has_headers:
            write_combined_file(args.output, records)
        else:
            write_clf_file(args.output, records)
        print(f"wrote {args.output} ({len(records)} records)")
    if quarantine_path is not None:
        print(f"quarantine: {quarantine_path} "
              f"({report.quarantined} lines)")
    return 0


_TELEMETRY_FLAGS = ("serve_metrics", "timeline_interval",
                    "timeline_capacity")


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.parallel.checkpoint import CheckpointStore
    governor = _governor_from(args)
    sharded = _sharded_from(args)
    amp = _amp_from(args)
    telemetry = any(getattr(args, flag, None) is not None
                    for flag in _TELEMETRY_FLAGS)
    if governor is not None or sharded is not None or telemetry \
            or amp is not None:
        if args.checkpoint is not None:
            print("error: audit either a checkpoint DIR or a "
                  "configuration (overload/sharded/telemetry/amp flags), "
                  "not both", file=sys.stderr)
            return 2
        audits = []
        if governor is not None:
            from repro.streaming.governor import audit_overload_config
            audits.append(audit_overload_config(governor))
        if sharded is not None:
            from repro.streaming.sharded import audit_sharded_config
            audits.append(audit_sharded_config(sharded, governor))
        if amp is not None:
            from repro.core.amp import audit_amp_config
            audits.append(audit_amp_config(
                amp, memory_budget=(governor.memory_budget
                                    if governor is not None else None)))
        if telemetry:
            from repro.obs import audit_telemetry_config
            audits.append(audit_telemetry_config(
                interval=args.timeline_interval,
                capacity=args.timeline_capacity,
                port=args.serve_metrics,
                memory_budget=(governor.memory_budget
                               if governor is not None else None)))
        ok = all(audit.ok for audit in audits)
        if args.as_json:
            if len(audits) == 1:
                # the single-audit document keeps its historical shape
                # (governor-only doctor runs predate the telemetry audit).
                document = audits[0].to_dict()
            else:
                document = {"ok": ok,
                            "audits": [audit.to_dict()
                                       for audit in audits]}
            print(json.dumps(document, indent=1, sort_keys=True))
        else:
            print("\n".join(audit.render() for audit in audits))
        return 0 if ok else 1
    if args.checkpoint is None:
        print("error: doctor needs a checkpoint DIR to audit, or "
              "overload/sharded/telemetry/amp flags (e.g. "
              "--memory-budget, --shards, --serve-metrics, "
              "--path-budget) for a configuration audit",
              file=sys.stderr)
        return 2
    if not os.path.isdir(args.checkpoint):
        print(f"error: {args.checkpoint} is not a directory",
              file=sys.stderr)
        return 2
    report = CheckpointStore(args.checkpoint).validate()
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_diffcheck(args: argparse.Namespace) -> int:
    from repro.diffcheck import (
        EngineContext,
        generate_corpus,
        load_corpus,
        run_diffcheck,
        run_engine,
        save_corpus,
    )
    if args.write_golden is not None:
        seed = args.seed if args.seed is not None else 0
        pinned = []
        for case in generate_corpus(seed=seed):
            ctx = EngineContext(case.requests, case.topology, case.config,
                                case.seed)
            reference = run_engine("serial", ctx)
            amp_reference = run_engine("amp-reference", ctx)
            pinned.append(case.with_expected(reference, amp_reference))
        paths = save_corpus(pinned, args.write_golden)
        print(f"wrote {len(paths)} golden case(s) to {args.write_golden}")
        return 0
    if args.corpus is not None:
        cases = load_corpus(args.corpus)
    else:
        cases = generate_corpus(
            seed=args.seed if args.seed is not None else 0)
    report = run_diffcheck(cases, engines=args.engines, seed=args.seed)
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import analyze_trace
    report = analyze_trace(sys.stdin if args.file == "-" else args.file)
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(report.render(top=args.top))
    if args.folded:
        folded = report.folded()
        with open(args.folded, "w", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in folded))
        print(f"wrote {args.folded} ({len(folded)} stacks)",
              file=sys.stderr)
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.obs import (
        build_baseline,
        compare_to_baseline,
        load_sidecars,
    )
    from repro.obs.baseline import DEFAULT_THRESHOLD
    sidecars = load_sidecars(args.results)
    if args.update:
        if args.quick:
            print("error: --update and --quick are mutually exclusive "
                  "(never record a baseline from shrunken quick-mode "
                  "runs)", file=sys.stderr)
            return 2
        document = build_baseline(sidecars)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        benches = ", ".join(sorted(document["benches"]))
        print(f"recorded baseline for {len(document['benches'])} "
              f"bench(es) ({benches}) into {args.baseline}")
        return 0
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    report = compare_to_baseline(
        sidecars, baseline,
        threshold=(DEFAULT_THRESHOLD if args.threshold is None
                   else args.threshold),
        quick=args.quick)
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        print(report.render(verbose=args.verbose))
    return 0 if report.ok else 1


_COMMANDS = {
    "topology": _cmd_topology,
    "simulate": _cmd_simulate,
    "clean": _cmd_clean,
    "reconstruct": _cmd_reconstruct,
    "sessionize": _cmd_reconstruct,
    "stream": _cmd_stream,
    "evaluate": _cmd_evaluate,
    "experiment": _cmd_experiment,
    "sweep": _cmd_sweep,
    "mine": _cmd_mine,
    "stats": _cmd_stats,
    "run-spec": _cmd_run_spec,
    "dataset": _cmd_dataset,
    "compare": _cmd_compare,
    "anonymize": _cmd_anonymize,
    "selftest": _cmd_selftest,
    "leaderboard": _cmd_leaderboard,
    "chaos": _cmd_chaos,
    "ingest": _cmd_ingest,
    "doctor": _cmd_doctor,
    "diffcheck": _cmd_diffcheck,
    "trace": _cmd_trace,
    "bench-diff": _cmd_bench_diff,
}

#: subcommands where --serve-metrics starts the live exporter (doctor
#: shares the flag names but only audits them).
_SERVING_COMMANDS = frozenset({"stream", "simulate", "sweep"})


def _export_metrics(registry: Registry, path: str) -> None:
    """Write the registry snapshot where ``--metrics`` pointed."""
    if path.endswith((".prom", ".txt")):
        payload = registry.render_prometheus()
    else:
        payload = json.dumps(registry.snapshot(), indent=1,
                             sort_keys=True) + "\n"
    if path == "-":
        sys.stdout.write(payload)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote {path}", file=sys.stderr)


def _run_command(args: argparse.Namespace) -> int:
    """Execute one subcommand under its requested observability setup."""
    command = _COMMANDS[args.command]
    metrics_path = getattr(args, "metrics", None)
    trace_path = getattr(args, "trace", None)
    serve_port = (getattr(args, "serve_metrics", None)
                  if args.command in _SERVING_COMMANDS else None)
    if metrics_path is None and trace_path is None and serve_port is None:
        return command(args)

    trace_handle = None
    tracer = None
    if trace_path is not None:
        trace_handle = (sys.stderr if trace_path == "-"
                        else open(trace_path, "w", encoding="utf-8"))
        tracer = Tracer(trace_handle)
    registry = Registry(tracer=tracer)
    sampler = None
    server = None
    try:
        if serve_port is not None:
            from repro.obs import MetricsServer, TimelineSampler
            interval = getattr(args, "timeline_interval", None)
            capacity = getattr(args, "timeline_capacity", None)
            sampler = TimelineSampler(
                registry,
                interval=1.0 if interval is None else interval,
                capacity=600 if capacity is None else capacity)
            server = MetricsServer(registry, serve_port, sampler=sampler)
            server.start()
            sampler.start()
            print(f"serving metrics on {server.url} "
                  f"(/metrics /health /snapshot /timeline)",
                  file=sys.stderr)
        with use_registry(registry), registry.span(f"cli.{args.command}"):
            if metrics_path == "-":
                # stdout is reserved for the snapshot: the command's
                # human-readable output moves to stderr.
                with contextlib.redirect_stdout(sys.stderr):
                    code = command(args)
            else:
                code = command(args)
    finally:
        # teardown runs on every exit path, SIGINT included: the
        # sampler thread stops, the port is released, the trace closes.
        if sampler is not None:
            sampler.stop()
        if server is not None:
            server.close()
        if trace_handle is not None and trace_handle is not sys.stderr:
            trace_handle.close()
    if metrics_path is not None:
        _export_metrics(registry, metrics_path)
    return code


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Every failure mode a subcommand can hit on bad input — a missing or
    unreadable file (``OSError``), malformed JSON (``ValueError``), a
    structurally wrong document (``KeyError``) or any library-raised
    :class:`ReproError` — exits non-zero with a clean one-line
    ``error:`` message instead of a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_command(args)
    except BrokenPipeError:
        # the downstream consumer (`head`, a closed pager) went away:
        # exit quietly like any unix filter, keeping the interpreter's
        # shutdown flush from raising a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except KeyboardInterrupt:
        # checkpointed commands flush every completed unit as it finishes,
        # so the run can be continued with --resume after a Ctrl-C.
        print("error: interrupted; completed checkpoint units were kept "
              "(rerun with --resume to continue)", file=sys.stderr)
        return 130
    except (ReproError, OSError, ValueError, KeyError) as error:
        text = str(error).strip()
        message = (text.splitlines()[0] if text
                   else type(error).__name__)
        print(f"error: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
