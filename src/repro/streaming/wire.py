"""Framed binary wire protocol for the sharded streaming runtime.

The coordinator feeds each shard worker over an OS pipe.  Pickling every
:class:`~repro.sessions.model.Request` would spend most of the pipe
bandwidth re-sending the same user and page strings (A17 measured this
for the batch engine; PR 8's ``UserColumns`` fixed it with interned ids
and fixed-width columns).  This module applies the same idiom to a byte
stream:

* every frame is ``!BI`` — one kind byte and a payload length — followed
  by the payload, so a reader never needs lookahead;
* strings are interned: a ``SYM`` frame carries the UTF-8 text and
  implicitly assigns the *next* sequential id in the receiver's table,
  so ids never appear on the wire at definition time;
* an event is a fixed 21-byte record (float64 timestamp, three int32
  symbol ids — referrer ``-1`` meaning absent — and one synthetic flag
  byte), independent of how long the user/page strings are;
* control and result frames (watermarks, capsules, emitted sessions,
  acks) are small and infrequent, so they ride as canonical JSON.

Both directions of the pipe use the same framing; only the kind sets
differ.  The protocol is strictly sequential per connection — a fresh
worker incarnation starts from an empty symbol table, and the
coordinator re-interns from scratch when it replays.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Iterator

from repro.exceptions import WireProtocolError

__all__ = [
    "SYM", "EVT", "WM", "EOF", "CAP", "OUT", "ACK", "DONE", "ERR",
    "FrameReader", "SymbolEncoder", "SymbolDecoder",
    "frame", "json_frame", "decode_json", "watermark_frame",
    "decode_watermark",
]

# coordinator -> worker
SYM = 1   #: intern the UTF-8 payload as the next symbol id
EVT = 2   #: one request, fixed-width record
WM = 3    #: flush watermark (float64)
EOF = 4   #: end of stream — flush everything and send DONE
CAP = 5   #: state capsule (JSON), sent before replaying into a respawn

# worker -> coordinator
OUT = 6   #: one emitted session (JSON)
ACK = 7   #: progress acknowledgement + refreshed capsule (JSON)
DONE = 8  #: final stats + obs snapshot (JSON)
ERR = 9   #: fatal, deterministic worker error (UTF-8 traceback)

_KINDS = frozenset((SYM, EVT, WM, EOF, CAP, OUT, ACK, DONE, ERR))

_HEADER = struct.Struct("!BI")
_EVENT = struct.Struct("!diiiB")
_WM = struct.Struct("!d")

#: sentinel symbol id for "no referrer" in an event record.
NO_SYMBOL = -1


def frame(kind: int, payload: bytes = b"") -> bytes:
    """Serialize one frame: kind byte, payload length, payload."""
    return _HEADER.pack(kind, len(payload)) + payload


def json_frame(kind: int, document: Any) -> bytes:
    """Serialize ``document`` as a canonical-JSON frame of ``kind``."""
    payload = json.dumps(document, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return frame(kind, payload)


def decode_json(payload: bytes) -> Any:
    """Parse a JSON frame payload, typing failures as protocol errors."""
    try:
        return json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireProtocolError(f"undecodable JSON payload: {exc}") from exc


def watermark_frame(watermark: float) -> bytes:
    """Serialize a WM frame carrying ``watermark``."""
    return frame(WM, _WM.pack(watermark))


def decode_watermark(payload: bytes) -> float:
    """Decode a WM frame payload."""
    if len(payload) != _WM.size:
        raise WireProtocolError(
            f"watermark payload is {len(payload)} bytes, want {_WM.size}")
    return float(_WM.unpack(payload)[0])


class FrameReader:
    """Incremental frame parser over an arbitrary chunking of the stream.

    ``feed`` accepts whatever ``os.read`` produced — frames split across
    chunks are reassembled, multiple frames per chunk are all yielded.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[tuple[int, bytes]]:
        """Absorb ``data``; yield every now-complete ``(kind, payload)``."""
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            kind, length = _HEADER.unpack_from(self._buffer)
            if kind not in _KINDS:
                raise WireProtocolError(f"unknown frame kind {kind}")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            yield kind, payload

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)


class SymbolEncoder:
    """Sender-side interning table shared by users, pages and referrers.

    The first time a string is encoded, a ``SYM`` frame defining it is
    appended *before* the record that references it; the receiver's
    :class:`SymbolDecoder` assigns ids by arrival order, so the two
    tables agree without ids ever being transmitted.
    """

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def _intern(self, out: bytearray, text: str) -> int:
        symbol = self._ids.get(text)
        if symbol is None:
            symbol = len(self._ids)
            self._ids[text] = symbol
            out += frame(SYM, text.encode("utf-8"))
        return symbol

    def encode_event(self, out: bytearray, timestamp: float, user: str,
                     page: str, referrer: str | None,
                     synthetic: bool) -> None:
        """Append the SYM frames (if any) and the EVT frame to ``out``."""
        user_id = self._intern(out, user)
        page_id = self._intern(out, page)
        ref_id = NO_SYMBOL if referrer is None else self._intern(out, referrer)
        out += frame(EVT, _EVENT.pack(timestamp, user_id, page_id, ref_id,
                                      1 if synthetic else 0))


class SymbolDecoder:
    """Receiver-side interning table mirroring :class:`SymbolEncoder`."""

    def __init__(self) -> None:
        self._table: list[str] = []

    def __len__(self) -> int:
        return len(self._table)

    def add_symbol(self, payload: bytes) -> None:
        """Define the next symbol id from a SYM frame payload."""
        try:
            self._table.append(payload.decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise WireProtocolError(f"undecodable symbol: {exc}") from exc

    def _lookup(self, symbol: int) -> str:
        if not 0 <= symbol < len(self._table):
            raise WireProtocolError(
                f"symbol id {symbol} outside table of {len(self._table)}")
        return self._table[symbol]

    def decode_event(self, payload: bytes) -> tuple[float, str, str,
                                                    str | None, bool]:
        """Decode an EVT payload to ``(ts, user, page, referrer, syn)``."""
        if len(payload) != _EVENT.size:
            raise WireProtocolError(
                f"event payload is {len(payload)} bytes, want {_EVENT.size}")
        timestamp, user_id, page_id, ref_id, synthetic = _EVENT.unpack(payload)
        referrer = None if ref_id == NO_SYMBOL else self._lookup(ref_id)
        return (timestamp, self._lookup(user_id), self._lookup(page_id),
                referrer, bool(synthetic))
