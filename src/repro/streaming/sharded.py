"""Crash-safe sharded streaming runtime with failover and replay.

ROADMAP's "sharded streaming at population scale" item, built for
robustness first: the streaming pipeline must survive the worker process
dying under it without changing the answer.

Architecture
------------

A coordinator hash-shards users across ``N`` forked worker processes,
each running a :class:`~repro.streaming.governor.GovernedStreamingReconstructor`
over one shard of the user population.  Per shard there are two OS
pipes carrying the framed compact protocol of
:mod:`repro.streaming.wire` — interned symbols plus fixed-width event
records, never per-chunk pickles (the A17 lesson).  The coordinator's
single ``select`` loop routes events, drains emitted sessions, and
supervises liveness; workers are otherwise autonomous.

Crash safety rests on three pieces:

* **Acked capsules.**  Every ``ack_interval`` events (and after every
  watermark flush) a worker captures its *entire* reconstruction state —
  open candidate buffers, per-user cap strikes, quarantine channels,
  eviction watermarks, ledger counters — as a capsule that is a pure
  function of the events processed so far, and ships it inside its ACK.
  Because the pipe is FIFO, an ACK for event ``k`` proves the
  coordinator already holds every session emitted by events ``<= k``;
  those sessions become *durable* and the events are trimmed from the
  replay log.
* **Bounded replay logs.**  Unacked events (and watermark marks) are
  retained per shard in a bounded :class:`ReplayLog`, optionally
  persisted with the atomic, digest-sealed write idiom of
  :mod:`repro.parallel.checkpoint`.  A full log is backpressure: the
  coordinator stops routing to that shard until it acks or its lease
  expires.
* **Lease supervision and replay.**  A shard with outstanding work that
  produces no frames within ``lease`` seconds is wedged; a pipe that
  reaches EOF is dead.  Either way the coordinator discards the shard's
  *pending* (post-ACK) sessions, respawns the worker after a
  :class:`~repro.parallel.supervisor.RetryPolicy` backoff, restores the
  last capsule, and replays the logged events in order.  The respawned
  worker re-derives exactly the sessions that were discarded — so a run
  with injected worker kills produces byte-identical sealed output
  (by :meth:`~repro.sessions.model.SessionSet.canonical_digest`) to an
  unkilled single-threaded run.

Sealing follows the watermark rule: each ACK carries the shard's event
time watermark; the coordinator's global low-watermark is the minimum
over live shards, and a durable session is *sealed* — released into the
output — only once its end time is at or below that low-watermark (EOF
drives every watermark to +inf).

Failure policy mirrors the governor: ``failover`` (default) replays as
above, ``shed-shard`` abandons the shard's unsealed events (visibly, in
the ledger), ``raise`` turns the first worker loss into
:class:`~repro.exceptions.ExecutionError`.  The
:class:`ShardedStreamingStats` ledger reconciles exactly:
``fed == routed + replayed + shed``.

Byte-identity scope
-------------------

Per-user degradation (caps, strikes, quarantine) depends only on that
user's own substream, so it shards transparently.  *Global*-budget
eviction depends on every user's interleaving and is therefore not
byte-stable across shard counts — run byte-exact comparisons with a
budget generous enough that global eviction never fires (the default
here), exactly as :func:`repro.faults.execution.run_shard_selftest`
does.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import math
import multiprocessing
import os
import select
import time
import traceback
from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import (ConfigurationError, ExecutionError,
                              WireProtocolError)
from repro.faults.execution import inject_shard_fault
from repro.obs import Registry, get_registry, snapshot_digest
from repro.parallel.checkpoint import atomic_write_json, load_verified_json
from repro.parallel.supervisor import RetryPolicy
from repro.sessions.model import Request, Session, SessionSet
from repro.streaming import wire
from repro.streaming.governor import GovernorConfig
from repro.streaming.pipeline import streaming_phase1, streaming_smart_sra

__all__ = [
    "SHARD_FAILURE_POLICIES",
    "ShardedConfig",
    "ShardedStreamingStats",
    "ShardedRunResult",
    "ShardedStreamingRuntime",
    "ShardLedger",
    "ReplayLog",
    "ShardedAudit",
    "audit_sharded_config",
    "shard_for",
    "capsule_from",
    "restore_capsule",
]

#: what to do when a shard worker dies or wedges.
SHARD_FAILURE_POLICIES = ("failover", "shed-shard", "raise")

#: schema version of capsules and persisted replay logs.
REPLAY_SCHEMA = 1

#: bytes read from a pipe per syscall.
_READ_CHUNK = 1 << 16

#: select timeout of the coordinator loop, seconds.
_PUMP_TIMEOUT = 0.05


def shard_for(user_id: str, n_shards: int) -> int:
    """The shard owning ``user_id`` — stable across runs and platforms.

    Uses a keyed-free BLAKE2b of the UTF-8 bytes rather than ``hash()``
    so the routing is independent of ``PYTHONHASHSEED`` and identical on
    every machine — replay logs and capsules written by one coordinator
    must route the same way in the next.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.blake2b(user_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


@dataclass(frozen=True, slots=True)
class ShardedConfig:
    """Configuration of the sharded runtime.

    Attributes:
        shards: number of worker processes (users hash across them).
        on_shard_failure: one of :data:`SHARD_FAILURE_POLICIES`.
        ack_interval: events between worker capsules/ACKs.  Smaller
            means less replay after a crash but more capsule traffic.
        lease: seconds a shard with outstanding work may stay silent
            before the coordinator declares it wedged.
        replay_capacity: maximum *unacked* events retained per shard;
            reaching it backpressures routing to that shard.
        replay_dir: when set, every ACK persists the shard's replay log
            (capsule + unacked events) atomically under this directory,
            and recovery prefers the digest-verified disk copy.
        max_watermark_lag: event-time seconds a shard's watermark may
            trail the routed head before ``/health`` degrades.
    """

    shards: int = 2
    on_shard_failure: str = "failover"
    ack_interval: int = 256
    lease: float = 30.0
    replay_capacity: int = 65536
    replay_dir: str | None = None
    max_watermark_lag: float = 900.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}")
        if self.on_shard_failure not in SHARD_FAILURE_POLICIES:
            known = ", ".join(SHARD_FAILURE_POLICIES)
            raise ConfigurationError(
                f"unknown shard-failure policy "
                f"{self.on_shard_failure!r} (known: {known})")
        if self.ack_interval < 1:
            raise ConfigurationError(
                f"ack_interval must be >= 1, got {self.ack_interval}")
        if self.lease <= 0:
            raise ConfigurationError(f"lease must be > 0, got {self.lease}")
        if self.replay_capacity < self.ack_interval:
            raise ConfigurationError(
                f"replay_capacity ({self.replay_capacity}) must be >= "
                f"ack_interval ({self.ack_interval}); otherwise no ACK "
                f"boundary ever fits in the log")
        if self.max_watermark_lag <= 0:
            raise ConfigurationError(
                f"max_watermark_lag must be > 0, got "
                f"{self.max_watermark_lag}")


class ShardLedger:
    """Exact final-disposition accounting for every routed event.

    Pure bookkeeping — no processes, no pipes — so the reconciliation
    invariant (``fed == routed + replayed + shed``) can be property
    tested under arbitrary kill schedules without forking anything.

    An event's disposition is *final*: ``routed`` counts events that
    reached a worker and were never disturbed, ``replayed`` counts
    events re-delivered after at least one failover (however many times),
    and ``shed`` counts events abandoned with their shard.  Acked events
    simply leave the pending window with whatever disposition they had.
    """

    __slots__ = ("shards", "fed", "routed", "replayed", "shed",
                 "_pending", "_shed_shards")

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.fed = 0
        self.routed = 0
        self.replayed = 0
        self.shed = 0
        # per shard, one flag per unacked event: already replayed?
        self._pending: list[deque[bool]] = [deque() for _ in range(shards)]
        self._shed_shards: set[int] = set()

    def route(self, shard: int) -> bool:
        """Count one event toward ``shard``; False if the shard is shed."""
        self.fed += 1
        if shard in self._shed_shards:
            self.shed += 1
            return False
        self.routed += 1
        self._pending[shard].append(False)
        return True

    def ack(self, shard: int, count: int) -> None:
        """Retire the ``count`` oldest pending events of ``shard``."""
        pending = self._pending[shard]
        if count > len(pending):
            raise ExecutionError(
                f"shard {shard} acked {count} events but only "
                f"{len(pending)} are pending")
        for _ in range(count):
            pending.popleft()

    def fail(self, shard: int) -> int:
        """Mark every pending event of ``shard`` replayed; count new ones."""
        pending = self._pending[shard]
        moved = 0
        for i, already in enumerate(pending):
            if not already:
                pending[i] = True
                moved += 1
        self.routed -= moved
        self.replayed += moved
        return moved

    def shed_shard(self, shard: int) -> int:
        """Abandon ``shard``: pending and all future events become shed."""
        pending = self._pending[shard]
        dropped = len(pending)
        while pending:
            if pending.popleft():
                self.replayed -= 1
            else:
                self.routed -= 1
            self.shed += 1
        self._shed_shards.add(shard)
        return dropped

    def pending(self, shard: int) -> int:
        """Unacked events currently attributed to ``shard``."""
        return len(self._pending[shard])

    def reconciles(self) -> bool:
        """The exactness invariant: every fed event has one disposition."""
        return self.fed == self.routed + self.replayed + self.shed


class ReplayLog:
    """Bounded per-shard log of unacked events and watermark marks.

    The in-memory deque is authoritative; when ``directory`` is set,
    every ack also persists the log (capsule, base ordinals, entries)
    with the atomic, digest-sealed JSON idiom of
    :mod:`repro.parallel.checkpoint`, and :meth:`recover` prefers the
    verified disk copy — falling back to memory and counting an
    integrity failure when the file is damaged.
    """

    def __init__(self, shard: int, capacity: int,
                 directory: str | None = None) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"replay capacity must be >= 1, got {capacity}")
        self.shard = shard
        self.capacity = capacity
        self.directory = str(directory) if directory is not None else None
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
        # entries: ["evt", ordinal, ts, user, page, referrer, synthetic]
        #       or ["wm", wm_index, value]
        self.entries: deque[list[Any]] = deque()
        self.base_ordinal = 0
        self.base_wm = 0
        self.capsule: dict[str, Any] | None = None
        self.integrity_failures = 0
        self._events = 0

    @property
    def path(self) -> str | None:
        """The persisted log file, when persistence is configured."""
        if self.directory is None:
            return None
        return os.path.join(self.directory,
                            f"shard-{self.shard:03d}.replay.json")

    @property
    def event_count(self) -> int:
        """Unacked events currently held (the bounded quantity)."""
        return self._events

    def append_event(self, ordinal: int, timestamp: float, user: str,
                     page: str, referrer: str | None,
                     synthetic: bool) -> bool:
        """Retain one routed event; False when the log is at capacity."""
        if self._events >= self.capacity:
            return False
        self.entries.append(["evt", ordinal, timestamp, user, page,
                             referrer, synthetic])
        self._events += 1
        return True

    def append_watermark(self, wm_index: int, value: float) -> None:
        """Retain one broadcast watermark (watermarks are never bounded)."""
        self.entries.append(["wm", wm_index, value])

    def clear(self) -> None:
        """Drop every retained entry (the shard was shed)."""
        self.entries.clear()
        self._events = 0

    def ack(self, ordinal: int, wm_index: int,
            capsule: dict[str, Any] | None) -> int:
        """Trim entries covered by an ACK; returns trimmed event count."""
        trimmed = 0
        entries = self.entries
        while entries:
            head = entries[0]
            if head[0] == "evt" and head[1] <= ordinal:
                entries.popleft()
                self._events -= 1
                trimmed += 1
            elif head[0] == "wm" and head[1] <= wm_index:
                entries.popleft()
            else:
                break
        self.base_ordinal = max(self.base_ordinal, ordinal)
        self.base_wm = max(self.base_wm, wm_index)
        if capsule is not None:
            self.capsule = capsule
        if self.directory is not None:
            self.persist()
        return trimmed

    def to_document(self) -> dict[str, Any]:
        """The persisted form (without the integrity digest)."""
        return {
            "schema": REPLAY_SCHEMA,
            "shard": self.shard,
            "base_ordinal": self.base_ordinal,
            "base_wm": self.base_wm,
            "capsule": self.capsule,
            "entries": [list(entry) for entry in self.entries],
        }

    def persist(self) -> str:
        """Atomically write the digest-sealed log document."""
        document = self.to_document()
        document["digest"] = snapshot_digest(document)
        path = self.path
        assert path is not None
        atomic_write_json(path, document)
        return path

    @staticmethod
    def _last_ordinal(base: int, entries: list[list[Any]]) -> int:
        """Highest event ordinal covered by ``base`` plus ``entries``."""
        last = base
        for entry in entries:
            if entry[0] == "evt":
                last = max(last, entry[1])
        return last

    def recover(self) -> tuple[dict[str, Any] | None, list[list[Any]]]:
        """State to rebuild a worker from: ``(capsule, entries)``.

        The in-memory log is authoritative while this coordinator is
        alive — events routed since the last ack exist *only* in memory,
        because persistence happens at ack boundaries.  The
        digest-verified disk copy is used only when it is at least as
        advanced as memory (a fresh coordinator resuming an existing
        ``replay_dir`` starts with an empty memory log); a
        present-but-damaged file falls back to memory and increments
        :attr:`integrity_failures`.
        """
        path = self.path
        if path is not None and os.path.exists(path):
            document = load_verified_json(path, REPLAY_SCHEMA)
            if document is None or document.get("shard") != self.shard:
                self.integrity_failures += 1
            else:
                disk_last = self._last_ordinal(document["base_ordinal"],
                                               document["entries"])
                memory_last = self._last_ordinal(self.base_ordinal,
                                                 list(self.entries))
                if disk_last >= memory_last:
                    return document.get("capsule"), list(document["entries"])
        return self.capsule, [list(entry) for entry in self.entries]


# ---------------------------------------------------------------------------
# worker state capsules


def _encode_request(request: Request) -> list[Any]:
    return [request.timestamp, request.page, request.referrer,
            request.synthetic]


def _decode_request(user: str, parts: list[Any]) -> Request:
    return Request(float(parts[0]), user, parts[1], bool(parts[3]), parts[2])


def capsule_from(pipeline: Any) -> dict[str, Any]:
    """Capture a governed pipeline's complete reconstruction state.

    The capsule is a pure function of the events fed so far, which is
    what makes replay deterministic: restore it into a fresh pipeline,
    feed the same remaining events, and the emitted sessions and final
    stats are identical.  Two preconditions keep that true — the reorder
    buffer must be empty (shard workers run with ``reorder_window=0``;
    the coordinator reorders *before* routing) and no user may be
    spilled to disk (spill files die with the worker, so workers skip
    capsule refreshes while any cold buffer is on disk).
    """
    if getattr(pipeline, "_spilled", None):
        raise ExecutionError("cannot capsule a pipeline with spilled users")
    if pipeline._reorder:
        raise ExecutionError("cannot capsule a pipeline with a non-empty "
                             "reorder buffer")
    return {
        "schema": REPLAY_SCHEMA,
        "buffers": {user: [_encode_request(r) for r in requests]
                    for user, requests in pipeline._buffers.items()},
        "quarantine": {user: [_encode_request(r) for r in requests]
                       for user, requests in pipeline._quarantine.items()},
        "evict_watermarks": dict(pipeline._evict_watermarks),
        "cap_strikes": dict(pipeline._cap_strikes),
        "user_bytes": dict(pipeline._user_bytes),
        "user_last": dict(pipeline._user_last),
        "flush_watermark": pipeline._flush_watermark,
        "max_seen": pipeline._max_seen,
        "counters": {
            "fed": pipeline._fed,
            "closed": pipeline._closed,
            "emitted": pipeline._emitted,
            "late_dropped": pipeline._late_dropped,
            "duplicates_dropped": pipeline._duplicates_dropped,
            "evictions": pipeline._evictions,
            "evicted_requests": pipeline._evicted_requests,
            "evicted_via_finish": pipeline._evicted_via_finish,
            "shed": pipeline._shed,
            "spill_writes": pipeline._spill_writes,
            "spill_restores": pipeline._spill_restores,
            "spill_lost": pipeline._spill_lost,
            "quarantine_bytes": dict(pipeline._quarantine_bytes),
            "quarantine_flushes": pipeline._quarantine_flushes,
            "cap_strikes_total": pipeline._cap_strikes_total,
            "tracked": pipeline._tracked,
            "peak_tracked": pipeline._peak_tracked,
            "feed_ordinal": pipeline._feed_ordinal,
        },
    }


def restore_capsule(pipeline: Any, capsule: dict[str, Any]) -> None:
    """Restore a :func:`capsule_from` capsule into a fresh pipeline."""
    if capsule.get("schema") != REPLAY_SCHEMA:
        raise ExecutionError(
            f"capsule schema {capsule.get('schema')!r} != {REPLAY_SCHEMA}")
    pipeline._buffers = {
        user: [_decode_request(user, parts) for parts in encoded]
        for user, encoded in capsule["buffers"].items()}
    pipeline._quarantine = {
        user: [_decode_request(user, parts) for parts in encoded]
        for user, encoded in capsule["quarantine"].items()}
    pipeline._evict_watermarks = {
        user: float(value)
        for user, value in capsule["evict_watermarks"].items()}
    pipeline._cap_strikes = {user: int(value) for user, value
                             in capsule["cap_strikes"].items()}
    pipeline._user_bytes = {user: int(value) for user, value
                            in capsule["user_bytes"].items()}
    pipeline._user_last = {user: float(value) for user, value
                           in capsule["user_last"].items()}
    # the idle heap is rebuilt in (timestamp, user) order with fresh
    # sequence numbers; exact tie order only matters once global-budget
    # eviction fires, which is outside the byte-identity scope anyway.
    rebuilt = sorted((last, user)
                     for user, last in pipeline._user_last.items())
    pipeline._idle_heap = [(last, seq, user)
                           for seq, (last, user) in enumerate(rebuilt)]
    pipeline._heap_seq = len(rebuilt)
    pipeline._flush_watermark = float(capsule["flush_watermark"])
    pipeline._max_seen = float(capsule["max_seen"])
    counters = capsule["counters"]
    pipeline._fed = int(counters["fed"])
    pipeline._closed = int(counters["closed"])
    pipeline._emitted = int(counters["emitted"])
    pipeline._late_dropped = int(counters["late_dropped"])
    pipeline._duplicates_dropped = int(counters["duplicates_dropped"])
    pipeline._evictions = int(counters["evictions"])
    pipeline._evicted_requests = int(counters["evicted_requests"])
    pipeline._evicted_via_finish = int(counters["evicted_via_finish"])
    pipeline._shed = int(counters["shed"])
    pipeline._spill_writes = int(counters["spill_writes"])
    pipeline._spill_restores = int(counters["spill_restores"])
    pipeline._spill_lost = int(counters["spill_lost"])
    pipeline._quarantine_bytes = {
        user: int(value)
        for user, value in counters["quarantine_bytes"].items()}
    pipeline._quarantine_flushes = int(counters["quarantine_flushes"])
    pipeline._cap_strikes_total = int(counters["cap_strikes_total"])
    pipeline._tracked = int(counters["tracked"])
    pipeline._peak_tracked = int(counters["peak_tracked"])
    pipeline._feed_ordinal = int(counters["feed_ordinal"])


# ---------------------------------------------------------------------------
# worker process


def _session_document(session: Session) -> dict[str, Any]:
    requests = session.requests
    return {"user": requests[0].user_id,
            "requests": [[r.timestamp, r.page, r.synthetic]
                         for r in requests]}


def _session_from_document(document: dict[str, Any]) -> Session:
    user = document["user"]
    return Session.from_trusted_parts(tuple(
        Request(float(t), user, page, bool(synthetic))
        for t, page, synthetic in document["requests"]))


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _worker_main(shard: int, incarnation: int, down_fd: int, up_fd: int,
                 close_fds: tuple[int, ...], ack_interval: int,
                 builder: Any) -> None:
    """Body of one shard worker process (forked; never returns)."""
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    reader = wire.FrameReader()
    decoder = wire.SymbolDecoder()
    registry = Registry()
    pipeline = builder(registry)
    ordinal = 0
    wm_index = 0

    def progress_document() -> dict[str, Any]:
        return {"ordinal": ordinal, "wm_index": wm_index,
                "watermark": pipeline._max_seen}

    def maybe_ack(out: bytearray) -> None:
        # spilled cold buffers live in this process's temp dir and die
        # with it — a capsule taken now could not be replayed, so keep
        # the previous one and let the log carry the extra events.
        if getattr(pipeline, "_spilled", None):
            return
        document = progress_document()
        document["capsule"] = capsule_from(pipeline)
        out += wire.json_frame(wire.ACK, document)

    try:
        while True:
            data = os.read(down_fd, _READ_CHUNK)
            if not data:
                os._exit(0)
            for kind, payload in reader.feed(data):
                out = bytearray()
                if kind == wire.SYM:
                    decoder.add_symbol(payload)
                    continue
                if kind == wire.CAP:
                    capsule = wire.decode_json(payload)
                    restore_capsule(pipeline, capsule)
                    ordinal = int(capsule["ordinal"])
                    wm_index = int(capsule["wm_index"])
                    continue
                if kind == wire.EVT:
                    ts, user, page, referrer, synthetic = \
                        decoder.decode_event(payload)
                    ordinal += 1
                    action = inject_shard_fault(shard, ordinal, incarnation)
                    if action == "drop-pipe":
                        os.close(down_fd)
                        os.close(up_fd)
                        os._exit(0)
                    emitted = pipeline.feed(
                        Request(ts, user, page, synthetic, referrer))
                    for session in emitted:
                        out += wire.json_frame(wire.OUT,
                                               _session_document(session))
                    if ordinal % ack_interval == 0:
                        maybe_ack(out)
                elif kind == wire.WM:
                    watermark = wire.decode_watermark(payload)
                    wm_index += 1
                    for session in pipeline.flush(watermark):
                        out += wire.json_frame(wire.OUT,
                                               _session_document(session))
                    maybe_ack(out)
                elif kind == wire.EOF:
                    for session in pipeline.flush():
                        out += wire.json_frame(wire.OUT,
                                               _session_document(session))
                    document = progress_document()
                    document["watermark"] = math.inf
                    document["stats"] = dataclasses.asdict(pipeline.stats())
                    document["snapshot"] = registry.snapshot()
                    out += wire.json_frame(wire.DONE, document)
                    _write_all(up_fd, out)
                    os._exit(0)
                if out:
                    _write_all(up_fd, out)
    except BaseException:  # noqa: BLE001 - must report, then die
        try:
            _write_all(up_fd, wire.frame(
                wire.ERR, traceback.format_exc().encode("utf-8")))
        except OSError:
            pass
        os._exit(1)


# ---------------------------------------------------------------------------
# coordinator


@dataclass(frozen=True, slots=True)
class ShardedStreamingStats:
    """Run-level accounting of the sharded runtime.

    ``reconciles`` is the exactness contract: every event the
    coordinator accepted has exactly one final disposition — delivered
    undisturbed (``routed``), re-delivered after failover
    (``replayed``), or visibly abandoned with a shed shard (``shed``).
    """

    shards: int
    fed: int
    routed: int
    replayed: int
    shed: int
    sealed_sessions: int
    failovers: int
    respawns: int
    wedged: int
    worker_deaths: int
    shed_shards: int
    replay_integrity_failures: int
    low_watermark: float

    def reconciles(self) -> bool:
        """True when fed == routed + replayed + shed."""
        return self.fed == self.routed + self.replayed + self.shed


@dataclass(frozen=True, slots=True)
class ShardedRunResult:
    """Outcome of :meth:`ShardedStreamingRuntime.run`.

    Attributes:
        sessions: the sealed output, in canonical-key order (so two
            identical runs produce identical files, whatever the pipe
            arrival interleaving was).
        stats: the reconciling run ledger.
        shard_stats: each worker's final
            :class:`~repro.streaming.governor.GovernedStreamingStats`
            as a plain dict (empty for shed shards).
        recovery_seconds: wall-clock failover-to-first-ACK time of every
            recovery, in occurrence order.
    """

    sessions: SessionSet
    stats: ShardedStreamingStats
    shard_stats: tuple[dict[str, Any], ...]
    recovery_seconds: tuple[float, ...] = ()


class _ShardHandle:
    """Coordinator-side mutable state of one shard."""

    __slots__ = ("shard", "proc", "down_fd", "up_fd", "encoder", "reader",
                 "outbound", "pending", "watermark", "last_inbound",
                 "last_sent", "incarnation", "state", "eof_sent",
                 "events_sent", "wm_sent", "done", "failed_at")

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.proc: Any = None
        self.down_fd = -1
        self.up_fd = -1
        self.encoder = wire.SymbolEncoder()
        self.reader = wire.FrameReader()
        self.outbound = bytearray()
        self.pending: list[Session] = []
        self.watermark = -math.inf
        self.last_inbound = 0.0
        self.last_sent = 0.0
        self.incarnation = 0
        self.state = "new"          # new | running | done | shed
        self.eof_sent = False
        self.events_sent = 0
        self.wm_sent = 0
        self.done: dict[str, Any] | None = None
        self.failed_at: float | None = None

    @property
    def outstanding(self) -> bool:
        """Does the worker owe us progress (events, EOF, or bytes)?"""
        return bool(self.outbound) or self.eof_sent

    def quiet_for(self, now: float) -> float:
        """Seconds without *either* direction making progress.

        The lease clock starts from whichever happened last — a frame
        arriving or bytes leaving — so a worker that sat idle (nothing
        owed) is not declared wedged the instant new work appears, and a
        wedged worker whose 64 KiB of pipe slack keeps absorbing writes
        is caught once the pipe jams.
        """
        return now - max(self.last_inbound, self.last_sent)


class ShardedStreamingRuntime:
    """Coordinator of the crash-safe sharded streaming pipeline.

    Construct with the same knobs as
    :func:`~repro.streaming.pipeline.streaming_smart_sra` plus a
    :class:`ShardedConfig`, then :meth:`run` an iterable of requests.
    Requires the ``fork`` start method (workers inherit the topology and
    finisher; nothing heavyweight crosses the pipe).
    """

    def __init__(self, topology: Any = None, config: Any = None, *,
                 sharded: ShardedConfig | None = None,
                 governor: GovernorConfig | None = None,
                 heuristic: str = "smart-sra",
                 late_policy: str = "raise", dedup: bool = False,
                 reorder_window: float = 0.0,
                 registry: Registry | None = None) -> None:
        if heuristic not in ("smart-sra", "phase1"):
            raise ConfigurationError(
                f"unknown heuristic {heuristic!r} "
                f"(known: smart-sra, phase1)")
        if heuristic == "smart-sra" and topology is None:
            raise ConfigurationError("smart-sra sharding needs a topology")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "the sharded runtime requires the 'fork' start method")
        if reorder_window < 0:
            raise ConfigurationError(
                f"reorder_window must be >= 0, got {reorder_window}")
        self.sharded = sharded if sharded is not None else ShardedConfig()
        # workers always run governed; the default budget is generous so
        # global eviction (shard-order dependent) never fires unless the
        # caller opts into a real budget.
        self.governor = (governor if governor is not None
                         else GovernorConfig(memory_budget=1 << 30))
        self._topology = topology
        self._config = config
        self._heuristic = heuristic
        self._late_policy = late_policy
        self._dedup = dedup
        self._reorder_window = float(reorder_window)
        self._registry = registry if registry is not None else get_registry()
        self._ctx = multiprocessing.get_context("fork")
        self._handles: list[_ShardHandle] = []
        self._logs: list[ReplayLog] = []
        self._ledger = ShardLedger(self.sharded.shards)
        self._durable: list[tuple[float, int, Session]] = []
        self._durable_seq = 0
        self._sealed: list[Session] = []
        self._head = -math.inf
        self._failovers = 0
        self._respawns = 0
        self._wedged = 0
        self._worker_deaths = 0
        self._recoveries: list[float] = []

    # -- worker construction ------------------------------------------------

    def _build_pipeline(self, registry: Registry) -> Any:
        options = dict(late_policy=self._late_policy, reorder_window=0.0,
                       dedup=self._dedup, registry=registry)
        if self._heuristic == "phase1":
            return streaming_phase1(self._config, governor=self.governor,
                                    **options)
        return streaming_smart_sra(self._topology, self._config,
                                   governor=self.governor, **options)

    def _spawn(self, handle: _ShardHandle,
               capsule: dict[str, Any] | None,
               entries: list[list[Any]]) -> None:
        down_read, down_write = os.pipe()
        up_read, up_write = os.pipe()
        os.set_blocking(down_write, False)
        os.set_blocking(up_read, False)
        # the child must not inherit the parent ends — its own or any
        # sibling's — or a sibling's death would never read as pipe EOF.
        close_fds = [down_write, up_read]
        for other in self._handles:
            if other is not handle and other.down_fd >= 0:
                close_fds.extend((other.down_fd, other.up_fd))
        proc = self._ctx.Process(
            target=_worker_main,
            args=(handle.shard, handle.incarnation, down_read, up_write,
                  tuple(close_fds), self.sharded.ack_interval,
                  self._build_pipeline),
            daemon=True,
            name=f"repro-shard-{handle.shard}.{handle.incarnation}")
        proc.start()
        os.close(down_read)
        os.close(up_write)
        handle.proc = proc
        handle.down_fd = down_write
        handle.up_fd = up_read
        handle.encoder = wire.SymbolEncoder()
        handle.reader = wire.FrameReader()
        handle.outbound = bytearray()
        handle.state = "running"
        handle.last_inbound = time.monotonic()
        handle.last_sent = handle.last_inbound
        self._gauge("sharded.shard.alive", handle.shard).set(1)
        if capsule is not None:
            handle.outbound += wire.json_frame(wire.CAP, capsule)
        for entry in entries:
            if entry[0] == "evt":
                _, _, ts, user, page, referrer, synthetic = entry
                handle.encoder.encode_event(handle.outbound, float(ts),
                                            user, page, referrer,
                                            bool(synthetic))
            else:
                handle.outbound += wire.watermark_frame(float(entry[2]))
        if handle.eof_sent:
            handle.outbound += wire.frame(wire.EOF)

    # -- obs helpers --------------------------------------------------------

    def _gauge(self, name: str, shard: int | None = None) -> Any:
        if shard is None:
            return self._registry.gauge(name)
        return self._registry.gauge(name, shard=str(shard))

    def _count(self, name: str, value: int = 1) -> None:
        if value:
            self._registry.counter(name).inc(value)

    def _update_lag(self, handle: _ShardHandle) -> None:
        if math.isfinite(self._head):
            floor = handle.watermark if math.isfinite(handle.watermark) \
                else self._head
            lag = max(0.0, self._head - floor)
            self._gauge("sharded.shard.watermark_lag", handle.shard).set(lag)

    # -- the run loop -------------------------------------------------------

    def run(self, requests: Iterable[Request], *,
            flush_interval: float | None = None) -> ShardedRunResult:
        """Stream ``requests`` through the shards; block until sealed.

        ``flush_interval`` broadcasts a watermark to every shard each
        time the released head advances that many event-time seconds,
        driving incremental sealing (EOF always seals everything).
        """
        if flush_interval is not None and flush_interval <= 0:
            raise ConfigurationError(
                f"flush_interval must be > 0, got {flush_interval}")
        cfg = self.sharded
        self._handles = [_ShardHandle(shard) for shard in range(cfg.shards)]
        self._logs = [ReplayLog(shard, cfg.replay_capacity, cfg.replay_dir)
                      for shard in range(cfg.shards)]
        self._gauge("sharded.shards").set(cfg.shards)
        self._gauge("sharded.config.max_watermark_lag").set(
            cfg.max_watermark_lag)
        try:
            for handle in self._handles:
                self._spawn(handle, None, [])
            self._drive(requests, flush_interval)
            while any(h.state == "running" for h in self._handles):
                self._pump(_PUMP_TIMEOUT)
            return self._finalize()
        finally:
            self._cleanup()

    def _drive(self, requests: Iterable[Request],
               flush_interval: float | None) -> None:
        window = self._reorder_window
        last_flush = -math.inf
        if window > 0:
            heap: list[tuple[float, int, Request]] = []
            seq = 0
            max_seen = -math.inf
            for request in requests:
                heapq.heappush(heap, (request.timestamp, seq, request))
                seq += 1
                if request.timestamp > max_seen:
                    max_seen = request.timestamp
                bound = max_seen - window
                while heap and heap[0][0] < bound:
                    released = heapq.heappop(heap)[2]
                    self._route(released)
                    last_flush = self._maybe_flush(released.timestamp,
                                                   last_flush,
                                                   flush_interval, window)
            while heap:
                self._route(heapq.heappop(heap)[2])
        else:
            for request in requests:
                self._route(request)
                last_flush = self._maybe_flush(request.timestamp, last_flush,
                                               flush_interval, 0.0)
        for handle in self._handles:
            if handle.state in ("running",):
                handle.outbound += wire.frame(wire.EOF)
            handle.eof_sent = True

    def _maybe_flush(self, released_ts: float, last_flush: float,
                     flush_interval: float | None, window: float) -> float:
        if flush_interval is None:
            return last_flush
        if released_ts - last_flush < flush_interval:
            return last_flush
        # the broadcast promise must not outrun events still held in the
        # coordinator's reorder buffer.
        watermark = released_ts - window
        for handle in self._handles:
            if handle.state == "running":
                handle.wm_sent += 1
                self._logs[handle.shard].append_watermark(
                    handle.wm_sent, watermark)
                handle.outbound += wire.watermark_frame(watermark)
        return released_ts

    def _route(self, request: Request) -> None:
        shard = shard_for(request.user_id, self._ledger.shards)
        handle = self._handles[shard]
        log = self._logs[shard]
        # a full replay log is backpressure: wait for an ACK (or for the
        # lease supervisor to declare the shard wedged) before routing
        # more events at it.
        while (handle.state == "running"
               and log.event_count >= log.capacity):
            self._pump(_PUMP_TIMEOUT)
        if not self._ledger.route(shard):
            self._count("sharded.events.shed")
            return
        handle.events_sent += 1
        log.append_event(handle.events_sent, request.timestamp,
                         request.user_id, request.page, request.referrer,
                         request.synthetic)
        handle.encoder.encode_event(
            handle.outbound, request.timestamp, request.user_id,
            request.page, request.referrer, request.synthetic)
        self._count("sharded.events.routed")
        if request.timestamp > self._head:
            self._head = request.timestamp
        self._gauge("sharded.replay.events", shard).set(log.event_count)
        self._update_lag(handle)
        self._pump(0.0)

    # -- the select loop ----------------------------------------------------

    def _pump(self, timeout: float) -> None:
        now = time.monotonic()
        for handle in self._handles:
            if (handle.state == "running" and handle.outstanding
                    and handle.quiet_for(now) > self.sharded.lease):
                self._wedged += 1
                self._count("sharded.wedged")
                self._fail(handle, "lease expired (wedged worker)")
        running = [h for h in self._handles if h.state == "running"]
        if not running:
            return
        readers = [h.up_fd for h in running]
        writers = [h.down_fd for h in running if h.outbound]
        try:
            readable, writable, _ = select.select(readers, writers, [],
                                                  timeout)
        except OSError:
            return
        by_up = {h.up_fd: h for h in running}
        by_down = {h.down_fd: h for h in running}
        for fd in writable:
            handle = by_down[fd]
            # a _fail earlier in this very loop may have respawned the
            # handle onto fresh descriptors; acting on the stale fd would
            # hit a closed (or worse, reused) descriptor.
            if (handle.state != "running" or handle.down_fd != fd
                    or not handle.outbound):
                continue
            try:
                written = os.write(fd, handle.outbound[:_READ_CHUNK])
                del handle.outbound[:written]
                if written:
                    handle.last_sent = time.monotonic()
            except BlockingIOError:
                continue
            except OSError:
                self._worker_deaths += 1
                self._count("sharded.worker_deaths")
                self._fail(handle, "pipe write failed (dead worker)")
        for fd in readable:
            handle = by_up[fd]
            if handle.state != "running" or handle.up_fd != fd:
                continue
            try:
                data = os.read(fd, _READ_CHUNK)
            except BlockingIOError:
                continue
            except OSError:
                data = b""
            if not data:
                self._worker_deaths += 1
                self._count("sharded.worker_deaths")
                self._fail(handle, "pipe EOF (dead worker)")
                continue
            handle.last_inbound = time.monotonic()
            try:
                for kind, payload in handle.reader.feed(data):
                    self._on_frame(handle, kind, payload)
                    if handle.state != "running":
                        break
            except WireProtocolError as error:
                self._fail(handle, f"protocol error: {error}")

    def _on_frame(self, handle: _ShardHandle, kind: int,
                  payload: bytes) -> None:
        if kind == wire.OUT:
            handle.pending.append(
                _session_from_document(wire.decode_json(payload)))
            return
        if kind == wire.ACK:
            document = wire.decode_json(payload)
            self._absorb_progress(handle, document,
                                  capsule=document.get("capsule"))
            return
        if kind == wire.DONE:
            document = wire.decode_json(payload)
            self._absorb_progress(handle, document, capsule=None)
            handle.done = document
            handle.state = "done"
            handle.watermark = math.inf
            self._registry.merge_snapshot(document.get("snapshot", {}))
            self._close_handle(handle)
            if handle.proc is not None:
                handle.proc.join(timeout=5.0)
            self._advance_seal()
            return
        if kind == wire.ERR:
            message = payload.decode("utf-8", "replace").strip()
            raise ExecutionError(
                f"shard {handle.shard} worker failed deterministically "
                f"(replay would repeat it):\n{message}")
        raise WireProtocolError(
            f"unexpected frame kind {kind} from shard {handle.shard}")

    def _absorb_progress(self, handle: _ShardHandle,
                         document: dict[str, Any],
                         capsule: dict[str, Any] | None) -> None:
        if capsule is not None:
            capsule = dict(capsule)
            capsule["ordinal"] = document["ordinal"]
            capsule["wm_index"] = document["wm_index"]
        log = self._logs[handle.shard]
        trimmed = log.ack(int(document["ordinal"]),
                          int(document["wm_index"]), capsule)
        self._ledger.ack(handle.shard, trimmed)
        watermark = float(document["watermark"])
        if watermark > handle.watermark:
            handle.watermark = watermark
        if handle.failed_at is not None:
            self._recoveries.append(time.monotonic() - handle.failed_at)
            handle.failed_at = None
        # FIFO pipes make the ACK a durability proof: every session
        # emitted by the acked events has already been received.
        if handle.pending:
            for session in handle.pending:
                self._durable_seq += 1
                heapq.heappush(self._durable,
                               (session.end_time, self._durable_seq,
                                session))
            handle.pending.clear()
        self._gauge("sharded.replay.events", handle.shard).set(
            log.event_count)
        if math.isfinite(handle.watermark):
            self._gauge("sharded.shard.watermark", handle.shard).set(
                handle.watermark)
        self._update_lag(handle)
        self._advance_seal()

    # -- failure handling ---------------------------------------------------

    def _close_handle(self, handle: _ShardHandle) -> None:
        for fd in (handle.down_fd, handle.up_fd):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
        handle.down_fd = -1
        handle.up_fd = -1

    def _terminate(self, handle: _ShardHandle) -> None:
        proc = handle.proc
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        self._close_handle(handle)

    def _fail(self, handle: _ShardHandle, reason: str) -> None:
        """A shard worker is gone or useless: recover per policy."""
        policy = self.sharded.on_shard_failure
        self._gauge("sharded.shard.alive", handle.shard).set(0)
        self._terminate(handle)
        # sessions emitted after the last ACK are not durable — the
        # respawned worker will re-derive exactly these.
        handle.pending.clear()
        if policy == "raise":
            handle.state = "shed"
            raise ExecutionError(
                f"shard {handle.shard} failed ({reason}) under "
                f"on_shard_failure='raise'")
        exhausted = handle.incarnation >= self.sharded.retry.max_retries + 1
        if policy == "shed-shard" or exhausted:
            dropped = self._ledger.shed_shard(handle.shard)
            handle.state = "shed"
            self._count("sharded.events.shed", dropped)
            self._count("sharded.shed_shards")
            self._logs[handle.shard].clear()
            self._advance_seal()
            return
        self._failovers += 1
        self._count("sharded.failovers")
        moved = self._ledger.fail(handle.shard)
        self._count("sharded.events.replayed", moved)
        time.sleep(self.sharded.retry.backoff_for(handle.shard,
                                                  handle.incarnation))
        handle.incarnation += 1
        handle.failed_at = time.monotonic()
        self._respawns += 1
        self._count("sharded.respawns")
        capsule, entries = self._logs[handle.shard].recover()
        self._spawn(handle, capsule, entries)

    # -- sealing and finalization ------------------------------------------

    def _advance_seal(self) -> None:
        live = [h.watermark for h in self._handles if h.state == "running"]
        low = min(live, default=math.inf)
        if math.isfinite(low):
            self._gauge("sharded.watermark.low").set(low)
        sealed = 0
        while self._durable and self._durable[0][0] <= low:
            self._sealed.append(heapq.heappop(self._durable)[2])
            sealed += 1
        self._count("sharded.sessions.sealed", sealed)

    def _finalize(self) -> ShardedRunResult:
        self._advance_seal()
        if self._durable:
            raise ExecutionError(
                f"{len(self._durable)} durable sessions left unsealed "
                f"after EOF — watermark logic broken")
        leftovers = [h for h in self._handles
                     if h.state == "running" or
                     (h.state == "done" and h.pending)]
        if leftovers:
            raise ExecutionError(
                f"shards {[h.shard for h in leftovers]} never completed")
        integrity = sum(log.integrity_failures for log in self._logs)
        self._count("sharded.replay.integrity_failures", integrity)
        stats = ShardedStreamingStats(
            shards=self.sharded.shards,
            fed=self._ledger.fed,
            routed=self._ledger.routed,
            replayed=self._ledger.replayed,
            shed=self._ledger.shed,
            sealed_sessions=len(self._sealed),
            failovers=self._failovers,
            respawns=self._respawns,
            wedged=self._wedged,
            worker_deaths=self._worker_deaths,
            shed_shards=sum(1 for h in self._handles if h.state == "shed"),
            replay_integrity_failures=integrity,
            low_watermark=min((h.watermark for h in self._handles
                               if h.state != "shed"), default=math.inf),
        )
        ordered = sorted(self._sealed, key=lambda s: s.canonical_key())
        shard_stats = tuple(
            (h.done or {}).get("stats", {}) for h in self._handles)
        return ShardedRunResult(sessions=SessionSet(ordered), stats=stats,
                                shard_stats=shard_stats,
                                recovery_seconds=tuple(self._recoveries))

    def _cleanup(self) -> None:
        for handle in self._handles:
            self._terminate(handle)


# ---------------------------------------------------------------------------
# configuration audit (repro doctor)


@dataclass(frozen=True, slots=True)
class ShardedAudit:
    """Outcome of auditing a sharded configuration (``repro doctor``).

    Attributes:
        sharded: the audited configuration.
        checks: ``(level, message)`` conclusions; levels are ``"ok"``,
            ``"warn"`` and ``"FAIL"``.
    """

    sharded: ShardedConfig
    checks: list[tuple[str, str]]

    @property
    def ok(self) -> bool:
        """True when no check failed (warnings are advisory)."""
        return all(level != "FAIL" for level, _ in self.checks)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (``repro doctor --json``)."""
        return {
            "shards": self.sharded.shards,
            "on_shard_failure": self.sharded.on_shard_failure,
            "ack_interval": self.sharded.ack_interval,
            "replay_capacity": self.sharded.replay_capacity,
            "checks": [{"level": level, "message": message}
                       for level, message in self.checks],
            "ok": self.ok,
        }

    def render(self) -> str:
        """Human-readable audit, one conclusion per line."""
        lines = [
            f"sharded configuration: shards={self.sharded.shards}"
            f" on-shard-failure={self.sharded.on_shard_failure}"
            f" ack-interval={self.sharded.ack_interval}"
            f" replay-capacity={self.sharded.replay_capacity}"]
        for level, message in self.checks:
            lines.append(f"  {level:<4}  {message}")
        lines.append(f"  verdict: {'ok' if self.ok else 'DEGRADED'}")
        return "\n".join(lines)


def audit_sharded_config(sharded: ShardedConfig,
                         governor: GovernorConfig | None = None, *,
                         typical_cost: int = 96) -> ShardedAudit:
    """Sanity-check a sharded deployment before running it.

    Mirrors :func:`~repro.streaming.governor.audit_overload_config`:
    every conclusion is one line with a remediation, and only outright
    contradictions FAIL.
    """
    checks: list[tuple[str, str]] = []
    cores = os.cpu_count() or 1
    if sharded.shards > cores:
        checks.append(("warn",
                       f"{sharded.shards} shards on {cores} CPU core(s) — "
                       f"workers will time-slice, not parallelize; lower "
                       f"--shards to <= {cores} or run on a bigger host"))
    else:
        checks.append(("ok",
                       f"{sharded.shards} shard(s) fit {cores} CPU core(s)"))
    if governor is not None:
        log_bytes = sharded.replay_capacity * typical_cost
        if log_bytes < governor.memory_budget:
            checks.append((
                "warn",
                f"replay capacity {sharded.replay_capacity} events "
                f"(~{log_bytes}B at {typical_cost}B/event) is smaller than "
                f"the governor budget ({governor.memory_budget}B) — a "
                f"worker can buffer more state than its log can replay; "
                f"raise --replay-capacity to >= "
                f"{governor.memory_budget // typical_cost} events"))
        else:
            checks.append(("ok",
                           f"replay capacity covers the governor budget "
                           f"({log_bytes}B >= {governor.memory_budget}B)"))
        if (sharded.on_shard_failure == "shed-shard"
                and governor.overload_policy == "block"):
            checks.append((
                "warn",
                "on-shard-failure=shed-shard with governor policy=block is "
                "deadlock-prone: a blocked worker stops acking, the lease "
                "sheds the shard, and blocked events are silently gone — "
                "use policy=evict with shed-shard, or keep failover"))
        else:
            checks.append(("ok",
                           f"failure policy {sharded.on_shard_failure!r} is "
                           f"compatible with governor policy "
                           f"{governor.overload_policy!r}"))
    if sharded.lease <= 2 * _PUMP_TIMEOUT:
        checks.append(("FAIL",
                       f"lease {sharded.lease}s is shorter than the "
                       f"coordinator can even poll ({_PUMP_TIMEOUT}s loop) — "
                       f"every shard would read as wedged; raise --shard-"
                       f"lease"))
    return ShardedAudit(sharded, checks)
