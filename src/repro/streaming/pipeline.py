"""The incremental session-reconstruction driver.

:class:`StreamingReconstructor` exploits the structure of Smart-SRA's
Phase 1: a candidate session is *closed* — no future request can legally
join it — as soon as either

* a newer request from the same user arrives more than ρ after the
  candidate's last request (page-stay rule), or
* the event-time watermark passes ρ beyond the candidate's last request
  (no same-user request can arrive earlier than the watermark).

When a candidate closes, a pluggable ``finisher`` turns it into sessions:
Smart-SRA's Phase 2 (:func:`streaming_smart_sra`) or the identity
(:func:`streaming_phase1`).  Because Phase 2 never looks across candidate
boundaries, the streamed output equals the batch output exactly.

Example::

    pipeline = streaming_smart_sra(topology)
    for request in tail_the_log():
        for session in pipeline.feed(request):
            handle(session)          # emitted as soon as provably complete
    for session in pipeline.flush():
        handle(session)              # end of stream
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.core.config import SmartSRAConfig
from repro.core.phase2 import maximal_sessions_fast
from repro.exceptions import ReconstructionError
from repro.sessions.model import Request, Session
from repro.topology.graph import WebGraph

__all__ = [
    "StreamingReconstructor",
    "streaming_smart_sra",
    "streaming_phase1",
    "StreamingStats",
]

#: turns one closed Phase-1 candidate into finished sessions.
Finisher = Callable[[Sequence[Request]], list[Session]]


@dataclass(frozen=True, slots=True)
class StreamingStats:
    """Point-in-time pipeline statistics.

    Attributes:
        active_users: users with a buffered open candidate.
        buffered_requests: total requests held in open candidates.
        emitted_sessions: sessions emitted since construction.
        fed_requests: requests accepted since construction.
    """

    active_users: int
    buffered_requests: int
    emitted_sessions: int
    fed_requests: int


class StreamingReconstructor:
    """Incremental Phase-1 candidate builder with pluggable finishing.

    Args:
        finisher: maps a closed candidate (non-empty, chronological) to
            finished sessions.
        config: the δ/ρ thresholds (paper defaults when omitted).

    Per-user event-time must be non-decreasing; feeding an older request
    for a user whose buffer has advanced raises
    :class:`~repro.exceptions.ReconstructionError` (callers that need
    out-of-order tolerance should sort within a bounded reorder window
    before feeding).
    """

    def __init__(self, finisher: Finisher,
                 config: SmartSRAConfig | None = None) -> None:
        self._finisher = finisher
        self.config = config if config is not None else SmartSRAConfig()
        self._buffers: dict[str, list[Request]] = {}
        self._emitted = 0
        self._fed = 0

    # -- feeding -----------------------------------------------------------

    def feed(self, request: Request) -> list[Session]:
        """Accept one request; return any sessions it proved complete.

        Raises:
            ReconstructionError: for a negative timestamp or an
                out-of-order request (older than the user's buffered tail).
        """
        if request.timestamp < 0:
            raise ReconstructionError(
                f"negative timestamp {request.timestamp}")
        buffer = self._buffers.get(request.user_id)
        emitted: list[Session] = []
        if buffer is not None:
            last = buffer[-1]
            if request.timestamp < last.timestamp:
                raise ReconstructionError(
                    f"out-of-order request for user {request.user_id!r}: "
                    f"{request.timestamp} after {last.timestamp}")
            gap = request.timestamp - last.timestamp
            span = request.timestamp - buffer[0].timestamp
            if gap > self.config.max_gap or span > self.config.max_duration:
                emitted = self._finish(request.user_id)
        self._buffers.setdefault(request.user_id, []).append(request)
        self._fed += 1
        return emitted

    def feed_many(self, requests: Iterable[Request]) -> list[Session]:
        """Feed a batch of requests; returns all sessions they completed."""
        emitted: list[Session] = []
        for request in requests:
            emitted.extend(self.feed(request))
        return emitted

    # -- closing -----------------------------------------------------------

    def flush(self, watermark: float | None = None) -> list[Session]:
        """Emit sessions that can no longer grow.

        Args:
            watermark: event-time lower bound for all *future* requests.
                Candidates whose last request lies more than ρ before it
                are provably closed and are emitted.  ``None`` closes
                everything (end of stream).
        """
        emitted: list[Session] = []
        for user_id in list(self._buffers):
            buffer = self._buffers[user_id]
            if (watermark is None
                    or watermark - buffer[-1].timestamp > self.config.max_gap):
                emitted.extend(self._finish(user_id))
        return emitted

    def _finish(self, user_id: str) -> list[Session]:
        candidate = self._buffers.pop(user_id, None)
        if not candidate:
            return []
        sessions = self._finisher(candidate)
        self._emitted += len(sessions)
        return sessions

    # -- introspection -------------------------------------------------------

    def stats(self) -> StreamingStats:
        """Current buffering/emission counters."""
        return StreamingStats(
            active_users=len(self._buffers),
            buffered_requests=sum(len(buffer)
                                  for buffer in self._buffers.values()),
            emitted_sessions=self._emitted,
            fed_requests=self._fed,
        )


def streaming_smart_sra(topology: WebGraph,
                        config: SmartSRAConfig | None = None
                        ) -> StreamingReconstructor:
    """A streaming pipeline emitting full Smart-SRA (heur4) sessions."""
    resolved = config if config is not None else SmartSRAConfig()
    return StreamingReconstructor(
        lambda candidate: maximal_sessions_fast(candidate, topology,
                                                resolved),
        resolved)


def streaming_phase1(config: SmartSRAConfig | None = None
                     ) -> StreamingReconstructor:
    """A streaming pipeline emitting raw Phase-1 candidates as sessions."""
    return StreamingReconstructor(
        lambda candidate: [Session(candidate)], config)
