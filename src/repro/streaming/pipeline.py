"""The incremental session-reconstruction driver.

:class:`StreamingReconstructor` exploits the structure of Smart-SRA's
Phase 1: a candidate session is *closed* — no future request can legally
join it — as soon as either

* a newer request from the same user arrives more than ρ after the
  candidate's last request (page-stay rule), or
* the event-time watermark passes ρ beyond the candidate's last request
  (no same-user request can arrive earlier than the watermark).

When a candidate closes, a pluggable ``finisher`` turns it into sessions:
Smart-SRA's Phase 2 (:func:`streaming_smart_sra`) or the identity
(:func:`streaming_phase1`).  Because Phase 2 never looks across candidate
boundaries, the streamed output equals the batch output exactly.

Degraded input is handled explicitly rather than assumed away:

* a **bounded reorder buffer** (``reorder_window``) absorbs out-of-order
  arrival up to a fixed event-time bound, releasing requests in a
  deterministic total order — so the streamed output is byte-identical
  however the input interleaves within the bound;
* a **late policy** decides what happens to requests that predate the
  watermark anyway: ``"raise"`` (a typed
  :class:`~repro.exceptions.LateEventError`) or ``"drop"`` (counted in
  :attr:`StreamingStats.late_dropped`, never silently lost);
* optional **deduplication** discards the adjacent duplicates that double
  logging produces, counted in :attr:`StreamingStats.duplicates_dropped`.

Example::

    pipeline = streaming_smart_sra(topology, late_policy="drop",
                                   reorder_window=30.0, dedup=True)
    for request in tail_the_log():
        for session in pipeline.feed(request):
            handle(session)          # emitted as soon as provably complete
    for session in pipeline.flush():
        handle(session)              # end of stream
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.core.config import SmartSRAConfig
from repro.core.phase2 import maximal_sessions_fast
from repro.exceptions import (
    ConfigurationError,
    LateEventError,
    ReconstructionError,
)
from repro.obs import Registry, get_registry
from repro.sessions.model import Request, Session
from repro.topology.graph import WebGraph

__all__ = [
    "StreamingReconstructor",
    "streaming_smart_sra",
    "streaming_phase1",
    "streaming_amp",
    "StreamingStats",
]

#: turns one closed Phase-1 candidate into finished sessions.
Finisher = Callable[[Sequence[Request]], list[Session]]


@dataclass(frozen=True, slots=True)
class StreamingStats:
    """Point-in-time pipeline statistics.

    Attributes:
        active_users: users with a buffered open candidate.
        buffered_requests: total requests held in open candidates.
        emitted_sessions: sessions emitted since construction.
        fed_requests: requests accepted since construction.
        late_dropped: requests discarded by ``late_policy="drop"``.
        duplicates_dropped: adjacent duplicates discarded by ``dedup``.
        reorder_buffered: requests currently held in the reorder buffer.
        closed_requests: requests already handed to the finisher via a
            closed candidate.
    """

    active_users: int
    buffered_requests: int
    emitted_sessions: int
    fed_requests: int
    late_dropped: int = 0
    duplicates_dropped: int = 0
    reorder_buffered: int = 0
    closed_requests: int = 0

    def reconciles(self) -> bool:
        """Whether the counters balance: nothing was silently lost.

        Every request ever accepted is either still buffered in an open
        candidate or was closed out through the finisher, so
        ``fed_requests == buffered_requests + closed_requests`` must hold
        at every point in the stream's life (late/duplicate drops are
        counted *before* a request is fed, and the reorder buffer holds
        requests that are not yet fed).
        """
        return self.fed_requests == self.buffered_requests + self.closed_requests


class StreamingReconstructor:
    """Incremental Phase-1 candidate builder with pluggable finishing.

    Args:
        finisher: maps a closed candidate (non-empty, chronological) to
            finished sessions.
        config: the δ/ρ thresholds (paper defaults when omitted).
        late_policy: ``"raise"`` (default) raises
            :class:`~repro.exceptions.LateEventError` for a request that
            predates the watermark or its user's buffered tail;
            ``"drop"`` counts and discards it, keeping output
            deterministic.
        reorder_window: event-time bound (seconds) for out-of-order
            tolerance.  Requests are held in a bounded buffer and released
            in ``(timestamp, user_id, page)`` order once the maximum
            timestamp seen has advanced past them by the window; ``0``
            (default) disables buffering and preserves the strict
            contract.
        dedup: drop a request identical to its user's buffered tail
            (same timestamp and page) — the adjacent-duplicate artifact of
            double logging.
        registry: metrics registry updated as the stream flows (the
            ``stream.*`` catalog: fed/emitted/late/duplicate counters plus
            reorder-depth, buffered-requests and watermark-lag gauges);
            defaults to the ambient :func:`repro.obs.get_registry`, a
            no-op unless collection was enabled.

    Per-user event-time must be non-decreasing *after* reorder buffering;
    an equal timestamp is legal (ties keep arrival order, or release
    order under a reorder window).  A request older than the user's
    buffered tail, or older than a watermark already flushed, is *late*
    and handled by ``late_policy``.

    Raises:
        ConfigurationError: for an unknown ``late_policy`` or a negative
            ``reorder_window``.
    """

    def __init__(self, finisher: Finisher,
                 config: SmartSRAConfig | None = None, *,
                 late_policy: str = "raise",
                 reorder_window: float = 0.0,
                 dedup: bool = False,
                 registry: Registry | None = None) -> None:
        if late_policy not in ("raise", "drop"):
            raise ConfigurationError(
                f"late_policy must be 'raise' or 'drop', "
                f"got {late_policy!r}")
        if reorder_window < 0:
            raise ConfigurationError(
                f"reorder_window must be >= 0, got {reorder_window}")
        self._finisher = finisher
        self.config = config if config is not None else SmartSRAConfig()
        self.late_policy = late_policy
        self.reorder_window = reorder_window
        self.dedup = dedup
        self._buffers: dict[str, list[Request]] = {}
        self._reorder: list[Request] = []   # heap, ordered by Request order
        self._max_seen = float("-inf")
        self._flush_watermark = float("-inf")
        self._emitted = 0
        self._fed = 0
        self._closed = 0
        self._late_dropped = 0
        self._duplicates_dropped = 0
        reg = registry if registry is not None else get_registry()
        self._registry = reg
        self._m_fed = reg.counter("stream.requests.fed")
        self._m_emitted = reg.counter("stream.sessions.emitted")
        self._m_late = reg.counter("stream.late_dropped")
        self._m_duplicates = reg.counter("stream.duplicates_dropped")
        self._g_reorder = reg.gauge("stream.reorder.depth")
        self._g_buffered = reg.gauge("stream.buffered_requests")
        self._g_users = reg.gauge("stream.active_users")
        self._g_lag = reg.gauge("stream.watermark.lag_seconds")

    # -- feeding -----------------------------------------------------------

    def feed(self, request: Request) -> list[Session]:
        """Accept one request; return any sessions it proved complete.

        Raises:
            ReconstructionError: for a negative timestamp.
            LateEventError: under ``late_policy="raise"``, for a request
                that predates the flush watermark, the reorder buffer's
                release floor, or its user's buffered tail.
        """
        if request.timestamp < 0:
            raise ReconstructionError(
                f"negative timestamp {request.timestamp}")
        if request.timestamp < self._flush_watermark:
            if self._flush_watermark == float("inf"):
                return self._late(
                    request,
                    "the stream was sealed by an end-of-stream flush()")
            return self._late(
                request,
                f"request at t={request.timestamp} predates the flushed "
                f"watermark {self._flush_watermark}")
        if self.reorder_window > 0:
            release_floor = self._max_seen - self.reorder_window
            if request.timestamp < release_floor:
                return self._late(
                    request,
                    f"request at t={request.timestamp} is more than "
                    f"{self.reorder_window}s behind the stream "
                    f"(release floor {release_floor})")
            heapq.heappush(self._reorder, request)
            self._max_seen = max(self._max_seen, request.timestamp)
            emitted = self._release(self._max_seen - self.reorder_window)
            self._g_reorder.set(len(self._reorder))
            self._update_lag()
            return emitted
        self._max_seen = max(self._max_seen, request.timestamp)
        self._update_lag()
        return self._accept(request)

    def feed_many(self, requests: Iterable[Request]) -> list[Session]:
        """Feed a batch of requests; returns all sessions they completed."""
        emitted: list[Session] = []
        for request in requests:
            emitted.extend(self.feed(request))
        return emitted

    def _release(self, below: float) -> list[Session]:
        """Pop reorder-buffered requests with timestamp strictly < ``below``.

        The bound is exclusive: a request *at* the release floor (or at a
        flushed watermark) is not late yet, so an equal-timestamp peer may
        still arrive and must be allowed to sort against it.  Releasing
        ties eagerly would make the output depend on arrival interleaving.
        End-of-stream drains with ``below=float("inf")``, which releases
        everything.
        """
        emitted: list[Session] = []
        while self._reorder and self._reorder[0].timestamp < below:
            emitted.extend(self._accept(heapq.heappop(self._reorder)))
        return emitted

    def _update_lag(self) -> None:
        """Publish how far the flushed watermark trails the stream head."""
        if (self._max_seen > float("-inf")
                and self._flush_watermark > float("-inf")
                and self._flush_watermark < float("inf")):
            self._g_lag.set(self._max_seen - self._flush_watermark)

    def _late(self, request: Request, reason: str) -> list[Session]:
        if self.late_policy == "raise":
            raise LateEventError(
                f"late request for user {request.user_id!r}: {reason}")
        self._late_dropped += 1
        self._m_late.inc()
        return []

    def _accept(self, request: Request) -> list[Session]:
        buffer = self._buffers.get(request.user_id)
        emitted: list[Session] = []
        if buffer is not None:
            last = buffer[-1]
            if request.timestamp < last.timestamp:
                if self.late_policy == "raise":
                    raise LateEventError(
                        f"out-of-order request for user "
                        f"{request.user_id!r}: {request.timestamp} after "
                        f"{last.timestamp}")
                self._late_dropped += 1
                self._m_late.inc()
                return []
            if (self.dedup and request.timestamp == last.timestamp
                    and request.page == last.page):
                self._duplicates_dropped += 1
                self._m_duplicates.inc()
                return []
            gap = request.timestamp - last.timestamp
            span = request.timestamp - buffer[0].timestamp
            if gap > self.config.max_gap or span > self.config.max_duration:
                emitted = self._finish(request.user_id)
        self._buffers.setdefault(request.user_id, []).append(request)
        self._fed += 1
        self._m_fed.inc()
        self._g_buffered.inc()
        self._g_users.set(len(self._buffers))
        return emitted

    # -- closing -----------------------------------------------------------

    def flush(self, watermark: float | None = None) -> list[Session]:
        """Emit sessions that can no longer grow.

        Args:
            watermark: event-time lower bound for all *future* requests.
                The reorder buffer first releases everything strictly
                before it (a request *at* the watermark may still gain an
                equal-timestamp peer, so it is held); candidates whose
                last request lies more than ρ before it are then provably
                closed and are emitted.  ``None`` closes everything and
                **seals the stream** (end of stream): any later ``feed``
                is a late event under ``late_policy``, never a silent
                restart that would diverge from batch output.

        After ``flush(watermark)``, feeding a request strictly older than
        ``watermark`` is a *late* event (see ``late_policy``).
        """
        emitted: list[Session] = []
        if watermark is None:
            emitted.extend(self._release(float("inf")))
            self._flush_watermark = float("inf")
        else:
            emitted.extend(self._release(watermark))
            self._flush_watermark = max(self._flush_watermark, watermark)
        for user_id in list(self._buffers):
            buffer = self._buffers[user_id]
            if (watermark is None
                    or watermark - buffer[-1].timestamp > self.config.max_gap):
                emitted.extend(self._finish(user_id))
        self._g_reorder.set(len(self._reorder))
        self._update_lag()
        return emitted

    def _finish(self, user_id: str) -> list[Session]:
        candidate = self._buffers.pop(user_id, None)
        if not candidate:
            return []
        sessions = self._finisher(candidate)
        self._closed += len(candidate)
        self._emitted += len(sessions)
        self._m_emitted.inc(len(sessions))
        self._g_buffered.dec(len(candidate))
        self._g_users.set(len(self._buffers))
        return sessions

    # -- introspection -------------------------------------------------------

    def stats(self) -> StreamingStats:
        """Current buffering/emission counters."""
        return StreamingStats(
            active_users=len(self._buffers),
            buffered_requests=sum(len(buffer)
                                  for buffer in self._buffers.values()),
            emitted_sessions=self._emitted,
            fed_requests=self._fed,
            late_dropped=self._late_dropped,
            duplicates_dropped=self._duplicates_dropped,
            reorder_buffered=len(self._reorder),
            closed_requests=self._closed,
        )


def _make_pipeline(finisher: Finisher, config: SmartSRAConfig | None,
                   governor: object, options: dict) -> StreamingReconstructor:
    if governor is None:
        return StreamingReconstructor(finisher, config,
                                      **options)  # type: ignore[arg-type]
    # imported lazily: governor depends on this module.
    from repro.streaming.governor import GovernedStreamingReconstructor
    return GovernedStreamingReconstructor(
        finisher, config, governor=governor,
        **options)  # type: ignore[arg-type]


def streaming_smart_sra(topology: WebGraph,
                        config: SmartSRAConfig | None = None, *,
                        governor: object | None = None,
                        **options: object) -> StreamingReconstructor:
    """A streaming pipeline emitting full Smart-SRA (heur4) sessions.

    Keyword options (``late_policy``, ``reorder_window``, ``dedup``) pass
    through to :class:`StreamingReconstructor`.  Passing a
    :class:`~repro.streaming.governor.GovernorConfig` as ``governor``
    returns a budgeted
    :class:`~repro.streaming.governor.GovernedStreamingReconstructor`
    instead.
    """
    resolved = config if config is not None else SmartSRAConfig()
    return _make_pipeline(
        lambda candidate: maximal_sessions_fast(candidate, topology,
                                                resolved),
        resolved, governor, dict(options))


def streaming_phase1(config: SmartSRAConfig | None = None, *,
                     governor: object | None = None,
                     **options: object) -> StreamingReconstructor:
    """A streaming pipeline emitting raw Phase-1 candidates as sessions.

    Keyword options (``late_policy``, ``reorder_window``, ``dedup``) pass
    through to :class:`StreamingReconstructor`; ``governor`` selects the
    budgeted variant exactly as in :func:`streaming_smart_sra`.
    """
    return _make_pipeline(
        lambda candidate: [Session(candidate)], config, governor,
        dict(options))


def streaming_amp(topology: WebGraph,
                  config: SmartSRAConfig | None = None, *,
                  amp: object | None = None,
                  governor: object | None = None,
                  **options: object) -> StreamingReconstructor:
    """A streaming pipeline emitting All-Maximal-Paths sessions.

    Each time-closed Phase-1 candidate is finished with the AMP optimized
    enumerator (:func:`repro.core.amp.amp_sessions_optimized`) under the
    configured :class:`~repro.core.amp.AMPConfig` explosion guards —
    identical to the batch :class:`~repro.sessions.maximal_paths.
    AllMaximalPaths` output, because AMP (like Phase 2) never looks across
    candidate boundaries.  The symbol table is interned once and shared by
    every finisher call.

    Keyword options (``late_policy``, ``reorder_window``, ``dedup``) pass
    through to :class:`StreamingReconstructor`; ``governor`` selects the
    budgeted variant exactly as in :func:`streaming_smart_sra` (pair it
    with ``repro doctor --path-budget`` to catch a path budget that
    undoes the memory budget).
    """
    from repro.core.amp import AMPConfig, amp_sessions_optimized
    from repro.core.columnar import SymbolTable

    resolved = config if config is not None else SmartSRAConfig()
    resolved_amp = amp if amp is not None else AMPConfig()
    symbols = SymbolTable.for_topology(topology)

    def finish(candidate: Sequence[Request]) -> list[Session]:
        return amp_sessions_optimized(
            candidate, topology, resolved, resolved_amp,
            interner=symbols).sessions

    return _make_pipeline(finish, resolved, governor, dict(options))
