"""Streaming (incremental) session reconstruction.

The paper's "reactive" processing is batch: collect the log, process it
offline.  Production log pipelines usually cannot wait — they *tail* the
access log and want sessions emitted as soon as they are provably complete.
This package provides an incremental driver for exactly that:

* :class:`~repro.streaming.pipeline.StreamingReconstructor` — feeds
  requests one at a time, buffers each user's open Phase-1 candidate, and
  emits finished sessions the moment the time rules prove the candidate
  closed (or a watermark passes);
* :func:`~repro.streaming.pipeline.streaming_smart_sra` /
  :func:`~repro.streaming.pipeline.streaming_phase1` — the two canonical
  configurations.

The streaming output is *identical* to the batch output (verified by
property test): Smart-SRA's two-phase structure makes it naturally
streamable, because Phase 2 only ever looks inside one time-closed
candidate.

For degraded real-world streams, the reconstructor also offers a bounded
reorder buffer, a late-event policy (typed
:class:`~repro.exceptions.LateEventError` or counted drops) and adjacent
deduplication — see :mod:`repro.streaming.pipeline`.

For *adversarial* streams — crawlers that never idle, NAT addresses
aggregating thousands of humans — :mod:`repro.streaming.governor` bounds
tracked memory under an explicit budget with observable degradation
(eviction, spill-to-disk, quarantine, shedding) instead of OOM.

For population scale, :mod:`repro.streaming.sharded` hash-shards users
across crash-safe worker processes: per-shard watermarks with a global
low-watermark sealing rule, acked state capsules plus bounded replay
logs so a killed or wedged worker fails over with byte-identical sealed
output, and policy-driven degradation (``failover`` / ``shed-shard`` /
``raise``) mirroring the governor.
"""

from repro.streaming.governor import (
    OVERLOAD_POLICIES,
    GovernedStreamingReconstructor,
    GovernedStreamingStats,
    GovernorConfig,
    OverloadAudit,
    SpillStore,
    audit_overload_config,
    parse_memory_budget,
    request_cost,
)
from repro.streaming.pipeline import (
    StreamingReconstructor,
    StreamingStats,
    streaming_amp,
    streaming_phase1,
    streaming_smart_sra,
)
from repro.streaming.sharded import (
    SHARD_FAILURE_POLICIES,
    ReplayLog,
    ShardedAudit,
    ShardedConfig,
    ShardedRunResult,
    ShardedStreamingRuntime,
    ShardedStreamingStats,
    ShardLedger,
    audit_sharded_config,
    shard_for,
)

__all__ = [
    "StreamingReconstructor",
    "StreamingStats",
    "streaming_smart_sra",
    "streaming_phase1",
    "streaming_amp",
    "OVERLOAD_POLICIES",
    "GovernorConfig",
    "GovernedStreamingReconstructor",
    "GovernedStreamingStats",
    "SpillStore",
    "OverloadAudit",
    "audit_overload_config",
    "parse_memory_budget",
    "request_cost",
    "SHARD_FAILURE_POLICIES",
    "ShardedConfig",
    "ShardedStreamingRuntime",
    "ShardedStreamingStats",
    "ShardedRunResult",
    "ShardedAudit",
    "ShardLedger",
    "ReplayLog",
    "audit_sharded_config",
    "shard_for",
]
