"""Resource governance for the streaming pipeline.

Real traffic breaks the assumptions the incremental reconstructor makes
(Meiss et al., "What's in a Session"): crawlers never go idle, so their
Phase-1 candidate never closes; NAT and proxy IPs aggregate thousands of
humans behind one user key; session lengths are heavy-tailed.  An
ungoverned :class:`~repro.streaming.pipeline.StreamingReconstructor`
therefore grows per-user buffers without bound — the failure mode is an
OOM kill, which loses *everything*.

:class:`GovernedStreamingReconstructor` bounds tracked state under an
explicit byte budget with four observable degradation modes instead:

* **eviction** — when tracked bytes cross the high watermark, the
  oldest-idle users are force-finished (their open candidates go through
  the normal finisher, so the early sessions are invariant-clean) until
  the low watermark is reached.  Evicted requests are flagged in
  :class:`GovernedStreamingStats`, never silently dropped.
* **spill-to-disk** (``overload_policy="block"``) — cold user buffers are
  written to a :class:`SpillStore` (the atomic temp-file + ``os.replace``
  and SHA-256 integrity idiom of :mod:`repro.parallel.checkpoint`) and
  restored transparently on the user's next request.  A corrupt spill is
  detected, counted as lost, and never trusted.
* **quarantine** — a user whose buffer repeatedly hits ``per_user_cap``
  (the crawler signature) is routed to a bounded side channel with its
  own accounting; the channel is flushed through the finisher whenever it
  fills, so pathological users get bounded memory *and* keep their data.
* **shedding / hard failure** (``overload_policy="shed"`` / ``"raise"``)
  — admission control: a request whose acceptance would exceed the budget
  is counted and dropped, or raises a typed
  :class:`~repro.exceptions.OverloadError`; accepted state is never
  rewritten.

Every transition is threaded through :mod:`repro.obs` (the
``governor.*`` catalog) and reconciled in
:meth:`GovernedStreamingStats.reconciles`: nothing is ever silently
lost.  When the budget is never hit, governed output is byte-identical
to the ungoverned (and batch) output — enforced by the
``streaming-governed`` diffcheck engine; when it is hit, output remains
invariant-clean — enforced by ``streaming-evicting``.

Example::

    governor = GovernorConfig(memory_budget=parse_memory_budget("8m"),
                              overload_policy="evict")
    pipeline = streaming_smart_sra(topology, governor=governor)
    for request in tail_the_log():
        handle(pipeline.feed(request))
    handle(pipeline.flush())
    assert pipeline.stats().reconciles()
"""

from __future__ import annotations

import heapq
import os
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ConfigurationError, OverloadError
from repro.obs import snapshot_digest
from repro.parallel.checkpoint import atomic_write_json
from repro.sessions.model import Request, Session
from repro.streaming.pipeline import StreamingReconstructor, StreamingStats

__all__ = [
    "OVERLOAD_POLICIES",
    "SPILL_SCHEMA",
    "GovernorConfig",
    "GovernedStreamingStats",
    "GovernedStreamingReconstructor",
    "SpillStore",
    "OverloadAudit",
    "audit_overload_config",
    "parse_memory_budget",
    "request_cost",
]

#: the recognized backpressure/shedding policies, in documentation order.
OVERLOAD_POLICIES = ("block", "evict", "shed", "raise")

#: version of the on-disk spill layout; bumped on incompatible changes so
#: stale spill files are counted lost rather than misread.
SPILL_SCHEMA = 1

#: fixed per-request overhead charged by :func:`request_cost`, bytes.
#: Approximates the CPython object + buffer-slot footprint of one
#: :class:`~repro.sessions.model.Request`, but is deliberately a model
#: constant, not ``sys.getsizeof``: budgets must mean the same thing on
#: every platform or tests and benches stop being comparable.
REQUEST_BASE_COST = 72

#: budget shrink factor a ``mem-pressure`` fault applies when its spec
#: does not carry an explicit one.
DEFAULT_PRESSURE_FACTOR = 0.5

_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_memory_budget(text: str | int) -> int:
    """Parse a human-friendly byte size (``65536``, ``"64k"``, ``"8m"``).

    Suffixes ``k``/``m``/``g`` (case-insensitive) are binary multiples.

    Raises:
        ConfigurationError: for malformed or non-positive sizes.
    """
    raw = str(text).strip().lower()
    multiplier = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        multiplier = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"malformed memory budget {text!r} "
            f"(expected BYTES or a k/m/g-suffixed size)") from exc
    budget = int(value * multiplier)
    if budget <= 0:
        raise ConfigurationError(
            f"memory budget must be positive, got {text!r}")
    return budget


def request_cost(request: Request) -> int:
    """Deterministic tracked-memory cost of one buffered request, bytes.

    A platform-independent model — fixed overhead plus the variable-width
    string payloads — so identical inputs consume identical budget on
    every interpreter, keeping eviction/spill decisions (and therefore
    output) reproducible.
    """
    cost = REQUEST_BASE_COST + len(request.user_id) + len(request.page)
    if request.referrer is not None:
        cost += len(request.referrer)
    return cost


@dataclass(frozen=True, slots=True)
class GovernorConfig:
    """Resource budget and degradation policy for a governed pipeline.

    Attributes:
        memory_budget: byte budget for tracked state (open candidates
            plus quarantine channels, as priced by :func:`request_cost`).
        per_user_cap: maximum requests in one user's open candidate; at
            the cap the candidate is force-finished and the user earns a
            *strike* (see ``quarantine_after``).
        overload_policy: what happens when tracked state crosses the
            high watermark — ``"evict"`` force-finishes oldest-idle
            users; ``"block"`` spills cold buffers to ``spill_dir``
            first, evicting only if spilling cannot get back under
            budget; ``"shed"`` refuses (counts and drops) new requests
            whose admission would exceed the budget; ``"raise"`` raises
            :class:`~repro.exceptions.OverloadError` instead of
            shedding.
        high_watermark: budget fraction that triggers rebalancing.
        low_watermark: budget fraction rebalancing drains down to
            (hysteresis, so the governor does not thrash at the line).
        spill_dir: directory for the :class:`SpillStore`; required by
            (and only meaningful under) ``overload_policy="block"``.
        quarantine_after: cap strikes before a user is quarantined.
        quarantine_cap: requests held per quarantine channel before it
            is flushed through the finisher (bounds a crawler's memory
            without losing its data).

    Raises:
        ConfigurationError: for out-of-range values or an inconsistent
            policy/spill combination.
    """

    memory_budget: int = 1 << 20
    per_user_cap: int = 512
    overload_policy: str = "evict"
    high_watermark: float = 0.9
    low_watermark: float = 0.7
    spill_dir: str | None = None
    quarantine_after: int = 3
    quarantine_cap: int = 4096

    def __post_init__(self) -> None:
        if self.memory_budget <= 0:
            raise ConfigurationError(
                f"memory_budget must be positive, got {self.memory_budget}")
        if self.per_user_cap < 2:
            raise ConfigurationError(
                f"per_user_cap must be >= 2, got {self.per_user_cap}")
        if self.overload_policy not in OVERLOAD_POLICIES:
            known = ", ".join(OVERLOAD_POLICIES)
            raise ConfigurationError(
                f"unknown overload_policy {self.overload_policy!r} "
                f"(known: {known})")
        if not 0 < self.low_watermark <= self.high_watermark <= 1:
            raise ConfigurationError(
                f"watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={self.low_watermark} high={self.high_watermark}")
        if self.overload_policy == "block" and self.spill_dir is None:
            raise ConfigurationError(
                "overload_policy='block' spills cold buffers to disk and "
                "requires spill_dir")
        if self.overload_policy != "block" and self.spill_dir is not None:
            raise ConfigurationError(
                f"spill_dir is only used by overload_policy='block' "
                f"(got policy {self.overload_policy!r})")
        if self.quarantine_after < 1:
            raise ConfigurationError(
                f"quarantine_after must be >= 1, "
                f"got {self.quarantine_after}")
        if self.quarantine_cap < 2:
            raise ConfigurationError(
                f"quarantine_cap must be >= 2, got {self.quarantine_cap}")


class SpillStore:
    """Atomic, integrity-checked on-disk store for cold user buffers.

    Reuses the :mod:`repro.parallel.checkpoint` durability idiom: each
    user's buffer is one JSON document written via temp-file +
    ``os.replace`` (never a half-written file), schema-versioned, and
    stamped with a SHA-256 digest over its canonical JSON.  A document
    that fails any of those checks on restore is deleted and reported
    lost — degraded, counted, and never trusted.
    """

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def path_for(self, user_id: str) -> str:
        """The spill file backing ``user_id`` (hashed: any key is safe)."""
        import hashlib
        digest = hashlib.sha256(user_id.encode("utf-8")).hexdigest()[:16]
        return os.path.join(self.directory, f"spill__{digest}.json")

    def spill(self, user_id: str, requests: Sequence[Request]) -> str:
        """Atomically persist ``requests`` as ``user_id``'s cold buffer."""
        document: dict[str, Any] = {
            "schema": SPILL_SCHEMA,
            "user": user_id,
            "requests": [[r.timestamp, r.page, r.referrer, r.synthetic]
                         for r in requests],
        }
        document["digest"] = snapshot_digest(document)
        path = self.path_for(user_id)
        atomic_write_json(path, document)
        return path

    def restore(self, user_id: str) -> tuple[Request, ...] | None:
        """Load and delete ``user_id``'s spilled buffer.

        Returns ``None`` when the file is missing, unreadable, carries a
        foreign schema, or fails its integrity digest — the caller must
        account for the loss rather than resume from damaged state.
        """
        import json
        path = self.path_for(user_id)
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            document = None
        try:
            os.unlink(path)
        except OSError:
            pass
        if not isinstance(document, dict):
            return None
        stored = document.pop("digest", None)
        if (document.get("schema") != SPILL_SCHEMA
                or document.get("user") != user_id
                or stored != snapshot_digest(document)):
            return None
        try:
            return tuple(
                Request(timestamp, user_id, page,
                        synthetic=bool(synthetic), referrer=referrer)
                for timestamp, page, referrer, synthetic
                in document["requests"])
        except (KeyError, TypeError, ValueError):
            return None

    def pending(self) -> int:
        """Spill files currently on disk."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        return sum(1 for name in names
                   if name.startswith("spill__") and name.endswith(".json"))


@dataclass(frozen=True, slots=True)
class GovernedStreamingStats(StreamingStats):
    """Streaming stats extended with the governor's degradation ledger.

    ``fed_requests`` counts every request *presented* to the pipeline
    (admitted or shed), so the reconciliation identity covers admission
    control too.  ``closed_requests`` counts only *naturally* closed
    requests — force-finished ones move to ``evicted_requests``.

    Attributes:
        memory_budget: the configured budget, bytes.
        tracked_bytes: current tracked state (open candidates plus
            quarantine channels), as priced by :func:`request_cost`.
        peak_tracked_bytes: high-water mark of ``tracked_bytes`` — the
            number bench A19's bounded-memory acceptance check reads.
        evicted_requests: requests force-finished early (watermark or
            cap evictions, plus quarantine-channel flushes).
        evictions: force-finish events (open-candidate evictions).
        shed_requests: requests refused by admission control
            (``overload_policy="shed"``).
        spilled_requests: requests currently cold on disk.
        spill_writes: buffers written to the spill store.
        spill_restores: buffers read back intact.
        spill_lost: requests lost to spill-integrity failures (counted,
            so reconciliation still holds under disk corruption).
        quarantined_users: users currently routed to the side channel.
        quarantine_buffered: requests currently held in side channels.
        quarantine_flushes: side-channel flushes through the finisher.
        cap_strikes: per-user-cap hits (the quarantine trigger).
    """

    memory_budget: int = 0
    tracked_bytes: int = 0
    peak_tracked_bytes: int = 0
    evicted_requests: int = 0
    evictions: int = 0
    shed_requests: int = 0
    spilled_requests: int = 0
    spill_writes: int = 0
    spill_restores: int = 0
    spill_lost: int = 0
    quarantined_users: int = 0
    quarantine_buffered: int = 0
    quarantine_flushes: int = 0
    cap_strikes: int = 0

    def reconciles(self) -> bool:
        """Whether the counters balance: nothing was silently lost.

        Every request ever presented is in exactly one bucket — still
        buffered (in memory, on disk, or in a quarantine channel),
        naturally closed, force-finished (evicted), refused up front
        (shed), or lost to a detected spill-integrity failure::

            fed == buffered + spilled + quarantine_buffered
                 + closed + evicted + shed + spill_lost

        the governed generalization of the base invariant
        ``fed == buffered + closed``.
        """
        return self.fed_requests == (
            self.buffered_requests + self.spilled_requests
            + self.quarantine_buffered + self.closed_requests
            + self.evicted_requests + self.shed_requests + self.spill_lost)


class GovernedStreamingReconstructor(StreamingReconstructor):
    """A :class:`StreamingReconstructor` under a resource governor.

    Behaves identically to the base pipeline — byte-identical output —
    until tracked state crosses the budget's high watermark or a user
    hits ``per_user_cap``; then the configured degradation mode engages
    (see :class:`GovernorConfig` and the module docstring).

    A force-finished (evicted) user gets an *eviction watermark* at its
    candidate's tail timestamp, mirroring the sealed-stream contract: a
    later request strictly older than the watermark is a late event
    under ``late_policy``; one exactly *at* it is legal and starts a
    fresh candidate (ties are legal everywhere in this pipeline).

    Construction accepts every base keyword plus ``governor``.  The
    reorder buffer is **not** charged against the byte budget: it is
    already bounded by event time (``reorder_window``), not by user
    behavior, so adversarial users cannot grow it.

    If ``mem-pressure`` execution faults are armed (see
    :mod:`repro.faults.execution`) when the pipeline is constructed, the
    effective budget shrinks by the fault's factor once the stream
    reaches the fault's feed ordinal — that is how ``repro chaos``
    exercises degradation deterministically.
    """

    def __init__(self, finisher, config=None, *,
                 governor: GovernorConfig | None = None,
                 **options: Any) -> None:
        super().__init__(finisher, config, **options)
        self.governor = governor if governor is not None else GovernorConfig()
        self._spill_store = (SpillStore(self.governor.spill_dir)
                             if self.governor.spill_dir is not None else None)
        self._user_bytes: dict[str, int] = {}
        self._user_last: dict[str, float] = {}
        self._idle_heap: list[tuple[float, int, str]] = []
        self._heap_seq = 0
        self._tracked = 0
        self._peak_tracked = 0
        self._evictions = 0
        self._evicted_requests = 0
        self._evicted_via_finish = 0
        self._shed = 0
        self._spilled: dict[str, tuple[int, int, float]] = {}
        self._spill_writes = 0
        self._spill_restores = 0
        self._spill_lost = 0
        self._quarantine: dict[str, list[Request]] = {}
        self._quarantine_bytes: dict[str, int] = {}
        self._quarantine_flushes = 0
        self._cap_strikes: dict[str, int] = {}
        self._cap_strikes_total = 0
        self._evict_watermarks: dict[str, float] = {}
        self._feed_ordinal = 0
        from repro.faults.execution import active_exec_faults
        self._pressure_faults = tuple(
            fault for fault in active_exec_faults()
            if fault.kind == "mem-pressure")
        reg = self._registry
        self._g_tracked = reg.gauge("governor.tracked_bytes")
        self._g_budget = reg.gauge("governor.budget_bytes")
        self._g_spilled_users = reg.gauge("governor.users.spilled")
        self._g_quarantined = reg.gauge("governor.users.quarantined")
        self._c_evictions = reg.counter("governor.evictions")
        self._c_evicted = reg.counter("governor.evicted_requests")
        self._c_sheds = reg.counter("governor.shed_requests")
        self._c_spills = reg.counter("governor.spills")
        self._c_restores = reg.counter("governor.restores")
        self._c_spill_lost = reg.counter("governor.spill_lost")
        self._c_quarantines = reg.counter("governor.quarantines")
        self._c_quarantine_flushes = reg.counter(
            "governor.quarantine_flushes")
        self._c_cap_strikes = reg.counter("governor.cap_strikes")
        self._g_budget.set(self.governor.memory_budget)

    # -- budget ------------------------------------------------------------

    def _effective_budget(self) -> int:
        """The byte budget, shrunk by any armed ``mem-pressure`` fault."""
        budget = self.governor.memory_budget
        for fault in self._pressure_faults:
            if self._feed_ordinal >= fault.index:
                factor = (fault.seconds if 0 < fault.seconds <= 1
                          else DEFAULT_PRESSURE_FACTOR)
                budget = min(budget,
                             max(1, int(self.governor.memory_budget
                                        * factor)))
        return budget

    def _closable_bytes(self, request: Request) -> int:
        """Bytes the user's candidate frees if this request closes it.

        Admission control must credit a natural closure: a request whose
        arrival triggers the gap/span rule *shrinks* tracked state even
        as it is admitted.
        """
        buffer = self._buffers.get(request.user_id)
        if not buffer or request.timestamp < buffer[-1].timestamp:
            return 0
        gap = request.timestamp - buffer[-1].timestamp
        span = request.timestamp - buffer[0].timestamp
        if gap > self.config.max_gap or span > self.config.max_duration:
            return self._user_bytes.get(request.user_id, 0)
        return 0

    # -- feeding -----------------------------------------------------------

    def feed(self, request: Request) -> list[Session]:
        """Accept one request under the governor's budget.

        Raises:
            OverloadError: under ``overload_policy="raise"``, when
                admission would exceed the effective budget.
            LateEventError: as the base pipeline, plus for requests
                predating a user's eviction watermark under
                ``late_policy="raise"``.
        """
        self._feed_ordinal += 1
        budget = self._effective_budget()
        self._g_budget.set(budget)
        policy = self.governor.overload_policy
        if policy in ("shed", "raise"):
            # admission control covers quarantined users too: these
            # policies have no rebalancing pass to flush side channels,
            # so exempting them would let quarantine growth break the
            # budget the policy exists to enforce.
            projected = (self._tracked + request_cost(request)
                         - self._closable_bytes(request))
            if projected > budget:
                if policy == "raise":
                    raise OverloadError(
                        f"admitting request for user "
                        f"{request.user_id!r} would put tracked state at "
                        f"{projected} bytes, over the {budget}-byte "
                        f"budget")
                self._fed += 1   # presented; accounted in shed_requests
                self._m_fed.inc()
                self._shed += 1
                self._c_sheds.inc()
                return []
        emitted = super().feed(request)
        if policy in ("evict", "block"):
            emitted.extend(self._rebalance(budget, hot_user=request.user_id))
        self._g_tracked.set(self._tracked)
        return emitted

    def _accept(self, request: Request) -> list[Session]:
        user = request.user_id
        watermark = self._evict_watermarks.get(user)
        if watermark is not None and request.timestamp < watermark:
            return self._late(
                request,
                f"user {user!r} was force-finished by the resource "
                f"governor at t={watermark}; an older request can no "
                f"longer join")
        if user in self._quarantine:
            return self._quarantine_append(request)
        emitted: list[Session] = []
        if user in self._spilled:
            # Make room *before* the cold buffer re-enters tracked state,
            # or the restore itself would spike memory over the budget.
            emitted.extend(self._make_room(self._spilled[user][1]))
            self._restore_user(user)
        fed_before = self._fed
        emitted.extend(super()._accept(request))
        if self._fed == fed_before:   # late- or duplicate-dropped
            return emitted
        cost = request_cost(request)
        self._user_bytes[user] = self._user_bytes.get(user, 0) + cost
        self._tracked += cost
        if self._tracked > self._peak_tracked:
            self._peak_tracked = self._tracked
        self._user_last[user] = request.timestamp
        self._heap_seq += 1
        heapq.heappush(self._idle_heap,
                       (request.timestamp, self._heap_seq, user))
        buffer = self._buffers.get(user)
        if buffer is not None and len(buffer) >= self.governor.per_user_cap:
            emitted.extend(self._strike(user))
        return emitted

    # -- degradation modes -------------------------------------------------

    def _rebalance(self, budget: int, *, hot_user: str) -> list[Session]:
        """Bring tracked state back under the watermarks.

        Crossing ``high_watermark * budget`` triggers draining down to
        the low watermark: ``block`` spills cold buffers first (never
        the hot user's — that would thrash) and force-finishes only what
        spilling cannot shed; ``evict`` force-finishes directly.  If
        open candidates alone cannot reach the floor, quarantine
        channels are flushed, largest first.
        """
        high = budget * self.governor.high_watermark
        if self._tracked <= high:
            return []
        low = budget * self.governor.low_watermark
        emitted: list[Session] = []
        floor = low
        if self._spill_store is not None:
            while self._tracked > low:
                victim = self._oldest_idle_user()
                if victim is None or victim == hot_user:
                    break
                self._spill_user(victim)
            floor = high   # forced eviction only if spilling fell short
        while self._tracked > floor:
            victim = self._oldest_idle_user()
            if victim is None:
                break
            emitted.extend(self._evict_user(victim))
        if self._tracked > floor and self._quarantine:
            for user in sorted(
                    self._quarantine,
                    key=lambda u: (-len(self._quarantine[u]), u)):
                if self._tracked <= floor:
                    break
                emitted.extend(
                    self._flush_quarantine_channel(user, reopen=True))
        return emitted

    def _make_room(self, demand: int) -> list[Session]:
        """Free budget for ``demand`` incoming bytes (a restore).

        Same drain order as :meth:`_rebalance` — spill cold buffers
        when the store exists, force-finish otherwise — but sized
        against ``tracked + demand`` so the subsequent restore lands
        under the high watermark instead of blowing through it.
        """
        budget = self._effective_budget()
        high = budget * self.governor.high_watermark
        if self._tracked + demand <= high:
            return []
        low = budget * self.governor.low_watermark
        emitted: list[Session] = []
        floor = low
        if self._spill_store is not None:
            while self._tracked + demand > low:
                victim = self._oldest_idle_user()
                if victim is None:
                    break
                self._spill_user(victim)
            floor = high
        while self._tracked + demand > floor:
            victim = self._oldest_idle_user()
            if victim is None:
                break
            emitted.extend(self._evict_user(victim))
        return emitted

    def _oldest_idle_user(self) -> str | None:
        """The buffered user idle the longest (lazy-heap selection)."""
        while self._idle_heap:
            timestamp, _, user = self._idle_heap[0]
            if (self._user_last.get(user) == timestamp
                    and user in self._buffers):
                return user
            heapq.heappop(self._idle_heap)
        return None

    def _evict_user(self, user: str) -> list[Session]:
        """Force-finish ``user``'s open candidate (watermark semantics)."""
        buffer = self._buffers.get(user)
        if not buffer:
            return []
        self._evict_watermarks[user] = buffer[-1].timestamp
        count = len(buffer)
        sessions = self._finish(user)
        self._evictions += 1
        self._evicted_requests += count
        self._evicted_via_finish += count
        self._c_evictions.inc()
        self._c_evicted.inc(count)
        self._g_tracked.set(self._tracked)
        return sessions

    def _strike(self, user: str) -> list[Session]:
        """Handle a per-user-cap hit: evict, count a strike, maybe
        quarantine."""
        strikes = self._cap_strikes.get(user, 0) + 1
        self._cap_strikes[user] = strikes
        self._cap_strikes_total += 1
        self._c_cap_strikes.inc()
        emitted = self._evict_user(user)
        if (strikes >= self.governor.quarantine_after
                and user not in self._quarantine):
            self._quarantine[user] = []
            self._quarantine_bytes[user] = 0
            self._c_quarantines.inc()
            self._g_quarantined.set(len(self._quarantine))
        return emitted

    def _quarantine_append(self, request: Request) -> list[Session]:
        user = request.user_id
        channel = self._quarantine[user]
        if channel and request.timestamp < channel[-1].timestamp:
            return self._late(
                request,
                f"out-of-order request for quarantined user {user!r}: "
                f"{request.timestamp} after {channel[-1].timestamp}")
        channel.append(request)
        self._fed += 1
        self._m_fed.inc()
        cost = request_cost(request)
        self._quarantine_bytes[user] = (
            self._quarantine_bytes.get(user, 0) + cost)
        self._tracked += cost
        if self._tracked > self._peak_tracked:
            self._peak_tracked = self._tracked
        if len(channel) >= self.governor.quarantine_cap:
            return self._flush_quarantine_channel(user, reopen=True)
        return []

    def _flush_quarantine_channel(self, user: str, *,
                                  reopen: bool) -> list[Session]:
        """Run a quarantine channel through the finisher and empty it.

        The channel may span arbitrary time (that is why its user is
        quarantined), so it is first re-split into legal Phase-1
        candidates — the emitted sessions stay invariant-clean.  Chunks
        are additionally capped at ``per_user_cap`` requests: finisher
        cost grows superlinearly with candidate length (a crawler's
        dense trace can explode Phase 2's maximal-path count), and the
        cap is precisely the bound the governor already promises.
        """
        channel = self._quarantine[user]
        if reopen:
            self._quarantine[user] = []
            self._quarantine_bytes[user] = 0
        else:
            del self._quarantine[user]
            self._quarantine_bytes.pop(user, None)
        self._g_quarantined.set(len(self._quarantine))
        if not channel:
            return []
        self._evict_watermarks[user] = channel[-1].timestamp
        self._tracked -= sum(request_cost(r) for r in channel)
        sessions: list[Session] = []
        chunk = [channel[0]]
        for request in channel[1:]:
            gap = request.timestamp - chunk[-1].timestamp
            span = request.timestamp - chunk[0].timestamp
            if (gap > self.config.max_gap
                    or span > self.config.max_duration
                    or len(chunk) >= self.governor.per_user_cap):
                sessions.extend(self._finisher(chunk))
                chunk = [request]
            else:
                chunk.append(request)
        sessions.extend(self._finisher(chunk))
        self._emitted += len(sessions)
        self._m_emitted.inc(len(sessions))
        self._evicted_requests += len(channel)
        self._c_evicted.inc(len(channel))
        self._quarantine_flushes += 1
        self._c_quarantine_flushes.inc()
        self._g_tracked.set(self._tracked)
        return sessions

    # -- spill / restore ---------------------------------------------------

    def _spill_user(self, user: str) -> None:
        """Move ``user``'s cold buffer to disk (no sessions emitted)."""
        buffer = self._buffers.pop(user)
        self._spill_store.spill(user, buffer)
        freed = self._user_bytes.pop(user, 0)
        self._tracked -= freed
        last_ts = self._user_last.pop(user)
        self._spilled[user] = (len(buffer), freed, last_ts)
        self._spill_writes += 1
        self._c_spills.inc()
        self._g_spilled_users.set(len(self._spilled))
        self._g_buffered.dec(len(buffer))
        self._g_users.set(len(self._buffers))
        self._g_tracked.set(self._tracked)

    def _restore_user(self, user: str) -> None:
        """Bring ``user``'s spilled buffer back before its next request."""
        count, cost, last_ts = self._spilled.pop(user)
        self._g_spilled_users.set(len(self._spilled))
        requests = (self._spill_store.restore(user)
                    if self._spill_store is not None else None)
        if requests is None:
            # Integrity failure: the cold buffer is gone.  Count the loss
            # and seal the user at its last known timestamp so ordering
            # semantics survive the damage.
            self._spill_lost += count
            self._c_spill_lost.inc(count)
            self._evict_watermarks[user] = last_ts
            return
        self._spill_restores += 1
        self._c_restores.inc()
        self._buffers[user] = list(requests)
        self._user_bytes[user] = cost
        self._tracked += cost
        if self._tracked > self._peak_tracked:
            self._peak_tracked = self._tracked
        self._user_last[user] = last_ts
        self._heap_seq += 1
        heapq.heappush(self._idle_heap, (last_ts, self._heap_seq, user))
        self._g_buffered.inc(len(requests))
        self._g_users.set(len(self._buffers))
        self._g_tracked.set(self._tracked)

    def _close_spilled(self, user: str) -> list[Session]:
        """Finish a watermark-closed spilled buffer straight from disk.

        The buffer was a live Phase-1 candidate when spilled, so it goes
        through the finisher as-is — a *natural* closure, counted in
        ``closed_requests``.  It never re-enters tracked state: draining
        cold buffers back into memory just to finish them would spike
        usage over the budget at the exact moment it claims to bound.
        """
        count, _, last_ts = self._spilled.pop(user)
        self._g_spilled_users.set(len(self._spilled))
        requests = self._spill_store.restore(user)
        if requests is None:
            self._spill_lost += count
            self._c_spill_lost.inc(count)
            self._evict_watermarks[user] = last_ts
            return []
        self._spill_restores += 1
        self._c_restores.inc()
        sessions = self._finisher(list(requests))
        self._closed += count
        self._emitted += len(sessions)
        self._m_emitted.inc(len(sessions))
        return sessions

    # -- closing -----------------------------------------------------------

    def flush(self, watermark: float | None = None) -> list[Session]:
        """Emit closable sessions; spilled users are restored when due.

        An end-of-stream flush (``watermark=None``) additionally drains
        every quarantine channel (their requests land in
        ``evicted_requests``) and seals the stream exactly like the base
        pipeline.
        """
        emitted: list[Session] = []
        for user in sorted(self._spilled):
            _, _, last_ts = self._spilled[user]
            if (watermark is None
                    or watermark - last_ts > self.config.max_gap):
                emitted.extend(self._close_spilled(user))
        emitted.extend(super().flush(watermark))
        if watermark is None:
            for user in sorted(self._quarantine):
                emitted.extend(
                    self._flush_quarantine_channel(user, reopen=False))
        self._g_tracked.set(self._tracked)
        return emitted

    def _finish(self, user_id: str) -> list[Session]:
        freed = self._user_bytes.pop(user_id, 0)
        self._user_last.pop(user_id, None)
        sessions = super()._finish(user_id)
        self._tracked -= freed
        return sessions

    # -- introspection -----------------------------------------------------

    def stats(self) -> GovernedStreamingStats:
        """Current counters, including the degradation ledger."""
        base = super().stats()
        return GovernedStreamingStats(
            active_users=base.active_users,
            buffered_requests=base.buffered_requests,
            emitted_sessions=base.emitted_sessions,
            fed_requests=base.fed_requests,
            late_dropped=base.late_dropped,
            duplicates_dropped=base.duplicates_dropped,
            reorder_buffered=base.reorder_buffered,
            closed_requests=base.closed_requests - self._evicted_via_finish,
            memory_budget=self.governor.memory_budget,
            tracked_bytes=self._tracked,
            peak_tracked_bytes=self._peak_tracked,
            evicted_requests=self._evicted_requests,
            evictions=self._evictions,
            shed_requests=self._shed,
            spilled_requests=sum(count for count, _, _
                                 in self._spilled.values()),
            spill_writes=self._spill_writes,
            spill_restores=self._spill_restores,
            spill_lost=self._spill_lost,
            quarantined_users=len(self._quarantine),
            quarantine_buffered=sum(len(channel) for channel
                                    in self._quarantine.values()),
            quarantine_flushes=self._quarantine_flushes,
            cap_strikes=self._cap_strikes_total,
        )


# -- configuration audit (repro doctor) -------------------------------------


@dataclass(slots=True)
class OverloadAudit:
    """Outcome of auditing an overload configuration (``repro doctor``).

    Attributes:
        governor: the audited configuration.
        checks: ``(level, message)`` conclusions; levels are ``"ok"``,
            ``"warn"`` and ``"FAIL"``.
    """

    governor: GovernorConfig
    checks: list[tuple[str, str]]

    @property
    def ok(self) -> bool:
        """True when no check failed (warnings are advisory)."""
        return all(level != "FAIL" for level, _ in self.checks)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (``repro doctor --json``)."""
        return {
            "memory_budget": self.governor.memory_budget,
            "per_user_cap": self.governor.per_user_cap,
            "overload_policy": self.governor.overload_policy,
            "spill_dir": self.governor.spill_dir,
            "checks": [{"level": level, "message": message}
                       for level, message in self.checks],
            "ok": self.ok,
        }

    def render(self) -> str:
        """Human-readable audit, one conclusion per line."""
        lines = [
            f"overload configuration: policy={self.governor.overload_policy}"
            f" budget={self.governor.memory_budget}B"
            f" per-user-cap={self.governor.per_user_cap}"]
        for level, message in self.checks:
            lines.append(f"  {level:<4}  {message}")
        lines.append(f"  verdict: {'ok' if self.ok else 'DEGRADED'}")
        return "\n".join(lines)


def audit_overload_config(governor: GovernorConfig, *,
                          typical_cost: int = 96) -> OverloadAudit:
    """Audit a governor configuration for operational sanity.

    Static construction errors are :class:`ConfigurationError` at
    :class:`GovernorConfig` time; this audit catches the configurations
    that are *legal but degenerate* — a per-user cap so large one user
    owns the whole budget, watermarks with less than one request of
    headroom, an unwritable spill directory.

    Args:
        governor: the (already validated) configuration to audit.
        typical_cost: planning estimate for one request's tracked bytes.
    """
    checks: list[tuple[str, str]] = []
    budget = governor.memory_budget
    capacity = budget // typical_cost
    checks.append(("ok", f"nominal capacity ~{capacity} requests at "
                         f"{typical_cost}B each"))
    if budget < 64 * 1024:
        checks.append(("warn", f"budget {budget}B is below 64KiB; expect "
                               f"constant degradation on any real stream"))
    cap_bytes = governor.per_user_cap * typical_cost
    low_bytes = budget * governor.low_watermark
    if cap_bytes > low_bytes:
        checks.append(
            ("FAIL", f"one user at per_user_cap tracks ~{cap_bytes}B, over "
                     f"the low watermark ({int(low_bytes)}B) — rebalancing "
                     f"would chase a single user's buffer; lower "
                     f"per_user_cap or raise the budget"))
    else:
        checks.append(
            ("ok", f"per_user_cap tracks at most ~{cap_bytes}B "
                   f"({100 * cap_bytes / budget:.1f}% of budget)"))
    headroom = budget * (1 - governor.high_watermark)
    if headroom < typical_cost:
        checks.append(
            ("warn", f"high watermark leaves {int(headroom)}B of headroom "
                     f"(< one request); tracked state may briefly "
                     f"overshoot the watermark line"))
    quarantine_bytes = governor.quarantine_cap * typical_cost
    if quarantine_bytes > low_bytes:
        checks.append(
            ("warn", f"one quarantine channel may hold ~{quarantine_bytes}B "
                     f"before flushing, over the low watermark — "
                     f"rebalancing will flush channels early"))
    if governor.spill_dir is not None:
        probe = os.path.join(governor.spill_dir, ".doctor-probe")
        try:
            os.makedirs(governor.spill_dir, exist_ok=True)
            with open(probe, "w", encoding="utf-8") as handle:
                handle.write("probe")
            os.unlink(probe)
            checks.append(("ok", f"spill_dir {governor.spill_dir!r} is "
                                 f"writable"))
        except OSError as exc:
            checks.append(("FAIL", f"spill_dir {governor.spill_dir!r} is "
                                   f"not writable: {exc}"))
    return OverloadAudit(governor=governor, checks=checks)
