"""Live HTTP exposition of a registry: `/metrics`, `/health` and friends.

A :class:`MetricsServer` turns the in-process :class:`Registry` from a
snapshot-at-exit artifact into something a scraper or a human with
``curl`` can watch *while the run is going*.  It is a stdlib
``http.server`` on a daemon thread — no framework, no dependency — and it
only ever **reads** the registry, so the instrumented pipeline cannot be
slowed or broken by a scrape.

Endpoints:

``/metrics``
    Prometheus text exposition (the exact output of
    :meth:`Registry.render_prometheus`).
``/snapshot``
    The versioned JSON snapshot document.
``/timeline``
    The :class:`~repro.obs.timeline.TimelineSampler` ring as JSON
    (404 when no sampler is attached).
``/health``
    Liveness + operational verdict as JSON.  Status ``ok`` answers 200;
    ``degraded`` answers 503 so a probe can act on the HTTP code alone.
    The verdict is derived from the registry itself: a streaming
    governor over its byte budget, or a supervisor that skipped chunks,
    degrades health.

Wired into the CLI as ``--serve-metrics PORT`` on the long-running
subcommands (``repro stream``, ``repro simulate``, ``repro sweep``); the
server starts before the run and is torn down cleanly on exit or SIGINT.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.exceptions import ConfigurationError
from repro.obs.registry import Registry
from repro.obs.timeline import TimelineSampler

__all__ = ["MetricsServer", "health_report"]


def health_report(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Operational health verdict derived from a snapshot document.

    Pure and offline-testable: the server calls this with a live
    snapshot, tests call it with a constructed one.  Returns::

        {"status": "ok" | "degraded", "reasons": [...],
         "governor": {...} | None, "supervisor": {...} | None}

    Degradation conditions:

    * the streaming governor's tracked state exceeds its byte budget
      (eviction/shed cannot keep up — the bound is broken *right now*);
    * the supervisor exhausted retries and **skipped** chunks (output is
      incomplete);
    * the supervisor fell back to degraded serial execution (still
      correct, but the parallel engine is gone — worth a page);
    * a sharded-runtime worker is dead (``sharded.shard.alive{shard=N}``
      is 0) or its watermark lags the global head beyond the configured
      threshold — each degraded shard contributes its own structured
      reason, so a probe can tell *which* shard is hurting.
    """
    gauges = snapshot.get("gauges", {})
    counters = snapshot.get("counters", {})
    reasons: list[str] = []

    governor: dict[str, Any] | None = None
    budget = gauges.get("governor.budget_bytes", 0)
    if budget:
        tracked = gauges.get("governor.tracked_bytes", 0)
        governor = {
            "tracked_bytes": tracked, "budget_bytes": budget,
            "evictions": counters.get("governor.evictions", 0),
            "shed_requests": counters.get("governor.shed_requests", 0),
            "spills": counters.get("governor.spills", 0),
        }
        if tracked > budget:
            reasons.append(
                f"governor over budget: tracked {tracked}B > "
                f"budget {budget}B")

    supervisor: dict[str, Any] | None = None
    supervisor_series = {series: value for series, value in counters.items()
                         if series.startswith("parallel.supervisor.")}
    if supervisor_series:
        supervisor = supervisor_series
        skipped = supervisor_series.get("parallel.supervisor.skipped", 0)
        degraded = supervisor_series.get(
            "parallel.supervisor.degraded_serial", 0)
        if skipped:
            reasons.append(f"supervisor skipped {skipped} chunk(s); "
                           f"output is incomplete")
        if degraded:
            reasons.append(f"supervisor degraded {degraded} chunk(s) to "
                           f"serial execution")

    sharded: dict[str, Any] | None = None
    if gauges.get("sharded.shards", 0):
        lag_threshold = gauges.get("sharded.config.max_watermark_lag", 0)
        shards_status: dict[str, dict[str, Any]] = {}
        for series, value in gauges.items():
            name, _, label = series.partition("{")
            if not name.startswith("sharded.shard.") or not label:
                continue
            shard = label.rstrip("}").partition("=")[2]
            entry = shards_status.setdefault(shard, {})
            entry[name.rsplit(".", 1)[1]] = value
        for shard in sorted(shards_status, key=int):
            entry = shards_status[shard]
            if entry.get("alive", 1) == 0:
                reasons.append(f"shard {shard}: dead worker")
            lag = entry.get("watermark_lag", 0)
            if lag_threshold and lag > lag_threshold:
                reasons.append(
                    f"shard {shard}: watermark lag {lag:g}s exceeds "
                    f"threshold {lag_threshold:g}s")
        sharded = {
            "shards": gauges.get("sharded.shards", 0),
            "max_watermark_lag": lag_threshold,
            "low_watermark": gauges.get("sharded.watermark.low"),
            "failovers": counters.get("sharded.failovers", 0),
            "worker_deaths": counters.get("sharded.worker_deaths", 0),
            "per_shard": shards_status,
        }

    return {"status": "degraded" if reasons else "ok",
            "reasons": reasons,
            "governor": governor,
            "supervisor": supervisor,
            "sharded": sharded}


class _Handler(BaseHTTPRequestHandler):
    """Routes the four endpoints; everything else is a JSON 404."""

    # set per-server by MetricsServer (class attribute on a subclass).
    server: "_Server"

    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        owner = self.server.owner
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        registry = owner.registry
        owner._count(path)
        if path == "/metrics":
            self._respond(200, registry.render_prometheus(),
                          "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/snapshot":
            self._json(200, registry.snapshot())
        elif path == "/timeline":
            if owner.sampler is None:
                self._json(404, {"error": "no timeline sampler attached"})
            else:
                self._json(200, owner.sampler.to_dict())
        elif path == "/health":
            report = health_report(registry.snapshot())
            self._json(200 if report["status"] == "ok" else 503, report)
        else:
            self._json(404, {"error": f"unknown path {path!r}",
                             "endpoints": ["/metrics", "/snapshot",
                                           "/timeline", "/health"]})

    def _json(self, status: int, document: dict[str, Any]) -> None:
        self._respond(status, json.dumps(document, sort_keys=True) + "\n",
                      "application/json")

    def _respond(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging; scrapes are not events."""


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # a scrape target should come back instantly after a restart.
    allow_reuse_address = True
    owner: "MetricsServer"


class MetricsServer:
    """Serves a registry (and optionally a timeline ring) over HTTP.

    Args:
        registry: the registry to expose (read-only access).
        port: TCP port; ``0`` asks the OS for a free one — read
            :attr:`port` after construction for the bound value.
        host: bind address; loopback by default — metrics can leak
            operational detail, so exposing beyond the host is an
            explicit decision.
        sampler: optional :class:`TimelineSampler` backing ``/timeline``.

    The server binds in the constructor (so a busy port fails fast,
    before the run starts) and serves from a daemon thread after
    :meth:`start`.  Scrapes are counted into the registry as
    ``export.requests{endpoint=...}``.

    Use as a context manager for deterministic teardown::

        with MetricsServer(registry, port=9100) as server:
            run_the_stream()     # curl :9100/metrics meanwhile
    """

    def __init__(self, registry: Registry, port: int, *,
                 host: str = "127.0.0.1",
                 sampler: TimelineSampler | None = None) -> None:
        if not 0 <= port <= 65535:
            raise ConfigurationError(
                f"serve-metrics port must be 0-65535, got {port}")
        self.registry = registry
        self.sampler = sampler
        try:
            self._httpd = _Server((host, port), _Handler)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot bind metrics server to {host}:{port}: "
                f"{exc}") from exc
        self._httpd.owner = self
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    def _count(self, path: str) -> None:
        endpoint = path.strip("/") or "root"
        self.registry.counter("export.requests",
                              endpoint=endpoint).inc()

    @property
    def url(self) -> str:
        """Base URL of the bound server, e.g. ``http://127.0.0.1:9100``."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Begin serving on a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-server", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
