"""The metrics registry: counters, gauges, histograms and timers.

Everything here is zero-dependency and deterministic by construction:
instruments are pure accumulators, a :class:`Registry` is a named bag of
them, and :meth:`Registry.snapshot` renders the whole bag as sorted plain
data — two registries driven through the same updates produce equal
snapshots, byte for byte once JSON-encoded.

Instrumented library code never constructs a registry; it asks for the
ambient one (:func:`get_registry`) or accepts one as a keyword argument.
The ambient default is **disabled**: every instrument it hands out is a
shared no-op singleton, so instrumentation costs one attribute call on the
hot path and allocates nothing.  Enable collection for a block of work
with::

    from repro.obs import Registry, use_registry

    registry = Registry()
    with use_registry(registry):
        run_the_pipeline()
    print(registry.render_table())

Series naming follows the Prometheus data model loosely: a *series* is a
dotted metric name plus an optional sorted label set, canonically written
``name{key=value,key2=value2}``.  :meth:`Registry.render_prometheus`
mangles dotted names into a legal ``repro_``-prefixed exposition.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Registry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "use_local_registry",
    "merge_snapshots",
    "snapshot_digest",
    "series_name",
    "split_series",
    "snapshot_to_prometheus",
    "snapshot_to_table",
]

#: default histogram buckets for second-valued timers (perf_counter spans
#: from microseconds to minutes).
TIME_BUCKETS = (0.0001, 0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)

#: default histogram buckets for small cardinalities (session lengths,
#: candidate sizes); Fibonacci-ish so short sessions resolve finely.
SIZE_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0)


def series_name(name: str, labels: dict[str, str] | None = None) -> str:
    """Canonical series key: ``name`` or ``name{k=v,...}``, labels sorted."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def split_series(series: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`series_name`.

    Raises:
        ConfigurationError: for a string that is not a canonical series
            key.
    """
    if "{" not in series:
        return series, {}
    if not series.endswith("}"):
        raise ConfigurationError(f"malformed series key {series!r}")
    name, __, inner = series[:-1].partition("{")
    labels: dict[str, str] = {}
    if inner:
        for pair in inner.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key:
                raise ConfigurationError(
                    f"malformed label {pair!r} in series {series!r}")
            labels[key] = value
    return name, labels


class Counter:
    """A monotonically increasing count (events, lines, bytes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; cannot add {amount}")
        self.value += amount


class Gauge:
    """A value that goes up and down (buffer depth, watermark lag)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket distribution (Prometheus ``le`` convention).

    ``buckets`` are ascending upper bounds; an observation lands in the
    first bucket whose bound is **>= value** (bounds are inclusive, so
    observing exactly a bucket edge counts toward that edge's bucket).
    Values above the last bound land in the implicit ``+Inf`` overflow.
    """

    __slots__ = ("buckets", "counts", "overflow", "total", "count")

    def __init__(self, buckets: tuple[float, ...] = TIME_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram buckets must be strictly ascending: {bounds}")
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.buckets, value)
        if index < len(self.buckets):
            self.counts[index] += 1
        else:
            self.overflow += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs, +Inf last."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            running += bucket_count
            pairs.append((bound, running))
        pairs.append((float("inf"), running + self.overflow))
        return pairs


class Timer:
    """Re-entrant context manager recording wall time into a histogram.

    Uses :func:`time.perf_counter`.  The same timer object may be entered
    while already active (directly or via recursion); each enter/exit pair
    records its own span, so nested timings sum to more than the outer
    span — exactly what a call-tree accounting wants.
    """

    __slots__ = ("histogram", "_starts")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._starts: list[float] = []

    def __enter__(self) -> "Timer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.histogram.observe(time.perf_counter() - self._starts.pop())


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__((1.0,))

    def observe(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_TIMER = _NullTimer(_NULL_HISTOGRAM)


class Registry:
    """A named collection of instruments, plus the optional tracer.

    Args:
        enabled: when ``False`` every accessor returns a shared no-op
            instrument and nothing is ever recorded — this is what makes
            library-wide instrumentation free by default.
        tracer: optional :class:`repro.obs.tracing.Tracer`; when present,
            :meth:`span` and :meth:`event` delegate to it.

    Instruments are created on first access and identified by
    ``(name, labels)``; repeated access returns the same object, so hot
    code can hold the instrument and skip the lookup.
    """

    def __init__(self, enabled: bool = True, tracer: Any = None) -> None:
        self.enabled = enabled
        self.tracer = tracer
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, tuple[Histogram, tuple[float, ...]]] = {}
        self._timers: dict[str, Timer] = {}

    # -- instrument accessors ---------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        if not self.enabled:
            return _NULL_COUNTER
        key = series_name(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge series ``name{labels}``."""
        if not self.enabled:
            return _NULL_GAUGE
        key = series_name(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = TIME_BUCKETS,
                  **labels: str) -> Histogram:
        """The histogram series ``name{labels}``.

        Raises:
            ConfigurationError: when an existing series is re-requested
                with different buckets.
        """
        if not self.enabled:
            return _NULL_HISTOGRAM
        key = series_name(name, labels)
        with self._lock:
            entry = self._histograms.get(key)
            if entry is None:
                instrument = Histogram(buckets)
                self._histograms[key] = (instrument, instrument.buckets)
                return instrument
            instrument, existing = entry
            if tuple(float(bound) for bound in buckets) != existing:
                raise ConfigurationError(
                    f"histogram {key!r} already exists with buckets "
                    f"{existing}; cannot re-declare with {buckets}")
            return instrument

    def timer(self, name: str,
              buckets: tuple[float, ...] = TIME_BUCKETS,
              **labels: str) -> Timer:
        """A timer recording into the histogram series ``name{labels}``."""
        if not self.enabled:
            return _NULL_TIMER
        key = series_name(name, labels)
        with self._lock:
            instrument = self._timers.get(key)
        if instrument is None:
            histogram = self.histogram(name, buckets, **labels)
            with self._lock:
                instrument = self._timers.setdefault(key, Timer(histogram))
        return instrument

    # -- tracing ----------------------------------------------------------

    def span(self, name: str, **attrs: object):
        """A tracing span context manager (no-op without a tracer)."""
        if self.tracer is None:
            return _NULL_TIMER          # a shared no-op context manager
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Emit a point-in-time trace event (no-op without a tracer)."""
        if self.tracer is not None:
            self.tracer.event(name, **attrs)

    # -- export ------------------------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter or gauge series (0 when absent)."""
        key = series_name(name, labels)
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return 0

    def series(self, name: str) -> dict[str, float]:
        """All counter/gauge series sharing ``name``: ``{key: value}``.

        Keys are full canonical series names (labels included).
        """
        found: dict[str, float] = {}
        for key, counter in self._counters.items():
            if split_series(key)[0] == name:
                found[key] = counter.value
        for key, gauge in self._gauges.items():
            if split_series(key)[0] == name:
                found[key] = gauge.value
        return found

    def snapshot(self) -> dict[str, Any]:
        """The whole registry as sorted, JSON-serializable plain data.

        The layout is stable and versioned::

            {"version": 1,
             "counters":   {series: value, ...},
             "gauges":     {series: value, ...},
             "histograms": {series: {"buckets": [[le, count], ...],
                                     "overflow": n, "sum": s,
                                     "count": c}, ...}}

        Two registries that saw the same updates snapshot identically
        (histogram ``sum`` excepted only if the observations differed —
        timers observe real durations, so compare timer series
        structurally, not by value).
        """
        with self._lock:
            counters = {key: self._counters[key].value
                        for key in sorted(self._counters)}
            gauges = {key: self._gauges[key].value
                      for key in sorted(self._gauges)}
            histograms = {}
            for key in sorted(self._histograms):
                histogram, __ = self._histograms[key]
                histograms[key] = {
                    "buckets": [[bound, count] for bound, count
                                in zip(histogram.buckets, histogram.counts)],
                    "overflow": histogram.overflow,
                    "sum": histogram.total,
                    "count": histogram.count,
                }
        return {"version": 1, "counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` document into this registry.

        This is the reconciliation step of parallel execution
        (:mod:`repro.parallel`): each worker collects into a private
        registry, and the parent merges the worker snapshots back so the
        combined registry equals the one a serial run would have produced.

        Merge semantics per instrument:

        * **counters** — added (counting is commutative across workers);
        * **histograms** — bucket counts, overflow, sum and count are
          added; the series must use the same bucket bounds;
        * **gauges** — last merged snapshot wins.  A gauge records "the
          value as of now", and snapshots are merged in deterministic
          chunk order, so the final value matches a serial run's
          last-write.

        No-op on a disabled registry.

        Raises:
            ConfigurationError: when a histogram series exists with
                different bucket bounds.
        """
        if not self.enabled:
            return
        for series, value in snapshot.get("counters", {}).items():
            name, labels = split_series(series)
            self.counter(name, **labels).inc(value)
        for series, value in snapshot.get("gauges", {}).items():
            name, labels = split_series(series)
            self.gauge(name, **labels).set(value)
        for series, data in snapshot.get("histograms", {}).items():
            name, labels = split_series(series)
            bounds = tuple(float(bound) for bound, __ in data["buckets"])
            histogram = self.histogram(name, bounds, **labels)
            with self._lock:
                for index, (__, count) in enumerate(data["buckets"]):
                    histogram.counts[index] += count
                histogram.overflow += data.get("overflow", 0)
                histogram.total += data.get("sum", 0.0)
                histogram.count += data.get("count", 0)

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the current state."""
        return snapshot_to_prometheus(self.snapshot())

    def render_table(self) -> str:
        """Human-readable table of the current state."""
        return snapshot_to_table(self.snapshot())


def _prom_name(name: str) -> str:
    """Mangle a dotted series name into a legal Prometheus metric name."""
    mangled = "".join(ch if ch.isalnum() or ch == "_" else "_"
                      for ch in name)
    return f"repro_{mangled}"


def _prom_series(series: str) -> str:
    """Render one canonical series key as a Prometheus sample name."""
    name, labels = split_series(series)
    base = _prom_name(name)
    if not labels:
        return base
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{base}{{{inner}}}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def snapshot_to_prometheus(snapshot: dict[str, Any]) -> str:
    """Render a :meth:`Registry.snapshot` document as Prometheus text.

    Works on any snapshot — live or loaded back from a JSON file — so the
    ``repro stats`` CLI can convert between formats offline.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def declare(series: str, kind: str) -> None:
        base = _prom_name(split_series(series)[0])
        if base not in typed:
            typed.add(base)
            lines.append(f"# TYPE {base} {kind}")

    for series, value in snapshot.get("counters", {}).items():
        declare(series, "counter")
        lines.append(f"{_prom_series(series)} {_format_value(value)}")
    for series, value in snapshot.get("gauges", {}).items():
        declare(series, "gauge")
        lines.append(f"{_prom_series(series)} {_format_value(value)}")
    for series, data in snapshot.get("histograms", {}).items():
        declare(series, "histogram")
        name, labels = split_series(series)
        base = _prom_name(name)
        running = 0
        for bound, count in data["buckets"]:
            running += count
            bucket_labels = dict(labels, le=repr(float(bound)))
            inner = ",".join(f'{key}="{bucket_labels[key]}"'
                             for key in sorted(bucket_labels))
            lines.append(f"{base}_bucket{{{inner}}} {running}")
        running += data.get("overflow", 0)
        inf_labels = dict(labels, le="+Inf")
        inner = ",".join(f'{key}="{inf_labels[key]}"'
                         for key in sorted(inf_labels))
        lines.append(f"{base}_bucket{{{inner}}} {running}")
        suffix = ""
        if labels:
            inner = ",".join(f'{key}="{labels[key]}"'
                             for key in sorted(labels))
            suffix = f"{{{inner}}}"
        lines.append(f"{base}_sum{suffix} {_format_value(data['sum'])}")
        lines.append(f"{base}_count{suffix} {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_to_table(snapshot: dict[str, Any]) -> str:
    """Render a snapshot as an aligned two-column text table.

    Counters and gauges print their value; histograms print
    ``count=N sum=S mean=M`` so durations read at a glance.
    """
    rows: list[tuple[str, str]] = []
    for series, value in snapshot.get("counters", {}).items():
        rows.append((series, _format_value(value)))
    for series, value in snapshot.get("gauges", {}).items():
        rows.append((series, _format_value(value)))
    for series, data in snapshot.get("histograms", {}).items():
        count = data["count"]
        mean = data["sum"] / count if count else 0.0
        rows.append((series,
                     f"count={count} sum={data['sum']:.6g} "
                     f"mean={mean:.6g}"))
    if not rows:
        return "(no metrics recorded)\n"
    rows.sort()
    width = max(len(series) for series, __ in rows)
    return "".join(f"{series:<{width}}  {value}\n"
                   for series, value in rows)


#: The registry instrumented code sees when none is injected.  Disabled —
#: all instruments are shared no-ops — until :func:`set_registry` or
#: :func:`use_registry` replaces it.
NULL_REGISTRY = Registry(enabled=False)

_ACTIVE = NULL_REGISTRY

#: per-thread ambient override; lets parallel worker threads collect into
#: private registries without racing on the process-global one.
_LOCAL = threading.local()


def get_registry() -> Registry:
    """The ambient registry.

    Resolution order: the calling thread's local override (installed by
    :func:`use_local_registry`), then the process-global registry
    (:func:`set_registry`), then the disabled default.
    """
    local = getattr(_LOCAL, "registry", None)
    return local if local is not None else _ACTIVE


def set_registry(registry: Registry | None) -> Registry:
    """Install ``registry`` as the process-global ambient one; returns the
    previous.

    ``None`` restores the disabled default.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: Registry) -> Iterator[Registry]:
    """Scoped :func:`set_registry`: installs on enter, restores on exit."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


@contextmanager
def use_local_registry(registry: Registry) -> Iterator[Registry]:
    """Scoped *thread-local* ambient registry.

    Only the calling thread sees ``registry``; every other thread keeps
    resolving the process-global one.  This is how
    :mod:`repro.parallel` gives each worker an isolated registry whose
    snapshot is merged back into the parent
    (:meth:`Registry.merge_snapshot`) — it works identically for worker
    threads and for the main thread of a worker process.
    """
    previous = getattr(_LOCAL, "registry", None)
    _LOCAL.registry = registry
    try:
        yield registry
    finally:
        _LOCAL.registry = previous


def snapshot_digest(document: dict[str, Any]) -> str:
    """SHA-256 hex digest of a document's canonical JSON encoding.

    Canonical means sorted keys and compact separators, so two equal
    documents digest identically regardless of insertion order.  Used to
    integrity-stamp registry snapshots and checkpoint units
    (:mod:`repro.parallel.checkpoint`) so a torn or bit-rotted file is
    detected instead of silently resumed from.
    """
    import hashlib
    import json

    payload = json.dumps(document, sort_keys=True,
                         separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def merge_snapshots(*snapshots: dict[str, Any]) -> dict[str, Any]:
    """Merge several :meth:`Registry.snapshot` documents into one.

    Documents are merged in argument order with
    :meth:`Registry.merge_snapshot` semantics (counters and histograms
    add, gauges last-write).  Useful for combining the per-worker
    snapshots of a sharded run offline — ``repro stats --snapshot`` does
    exactly this when given several files.
    """
    merged = Registry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()
