"""Trace analysis: span trees, critical paths and folded stacks.

The tracer (:mod:`repro.obs.tracing`) writes flat JSON-lines records —
one span per line, children before parents because spans serialize on
close.  This module turns that stream back into the tree it came from
and answers the operator's questions: *where did the time go, which
chain of stages bounds the wall clock, and what would a flamegraph
show?*

Definitions (all exact, no sampling):

inclusive time
    A span's own ``dur_s`` — everything that happened between its open
    and close, children included.
exclusive time (self time)
    Inclusive time minus the sum of the direct children's inclusive
    times.  The tracer's span stack is single-threaded, so children
    nest sequentially inside their parent and exclusive time telescopes:
    **the root's inclusive time equals the sum of every span's exclusive
    time in its tree, exactly** — the identity ``repro trace analyze``
    reports and the tests pin.
critical path
    The chain from the root obtained by always descending into the
    child with the largest inclusive time — through
    ``cli.reconstruct`` → phase1 → phase2 → heuristic spans, this names
    the stage chain that bounds the wall clock.  Splitting every span's
    exclusive time into *on-path* and *off-path* gives
    ``root inclusive == critical + idle`` exactly.

Folded-stack output is one line per span — ``root;child;leaf N`` with
``N`` the exclusive time in integer microseconds — directly consumable
by ``flamegraph.pl`` or speedscope.  Spans carrying ``chunk``/``attempt``
attributes (the supervisor's retry attribution) render as
``name[chunk=3,attempt=1]`` so a retried chunk is distinguishable from
its first attempt.

CLI surface: ``repro trace analyze FILE [--folded OUT] [--top N]``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, TextIO

from repro.exceptions import TraceError

__all__ = [
    "SpanNode",
    "TraceReport",
    "parse_trace",
    "build_span_forest",
    "analyze_trace",
]

#: span attributes appended to display names, in this order — the
#: supervisor's chunk/attempt attribution plus the heuristic label.
_NAME_ATTRS = ("heuristic", "chunk", "attempt")


class SpanNode:
    """One span with its children re-attached.

    Attributes mirror the trace record (``name``, ``id``, ``parent``,
    ``ts``, ``dur_s``, ``attrs``, ``error``); ``children`` are ordered by
    span id, which is opening order, and ``events`` are the point-in-time
    records that named this span as theirs.
    """

    __slots__ = ("name", "id", "parent", "ts", "dur_s", "attrs", "error",
                 "children", "events")

    def __init__(self, record: dict[str, Any]) -> None:
        self.name: str = record["name"]
        self.id: int = record["id"]
        self.parent: int | None = record.get("parent")
        self.ts: float = record.get("ts", 0.0)
        self.dur_s: float = record.get("dur_s", 0.0)
        self.attrs: dict[str, Any] = record.get("attrs") or {}
        self.error: str | None = record.get("error")
        self.children: list["SpanNode"] = []
        self.events: list[dict[str, Any]] = []

    @property
    def inclusive(self) -> float:
        """Wall seconds between open and close, children included."""
        return self.dur_s

    @property
    def exclusive(self) -> float:
        """Self time: inclusive minus the children's inclusive sum.

        Not clamped at zero — with sequential children the value is
        non-negative up to clock granularity, and keeping the raw
        arithmetic is what makes exclusive times telescope exactly back
        to the root's inclusive time.
        """
        return self.dur_s - sum(child.dur_s for child in self.children)

    @property
    def display_name(self) -> str:
        """``name`` plus identifying attrs: ``parallel.chunk[chunk=3,attempt=1]``."""
        parts = [f"{key}={self.attrs[key]}" for key in _NAME_ATTRS
                 if key in self.attrs]
        if self.error:
            parts.append("error")
        return f"{self.name}[{','.join(parts)}]" if parts else self.name

    def walk(self) -> Iterable["SpanNode"]:
        """Yield this node and every descendant, depth-first, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()


def parse_trace(lines: Iterable[str]) -> list[dict[str, Any]]:
    """Parse JSON-lines trace records (blank lines skipped).

    Raises:
        TraceError: for a line that is not a JSON object or a span
            record missing its required fields.
    """
    records: list[dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceError(
                f"trace line {number} is not valid JSON: {exc}") from exc
        if not isinstance(record, dict) or "type" not in record:
            raise TraceError(
                f"trace line {number} is not a trace record: {text[:80]!r}")
        if record["type"] == "span":
            for field in ("name", "id", "dur_s"):
                if field not in record:
                    raise TraceError(
                        f"span record on line {number} is missing "
                        f"{field!r}")
        records.append(record)
    return records


def build_span_forest(records: Iterable[dict[str, Any]]) -> list[SpanNode]:
    """Reassemble flat trace records into root span trees.

    Children are re-attached to their parents and ordered by id
    (opening order); events are attached to the span they name.  Returns
    the roots in opening order — a CLI trace has exactly one
    (``cli.<command>``), but a concatenation of traces is a forest and
    analyzes fine.

    Raises:
        TraceError: for duplicate span ids, a child naming an unknown
            parent, or an event naming an unknown span.
    """
    nodes: dict[int, SpanNode] = {}
    events: list[dict[str, Any]] = []
    for record in records:
        if record.get("type") == "span":
            node = SpanNode(record)
            if node.id in nodes:
                raise TraceError(f"duplicate span id {node.id}")
            nodes[node.id] = node
        elif record.get("type") == "event":
            events.append(record)
    roots: list[SpanNode] = []
    for node in sorted(nodes.values(), key=lambda n: n.id):
        if node.parent is None:
            roots.append(node)
        else:
            parent = nodes.get(node.parent)
            if parent is None:
                raise TraceError(
                    f"span {node.id} ({node.name!r}) references unknown "
                    f"parent {node.parent}")
            parent.children.append(node)
    for event in events:
        span_id = event.get("span")
        if span_id is not None:
            if span_id not in nodes:
                raise TraceError(
                    f"event {event.get('name')!r} references unknown "
                    f"span {span_id}")
            nodes[span_id].events.append(event)
    return roots


def _critical_path(root: SpanNode) -> list[SpanNode]:
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda child: child.dur_s)
        path.append(node)
    return path


class TraceReport:
    """The analysis of one span forest.

    Attributes:
        roots: the reconstructed root spans.
        total_seconds: summed inclusive time of the roots — total traced
            wall time.
        critical_path: the heaviest-child chain of the heaviest root.
        critical_seconds: summed exclusive time *on* that chain.
        idle_seconds: summed exclusive time off the chain (in the same
            tree), so ``critical + idle == heaviest root inclusive``
            exactly.
    """

    def __init__(self, roots: list[SpanNode]) -> None:
        if not roots:
            raise TraceError("trace contains no spans")
        self.roots = roots
        self.total_seconds = sum(root.dur_s for root in roots)
        heaviest = max(roots, key=lambda root: root.dur_s)
        self.heaviest_root = heaviest
        self.critical_path = _critical_path(heaviest)
        on_path = {id(node) for node in self.critical_path}
        self.critical_seconds = sum(node.exclusive
                                    for node in self.critical_path)
        self.idle_seconds = sum(node.exclusive for node in heaviest.walk()
                                if id(node) not in on_path)

    def spans(self) -> Iterable[SpanNode]:
        """Every span in the forest, depth-first."""
        for root in self.roots:
            yield from root.walk()

    def by_name(self) -> list[dict[str, Any]]:
        """Per-display-name aggregate rows, heaviest exclusive first."""
        rows: dict[str, dict[str, Any]] = {}
        for node in self.spans():
            row = rows.setdefault(node.display_name, {
                "name": node.display_name, "count": 0,
                "inclusive_s": 0.0, "exclusive_s": 0.0, "errors": 0})
            row["count"] += 1
            row["inclusive_s"] += node.inclusive
            row["exclusive_s"] += node.exclusive
            row["errors"] += 1 if node.error else 0
        return sorted(rows.values(),
                      key=lambda row: (-row["exclusive_s"], row["name"]))

    def folded(self) -> list[str]:
        """Folded-stack lines: ``root;child;leaf <exclusive µs>``.

        One line per span (zero-weight spans included, so every stack
        that existed appears), ready for ``flamegraph.pl``.
        """
        lines: list[str] = []

        def descend(node: SpanNode, prefix: str) -> None:
            stack = (f"{prefix};{node.display_name}" if prefix
                     else node.display_name)
            lines.append(f"{stack} {max(0, round(node.exclusive * 1e6))}")
            for child in node.children:
                descend(child, stack)

        for root in self.roots:
            descend(root, "")
        return lines

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready report (``repro trace analyze --json``)."""
        return {
            "version": 1,
            "spans": sum(1 for _ in self.spans()),
            "roots": [root.display_name for root in self.roots],
            "total_seconds": self.total_seconds,
            "critical_path": [
                {"name": node.display_name, "inclusive_s": node.inclusive,
                 "exclusive_s": node.exclusive}
                for node in self.critical_path],
            "critical_seconds": self.critical_seconds,
            "idle_seconds": self.idle_seconds,
            "by_name": self.by_name(),
        }

    def render(self, top: int = 10) -> str:
        """Human-readable report: identity line, critical path, top table."""
        heaviest = self.heaviest_root
        lines = [
            f"trace: {sum(1 for _ in self.spans())} spans, "
            f"{len(self.roots)} root(s), total {self.total_seconds:.6f}s",
            f"identity: root inclusive {heaviest.dur_s:.6f}s == "
            f"critical {self.critical_seconds:.6f}s "
            f"+ idle {self.idle_seconds:.6f}s",
            "critical path:",
        ]
        for node in self.critical_path:
            lines.append(f"  {node.display_name:<40} "
                         f"incl {node.inclusive * 1e3:10.3f}ms  "
                         f"self {node.exclusive * 1e3:10.3f}ms")
        lines.append(f"top spans by self time (showing <= {top}):")
        for row in self.by_name()[:max(0, top)]:
            flag = "  !" if row["errors"] else ""
            lines.append(f"  {row['name']:<40} x{row['count']:<5d} "
                         f"self {row['exclusive_s'] * 1e3:10.3f}ms  "
                         f"incl {row['inclusive_s'] * 1e3:10.3f}ms{flag}")
        return "\n".join(lines)


def analyze_trace(source: str | TextIO | Iterable[str]) -> TraceReport:
    """Parse and analyze a JSON-lines trace.

    Args:
        source: a path to a trace file, or any iterable of lines
            (an open file, a list from :class:`~repro.obs.tracing.
            ListSink` rendered to JSON, ...).

    Raises:
        TraceError: when the trace cannot be parsed or holds no spans.
        OSError: when a path cannot be read.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            records = parse_trace(handle)
    else:
        records = parse_trace(source)
    return TraceReport(build_span_forest(records))
