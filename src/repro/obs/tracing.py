"""Lightweight span tracing with a JSON-lines event log.

A :class:`Tracer` writes one JSON object per line to any ``write``-able
sink (an open file, ``sys.stderr``, an in-memory list via
:class:`ListSink`).  Two record types exist:

``span``
    Emitted when a span *closes*: name, wall-clock start (``ts``, Unix
    seconds), monotonic duration (``dur_s``), its id, its parent span's id
    (``null`` at top level) and the free-form attributes it was opened
    with.  Spans nest via a per-tracer stack, so the parent chain encodes
    the call tree; because a span is written on close, children appear
    *before* their parent in the file (leaf-first order — sort by ``id``
    to recover opening order).

``event``
    A point-in-time marker: name, ``ts``, the enclosing span's id and
    attributes.

The format is deliberately boring — ``jq`` and a text editor are the
intended consumers::

    {"type": "event", "name": "follow.rotation", "ts": ..., "span": 3, ...}
    {"type": "span", "name": "ingest", "id": 3, "parent": 1, "dur_s": ...}

Spans are single-threaded per tracer (the stack is not thread-local); give
each worker its own tracer when fanning out.
"""

from __future__ import annotations

import json
import time
from typing import IO, Any

__all__ = ["Tracer", "ListSink"]


class ListSink:
    """An in-memory sink collecting each JSON line as a parsed dict."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def write(self, text: str) -> None:
        for line in text.splitlines():
            if line.strip():
                self.records.append(json.loads(line))

    def flush(self) -> None:
        pass


class _Span:
    """Context manager for one traced span (created by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent",
                 "_start", "_wall")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent: int | None = None
        self._start = 0.0
        self._wall = 0.0

    def __enter__(self) -> "_Span":
        self.span_id = self._tracer._next_id()
        self.parent = self._tracer._current()
        self._tracer._push(self.span_id)
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        duration = time.perf_counter() - self._start
        self._tracer._pop()
        record: dict[str, Any] = {
            "type": "span", "name": self.name, "id": self.span_id,
            "parent": self.parent, "ts": self._wall,
            "dur_s": duration,
        }
        if exc_type is not None:
            record["error"] = getattr(exc_type, "__name__", str(exc_type))
        if self.attrs:
            record["attrs"] = self.attrs
        self._tracer._emit(record)


class Tracer:
    """Writes span/event records to ``sink`` as JSON lines.

    Args:
        sink: anything with ``write(str)`` — an open text file,
            ``sys.stderr``, or a :class:`ListSink`.
        flush: call ``sink.flush()`` after every record (default on, so a
            crash loses at most the open spans).
    """

    def __init__(self, sink: IO[str] | ListSink, flush: bool = True) -> None:
        self._sink = sink
        self._flush = flush
        self._stack: list[int] = []
        self._ids = 0

    def span(self, name: str, **attrs: object) -> _Span:
        """Open a span; use as a context manager."""
        return _Span(self, name, dict(attrs))

    def event(self, name: str, **attrs: object) -> None:
        """Emit one point-in-time event under the current span."""
        record: dict[str, Any] = {
            "type": "event", "name": name, "ts": time.time(),
            "span": self._current(),
        }
        if attrs:
            record["attrs"] = dict(attrs)
        self._emit(record)

    # -- internals used by _Span ------------------------------------------

    def _next_id(self) -> int:
        self._ids += 1
        return self._ids

    def _current(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def _push(self, span_id: int) -> None:
        self._stack.append(span_id)

    def _pop(self) -> None:
        if self._stack:
            self._stack.pop()

    def _emit(self, record: dict[str, Any]) -> None:
        self._sink.write(json.dumps(record, sort_keys=True) + "\n")
        if self._flush:
            flush = getattr(self._sink, "flush", None)
            if flush is not None:
                flush()
