"""repro.obs — unified metrics and tracing for the whole pipeline.

The observability layer the rest of the library is instrumented against:

* :mod:`repro.obs.registry` — a zero-dependency metrics registry
  (counters, gauges, fixed-bucket histograms, ``perf_counter`` timers)
  with Prometheus text exposition, deterministic JSON snapshots and a
  human-readable table rendering;
* :mod:`repro.obs.tracing` — span-based tracing emitting structured
  JSON-lines events.

The ambient registry (:func:`get_registry`) is process-global but
injectable, and **disabled by default**: instrumented code paths cost one
no-op method call until a caller opts in::

    from repro.obs import Registry, use_registry

    registry = Registry()
    with use_registry(registry):
        records = ingest_clf_file("access.log", policy="repair")
        sessions = SmartSRA(site).reconstruct(requests)
    print(registry.render_table())           # or .render_prometheus()
    json.dump(registry.snapshot(), open("metrics.json", "w"))

Every ``repro`` CLI subcommand exposes the same thing via ``--metrics
FILE`` and ``--trace FILE``; ``repro stats --snapshot FILE`` renders a
saved snapshot.  The metric catalog lives in ``docs/observability.md``.
"""

from repro.obs.registry import (
    NULL_REGISTRY,
    SIZE_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Timer,
    get_registry,
    merge_snapshots,
    series_name,
    snapshot_digest,
    set_registry,
    snapshot_to_prometheus,
    snapshot_to_table,
    split_series,
    use_local_registry,
    use_registry,
)
from repro.obs.baseline import (
    BaselineReport,
    build_baseline,
    compare_to_baseline,
    derive_metrics,
    load_sidecars,
)
from repro.obs.export import MetricsServer, health_report
from repro.obs.spans import (
    SpanNode,
    TraceReport,
    analyze_trace,
    build_span_forest,
    parse_trace,
)
from repro.obs.timeline import (
    TelemetryAudit,
    TimelinePoint,
    TimelineSampler,
    audit_telemetry_config,
    histogram_quantile,
)
from repro.obs.tracing import ListSink, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Registry",
    "NULL_REGISTRY",
    "TIME_BUCKETS",
    "SIZE_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "use_local_registry",
    "merge_snapshots",
    "snapshot_digest",
    "series_name",
    "split_series",
    "snapshot_to_prometheus",
    "snapshot_to_table",
    "Tracer",
    "ListSink",
    "TimelineSampler",
    "TimelinePoint",
    "TelemetryAudit",
    "audit_telemetry_config",
    "histogram_quantile",
    "MetricsServer",
    "health_report",
    "SpanNode",
    "TraceReport",
    "analyze_trace",
    "build_span_forest",
    "parse_trace",
    "BaselineReport",
    "build_baseline",
    "compare_to_baseline",
    "derive_metrics",
    "load_sidecars",
]
