"""Time-series sampling: the registry's history, not just its totals.

A :class:`Registry` answers "how many so far"; operating a long-running
stream needs "how fast *right now*" and "what did the last ten minutes
look like".  :class:`TimelineSampler` bridges the two without touching
the hot path: on a configurable interval (a daemon thread, or explicit
:meth:`~TimelineSampler.sample` calls from tests) it snapshots selected
counter/gauge values and histogram quantiles into a fixed-capacity ring
buffer.  The instrumented code never knows the sampler exists — cost is
one registry snapshot per tick, zero when no sampler is installed.

The ring holds :class:`TimelinePoint` rows (timestamp + sampled values);
:meth:`TimelineSampler.to_dict` exports it as deterministic JSON with
per-interval counter **deltas and rates** derived on the way out, so a
consumer sees ``governor.evicted_requests`` both as a running total and
as an evictions-per-second series.  Invariants the property tests pin:

* the ring never exceeds ``capacity`` points (old points are evicted and
  counted, never silently lost);
* timestamps are strictly increasing;
* for every counter series, the per-interval deltas over the retained
  window sum exactly to ``last - first`` — rates always reconcile with
  the totals they were derived from.

Example::

    registry = Registry()
    sampler = TimelineSampler(registry, interval=1.0, capacity=600)
    sampler.start()
    with use_registry(registry):
        run_the_stream()
    sampler.stop()
    json.dump(sampler.to_dict(), open("timeline.json", "w"))
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from repro.exceptions import ConfigurationError
from repro.obs.registry import Registry

__all__ = [
    "TimelinePoint",
    "TimelineSampler",
    "histogram_quantile",
    "TelemetryAudit",
    "audit_telemetry_config",
]

#: quantiles sampled from every selected histogram series.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)

#: deterministic planning cost of one timeline point, bytes — a model
#: constant like ``governor.request_cost``, not ``sys.getsizeof``: the
#: doctor audit must reach the same verdict on every platform.
POINT_BASE_COST = 96
SERIES_COST = 48

#: sampling intervals below this are almost certainly a misconfiguration
#: (the snapshot lock would be contended harder than the work it
#: observes); ``repro doctor`` warns below it.
MIN_SANE_INTERVAL = 0.010


def histogram_quantile(data: dict[str, Any], quantile: float) -> float:
    """Estimate a quantile from a snapshot histogram document.

    Standard Prometheus-style estimation: find the bucket the target rank
    lands in and interpolate linearly inside it (the first bucket
    interpolates from 0, the overflow bucket returns the largest finite
    bound — the honest answer when the value escaped the buckets).
    Returns 0.0 for an empty histogram.

    Raises:
        ConfigurationError: for a quantile outside ``(0, 1)``.
    """
    if not 0 < quantile < 1:
        raise ConfigurationError(
            f"quantile must be in (0, 1), got {quantile}")
    total = data.get("count", 0)
    if not total:
        return 0.0
    rank = quantile * total
    running = 0
    previous_bound = 0.0
    for bound, count in data.get("buckets", ()):
        if count:
            if running + count >= rank:
                fraction = (rank - running) / count
                return previous_bound + (bound - previous_bound) * fraction
            running += count
        previous_bound = bound
    # rank lands in the +Inf overflow: report the last finite bound.
    buckets = data.get("buckets", ())
    return float(buckets[-1][0]) if buckets else 0.0


class TimelinePoint:
    """One sampled instant: timestamp plus the selected series values."""

    __slots__ = ("timestamp", "counters", "gauges", "quantiles")

    def __init__(self, timestamp: float, counters: dict[str, float],
                 gauges: dict[str, float],
                 quantiles: dict[str, dict[str, float]]) -> None:
        self.timestamp = timestamp
        self.counters = counters
        self.gauges = gauges
        self.quantiles = quantiles


class TimelineSampler:
    """Samples a registry into a bounded ring of timeline points.

    Args:
        registry: the :class:`Registry` to observe.
        interval: seconds between daemon-thread samples
            (:meth:`start`); irrelevant when driving :meth:`sample`
            manually.
        capacity: maximum retained points; the oldest point is evicted
            (and counted in :attr:`evicted`) when a new one arrives at
            capacity.
        prefixes: series-name prefixes to retain (e.g. ``("stream.",
            "governor.")``); ``None`` retains every series.  Histogram
            series matching a prefix contribute quantile samples.
        quantiles: quantiles sampled per histogram series.

    The sampler itself records two series into the observed registry —
    ``timeline.samples`` (ticks taken) and ``timeline.evicted`` (points
    displaced from the ring) — so the timeline is visible in the very
    exports it powers.

    Raises:
        ConfigurationError: for a non-positive interval or capacity, or
            an out-of-range quantile.
    """

    def __init__(self, registry: Registry, *, interval: float = 1.0,
                 capacity: int = 600,
                 prefixes: tuple[str, ...] | None = None,
                 quantiles: tuple[float, ...] = DEFAULT_QUANTILES) -> None:
        if interval <= 0:
            raise ConfigurationError(
                f"sampling interval must be positive, got {interval}")
        if capacity < 2:
            raise ConfigurationError(
                f"timeline capacity must be >= 2 (deltas need two "
                f"points), got {capacity}")
        for quantile in quantiles:
            if not 0 < quantile < 1:
                raise ConfigurationError(
                    f"quantile must be in (0, 1), got {quantile}")
        self.registry = registry
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.prefixes = tuple(prefixes) if prefixes is not None else None
        self.quantiles = tuple(quantiles)
        self._ring: deque[TimelinePoint] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._last_ts = float("-inf")
        self.evicted = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._m_samples = registry.counter("timeline.samples")
        self._m_evicted = registry.counter("timeline.evicted")

    # -- selection ---------------------------------------------------------

    def _selected(self, series: str) -> bool:
        if self.prefixes is None:
            return True
        return series.startswith(self.prefixes)

    # -- sampling ----------------------------------------------------------

    def sample(self, timestamp: float | None = None) -> TimelinePoint:
        """Take one sample; returns the appended point.

        Args:
            timestamp: explicit sample time (tests); defaults to
                ``time.time()``.  Must exceed the previous point's
                timestamp — the ring's timestamps are strictly
                increasing by construction.

        Raises:
            ConfigurationError: for a timestamp that does not advance.
        """
        now = time.time() if timestamp is None else float(timestamp)
        snapshot = self.registry.snapshot()
        counters = {series: value
                    for series, value in snapshot["counters"].items()
                    if self._selected(series)}
        gauges = {series: value
                  for series, value in snapshot["gauges"].items()
                  if self._selected(series)}
        quantiles = {
            series: {f"p{quantile * 100:g}":
                     histogram_quantile(data, quantile)
                     for quantile in self.quantiles}
            for series, data in snapshot["histograms"].items()
            if self._selected(series)}
        point = TimelinePoint(now, counters, gauges, quantiles)
        with self._lock:
            if now <= self._last_ts:
                raise ConfigurationError(
                    f"timeline sample at t={now} does not advance past "
                    f"the previous point at t={self._last_ts}")
            self._last_ts = now
            if len(self._ring) == self.capacity:
                self.evicted += 1
                self._m_evicted.inc()
            self._ring.append(point)
        self._m_samples.inc()
        return point

    # -- the daemon thread -------------------------------------------------

    def start(self) -> "TimelineSampler":
        """Begin sampling every ``interval`` seconds on a daemon thread."""
        if self._thread is not None:
            return self
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.sample()
                except ConfigurationError:
                    # a clock step backwards (NTP) makes one tick
                    # unrecordable; the next tick resumes normally.
                    continue

        self._thread = threading.Thread(target=run, name="repro-timeline",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the daemon thread (no-op when never started)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    # -- export ------------------------------------------------------------

    def points(self) -> list[TimelinePoint]:
        """The retained points, oldest first (a consistent copy)."""
        with self._lock:
            return list(self._ring)

    def to_dict(self) -> dict[str, Any]:
        """The ring as sorted, JSON-serializable plain data.

        Layout (stable and versioned)::

            {"version": 1, "capacity": C, "evicted": E,
             "interval_seconds": I,
             "timestamps": [t0, t1, ...],
             "counters":  {series: [v0, v1, ...], ...},
             "gauges":    {series: [v0, v1, ...], ...},
             "quantiles": {series: {"p50": [...], ...}, ...},
             "deltas":    {series: [v1-v0, ...], ...},
             "rates":     {series: [(v1-v0)/(t1-t0), ...], ...}}

        A series absent at some points (created mid-run) reads 0 before
        its first appearance, so every value list has one entry per
        timestamp and every delta list exactly one fewer.
        """
        points = self.points()
        timestamps = [point.timestamp for point in points]
        counter_names = sorted({series for point in points
                                for series in point.counters})
        gauge_names = sorted({series for point in points
                              for series in point.gauges})
        quantile_names = sorted({series for point in points
                                 for series in point.quantiles})
        counters = {series: [point.counters.get(series, 0)
                             for point in points]
                    for series in counter_names}
        gauges = {series: [point.gauges.get(series, 0)
                           for point in points]
                  for series in gauge_names}
        quantiles: dict[str, dict[str, list[float]]] = {}
        for series in quantile_names:
            labels = sorted({label for point in points
                             for label in point.quantiles.get(series, ())})
            quantiles[series] = {
                label: [point.quantiles.get(series, {}).get(label, 0.0)
                        for point in points]
                for label in labels}
        deltas = {series: [values[i + 1] - values[i]
                           for i in range(len(values) - 1)]
                  for series, values in counters.items()}
        rates = {}
        for series, series_deltas in deltas.items():
            rates[series] = [
                series_deltas[i] / (timestamps[i + 1] - timestamps[i])
                for i in range(len(series_deltas))]
        return {"version": 1, "capacity": self.capacity,
                "evicted": self.evicted,
                "interval_seconds": self.interval,
                "timestamps": timestamps,
                "counters": counters, "gauges": gauges,
                "quantiles": quantiles,
                "deltas": deltas, "rates": rates}


# -- configuration audit (repro doctor) -------------------------------------


class TelemetryAudit:
    """Outcome of auditing a telemetry configuration (``repro doctor``).

    Same shape as the governor's :class:`~repro.streaming.governor.
    OverloadAudit`: ``(level, message)`` conclusions with levels ``ok`` /
    ``warn`` / ``FAIL``, advisory warnings, failing verdict only on
    configurations that cannot work.
    """

    def __init__(self, checks: list[tuple[str, str]]) -> None:
        self.checks = checks

    @property
    def ok(self) -> bool:
        """True when no check failed (warnings are advisory)."""
        return all(level != "FAIL" for level, _ in self.checks)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (``repro doctor --json``)."""
        return {"checks": [{"level": level, "message": message}
                           for level, message in self.checks],
                "ok": self.ok}

    def render(self) -> str:
        """Human-readable audit, one conclusion per line."""
        lines = ["telemetry configuration:"]
        for level, message in self.checks:
            lines.append(f"  {level:<4}  {message}")
        lines.append(f"  verdict: {'ok' if self.ok else 'DEGRADED'}")
        return "\n".join(lines)


def estimate_timeline_bytes(capacity: int, series: int = 24) -> int:
    """Deterministic planning estimate of a full ring's memory, bytes."""
    return capacity * (POINT_BASE_COST + series * SERIES_COST)


def audit_telemetry_config(*, interval: float | None = None,
                           capacity: int | None = None,
                           port: int | None = None,
                           memory_budget: int | None = None,
                           typical_series: int = 24) -> TelemetryAudit:
    """Audit a live-telemetry configuration for operational sanity.

    Catches the legal-but-degenerate setups: a sampling interval so short
    the snapshot lock fights the pipeline it watches, a ``--serve-metrics``
    port that needs root, a timeline ring whose full size would dwarf the
    streaming governor's own memory budget.

    Args:
        interval: ``--timeline-interval`` seconds (``None`` = unaudited).
        capacity: ``--timeline-capacity`` points.
        port: ``--serve-metrics`` port.
        memory_budget: the governor's byte budget when one is configured
            alongside; the timeline ring should be small next to it.
        typical_series: planning estimate of series retained per point.
    """
    checks: list[tuple[str, str]] = []
    if interval is not None:
        if interval <= 0:
            checks.append(("FAIL", f"sampling interval {interval:g}s is "
                                   f"not positive"))
        elif interval < MIN_SANE_INTERVAL:
            checks.append(
                ("warn", f"sampling interval {interval:g}s is below "
                         f"{MIN_SANE_INTERVAL:g}s; each tick snapshots "
                         f"the whole registry under its lock — expect "
                         f"measurable hot-path contention"))
        else:
            checks.append(("ok", f"sampling interval {interval:g}s"))
    if port is not None:
        if not 0 <= port <= 65535:
            checks.append(("FAIL", f"serve-metrics port {port} is outside "
                                   f"0-65535"))
        elif 0 < port < 1024:
            checks.append(
                ("warn", f"serve-metrics port {port} is privileged "
                         f"(< 1024); binding requires elevated rights — "
                         f"use a port >= 1024"))
        else:
            checks.append(("ok", f"serve-metrics port {port}"))
    if capacity is not None:
        ring_bytes = estimate_timeline_bytes(capacity, typical_series)
        if memory_budget is not None and ring_bytes > memory_budget:
            checks.append(
                ("warn", f"timeline capacity {capacity} retains "
                         f"~{ring_bytes}B (at ~{typical_series} series), "
                         f"over the governor's {memory_budget}B budget — "
                         f"the telemetry would outweigh the state it "
                         f"watches; lower the capacity or widen the "
                         f"interval"))
        else:
            checks.append(
                ("ok", f"timeline capacity {capacity} retains "
                       f"~{ring_bytes}B (at ~{typical_series} series)"))
    if not checks:
        checks.append(("ok", "nothing to audit (no telemetry flags given)"))
    return TelemetryAudit(checks)
