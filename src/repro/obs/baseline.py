"""Perf-baseline tracking: turn bench sidecars into an enforced ratchet.

``pytest benchmarks/ --emit-metrics`` leaves one snapshot sidecar per
bench module in ``benchmarks/results/*.metrics.json``.  This module
reduces each sidecar to scalar **derived metrics**, records them in a
committed ``BENCH_BASELINE.json``, and compares a fresh run against that
baseline with configurable thresholds — ``repro bench-diff`` exits
non-zero on regression, so a perf cliff fails CI instead of landing
silently.

Derived metrics per sidecar:

* every counter, verbatim (``stream.requests.fed`` → 150000);
* ``<series>:mean`` for every histogram — mean observation;
* ``<series>:rate`` for every ``.seconds`` histogram with a positive
  sum — observations per wall second, the throughput number.

Regression semantics are directional: a ``:rate`` metric regresses by
**dropping** more than the threshold (throughput fell), a ``.seconds``
``:mean`` regresses by **rising** more than the threshold (latency
grew).  Counters carry workload shape, not speed — they are compared
only as *drift* (informational) and never fail the diff; structural
absence of a whole metric does.  ``--quick`` mode (CI on shrunken
workloads) checks structure only: every baselined bench has a sidecar
and every baselined metric still derives from it, values ignored.
"""

from __future__ import annotations

import json
import os
from glob import glob
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = [
    "derive_metrics",
    "load_sidecars",
    "build_baseline",
    "compare_to_baseline",
    "BaselineReport",
]

#: default relative-change threshold for regression (20%).
DEFAULT_THRESHOLD = 0.20

BASELINE_VERSION = 1


def derive_metrics(snapshot: dict[str, Any]) -> dict[str, float]:
    """Reduce a snapshot document to the scalar metrics we baseline."""
    metrics: dict[str, float] = dict(snapshot.get("counters", {}))
    for series, data in snapshot.get("histograms", {}).items():
        count = data.get("count", 0)
        total = data.get("sum", 0.0)
        metrics[f"{series}:mean"] = total / count if count else 0.0
        if ".seconds" in series and total > 0:
            metrics[f"{series}:rate"] = count / total
    return metrics


def load_sidecars(results_dir: str) -> dict[str, dict[str, Any]]:
    """Load every ``*.metrics.json`` sidecar: ``{bench_name: snapshot}``.

    The bench name is the filename stem (``bench_streaming`` for
    ``bench_streaming.metrics.json``).

    Raises:
        ConfigurationError: when the directory holds no sidecars, or a
            sidecar is not a version-1 snapshot document.
    """
    paths = sorted(glob(os.path.join(results_dir, "*.metrics.json")))
    if not paths:
        raise ConfigurationError(
            f"no *.metrics.json sidecars in {results_dir!r}; run "
            f"pytest benchmarks/ --emit-metrics first")
    sidecars: dict[str, dict[str, Any]] = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            try:
                snapshot = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"sidecar {path!r} is not valid JSON: {exc}") from exc
        if not isinstance(snapshot, dict) or snapshot.get("version") != 1:
            raise ConfigurationError(
                f"sidecar {path!r} is not a version-1 snapshot document")
        name = os.path.basename(path)[:-len(".metrics.json")]
        sidecars[name] = snapshot
    return sidecars


def build_baseline(sidecars: dict[str, dict[str, Any]]) -> dict[str, Any]:
    """Baseline document from sidecar snapshots (sorted, committable)."""
    return {"version": BASELINE_VERSION,
            "benches": {name: {"metrics": dict(sorted(
                derive_metrics(snapshot).items()))}
                for name, snapshot in sorted(sidecars.items())}}


def _direction(metric: str) -> str:
    """``higher`` (rate: drop regresses), ``lower`` (seconds mean: rise
    regresses) or ``shape`` (counters: drift only, never fails)."""
    if metric.endswith(":rate"):
        return "higher"
    if metric.endswith(":mean") and ".seconds" in metric:
        return "lower"
    return "shape"


class BaselineReport:
    """Outcome of comparing fresh sidecars against a baseline.

    ``rows`` are ``(bench, metric, status, detail)`` with status one of
    ``ok`` / ``drift`` / ``missing`` / ``REGRESSION``; the comparison
    fails (:attr:`ok` False, ``repro bench-diff`` exits 1) when any row
    is ``missing`` or ``REGRESSION``.
    """

    def __init__(self, rows: list[tuple[str, str, str, str]],
                 threshold: float, quick: bool) -> None:
        self.rows = rows
        self.threshold = threshold
        self.quick = quick

    @property
    def regressions(self) -> list[tuple[str, str, str, str]]:
        return [row for row in self.rows
                if row[2] in ("REGRESSION", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready report (``repro bench-diff --json``)."""
        return {"version": 1, "ok": self.ok, "quick": self.quick,
                "threshold": self.threshold,
                "regressions": len(self.regressions),
                "rows": [{"bench": bench, "metric": metric,
                          "status": status, "detail": detail}
                         for bench, metric, status, detail in self.rows]}

    def render(self, verbose: bool = False) -> str:
        """Human-readable diff; quiet rows (ok) elided unless verbose."""
        mode = "quick (structure only)" if self.quick else (
            f"threshold {self.threshold:.0%}")
        lines = [f"bench-diff: {len(self.rows)} checks, mode {mode}"]
        shown = 0
        for bench, metric, status, detail in self.rows:
            if status == "ok" and not verbose:
                continue
            shown += 1
            lines.append(f"  {status:<10} {bench}: {metric} — {detail}")
        if not shown:
            lines.append("  all metrics within threshold")
        lines.append(f"verdict: {'ok' if self.ok else 'REGRESSION'} "
                     f"({len(self.regressions)} failing)")
        return "\n".join(lines)


def compare_to_baseline(sidecars: dict[str, dict[str, Any]],
                        baseline: dict[str, Any], *,
                        threshold: float = DEFAULT_THRESHOLD,
                        quick: bool = False) -> BaselineReport:
    """Compare fresh sidecar snapshots against a baseline document.

    Only benches present in the baseline are checked — a *new* bench
    cannot regress, it just is not ratcheted until recorded with
    ``repro bench-diff --update``.  A baselined bench with no fresh
    sidecar is ``missing`` (the ratchet cannot be silently dodged by
    deleting a bench's sidecar).

    Raises:
        ConfigurationError: for a malformed baseline document or a
            non-positive threshold.
    """
    if threshold <= 0:
        raise ConfigurationError(
            f"regression threshold must be positive, got {threshold}")
    if baseline.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline document version "
            f"{baseline.get('version')!r} is not {BASELINE_VERSION}")
    rows: list[tuple[str, str, str, str]] = []
    for bench, entry in sorted(baseline.get("benches", {}).items()):
        recorded = entry.get("metrics", {})
        if bench not in sidecars:
            rows.append((bench, "*", "missing",
                         "baselined bench has no fresh sidecar"))
            continue
        current = derive_metrics(sidecars[bench])
        for metric, old in sorted(recorded.items()):
            if metric not in current:
                rows.append((bench, metric, "missing",
                             "metric no longer derivable from sidecar"))
                continue
            if quick:
                rows.append((bench, metric, "ok", "present"))
                continue
            new = current[metric]
            if old <= 0:
                rows.append((bench, metric, "ok",
                             f"baseline {old:g} not comparable"))
                continue
            change = (new - old) / old
            direction = _direction(metric)
            detail = f"{old:g} -> {new:g} ({change:+.1%})"
            if direction == "higher" and change < -threshold:
                rows.append((bench, metric, "REGRESSION", detail))
            elif direction == "lower" and change > threshold:
                rows.append((bench, metric, "REGRESSION", detail))
            elif direction == "shape" and abs(change) > threshold:
                rows.append((bench, metric, "drift", detail))
            else:
                rows.append((bench, metric, "ok", detail))
    return BaselineReport(rows, threshold, quick)
