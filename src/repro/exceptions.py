"""Exception hierarchy for the :mod:`repro` library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` clause while letting genuine programming errors
(``TypeError`` from misuse of the Python API, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """A web topology is structurally invalid or a graph operation failed.

    Raised, for example, when a generator is asked for more out-links than
    nodes, when a start-page set is empty, or when a serialized topology
    cannot be decoded.
    """


class SimulationError(ReproError):
    """The agent simulator was configured or driven inconsistently.

    Raised for invalid probability parameters, impossible navigation
    requests, or a topology with no reachable pages.
    """


class LogFormatError(ReproError):
    """A web access log line or record violates the Common Log Format."""

    def __init__(self, message: str, line_number: int | None = None,
                 line: str | None = None) -> None:
        super().__init__(message)
        #: 1-based line number in the source file, when known.
        self.line_number = line_number
        #: the offending raw line, when known.
        self.line = line

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        base = super().__str__()
        if self.line_number is not None:
            return f"line {self.line_number}: {base}"
        return base


class IngestError(ReproError):
    """Log ingestion failed at the I/O layer, beyond a single bad line.

    Raised when the follow-mode tailer exhausts its bounded retries against
    a file that keeps failing to open or read.  Per-line format problems
    raise :class:`LogFormatError` instead (or are routed by the active
    error policy).
    """


class ReconstructionError(ReproError):
    """A session reconstruction heuristic received invalid input.

    Raised when a request stream is not sorted by timestamp, when a
    heuristic is configured with non-positive thresholds, or when the
    supplied topology does not cover the requested pages and the heuristic
    requires it to.
    """


class PathBudgetError(ReconstructionError):
    """All-Maximal-Paths enumeration would exceed its path budget.

    Raised only under ``overflow="raise"`` (see
    :class:`repro.core.amp.AMPConfig`): the exact pre-enumeration path
    count for one Phase-1 candidate exceeds ``path_budget``, and the
    deployment chose a hard failure over blocking the candidate or
    truncating its enumeration.  The count is computed *before* any path
    is materialized, so no partial output escapes and memory stays
    bounded even on dense crawler-shaped graphs.
    """


class LateEventError(ReconstructionError):
    """A streamed request arrived after the pipeline's watermark passed it.

    Once :meth:`~repro.streaming.pipeline.StreamingReconstructor.flush` has
    been promised that all future requests carry timestamps at or beyond a
    watermark — or a user's buffer has advanced past a timestamp — an older
    request can no longer be placed correctly.  Under the default
    ``late_policy="raise"`` the pipeline raises this error; under
    ``"drop"`` it counts and discards the request instead.
    """


class OverloadError(ReproError):
    """The streaming resource governor refused to admit more work.

    Raised only under ``overload_policy="raise"`` (see
    :class:`repro.streaming.governor.GovernorConfig`): admitting the next
    request would push tracked state past the configured memory budget,
    and the deployment chose a hard failure over shedding, eviction or
    spilling.  The pipeline's accepted state is untouched — the caller may
    flush, drain, and retry.
    """


class EvaluationError(ReproError):
    """The evaluation harness was given inconsistent inputs.

    Raised, for example, when ground-truth and reconstructed session sets
    refer to disjoint agent populations, or when an experiment sweep is
    configured with an empty parameter grid.
    """


class ConfigurationError(ReproError):
    """A configuration object contains invalid or contradictory values."""


class TraceError(ReproError):
    """A JSON-lines trace file cannot be parsed into a span tree.

    Raised by :mod:`repro.obs.spans` for records that are not valid JSON
    objects, spans that reference an unknown parent, or duplicate span
    identifiers — a trace good enough to analyze must reconstruct into a
    forest exactly.
    """


class WireProtocolError(ReproError):
    """A sharded-runtime pipe frame could not be decoded.

    Raised by :mod:`repro.streaming.wire` when a frame header is
    malformed, a fixed-width event record has the wrong length, a symbol
    reference points outside the interning table, or a JSON payload does
    not parse.  The coordinator treats a protocol error from a worker
    pipe the same way it treats a worker death: the shard is failed over
    (or shed, or raised, per policy) rather than trusted.
    """


class ExecutionError(ReproError):
    """A supervised parallel execution exhausted its recovery budget.

    Raised by :mod:`repro.parallel.supervisor` when a chunk keeps crashing
    its worker or overrunning its deadline beyond ``max_retries`` and the
    active failure policy is ``"raise"``.  The message carries the chunk
    index, the attempt count and the last observed failure so operators
    can correlate it with the checkpoint directory.
    """
