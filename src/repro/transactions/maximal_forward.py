"""Maximal Forward Reference transaction identification.

Chen, Park & Yu's classic method: walk the session's page sequence while
maintaining the current *forward path*.  A request for a page already on
the path is a **backward reference** — the user pressed Back — so the path
so far was a *maximal forward reference*: emit it as a transaction and
truncate the path back to that page.  A request for a new page extends the
path.  The final path is emitted too.

Example: ``A B C B D`` →  transactions ``(A, B, C)`` and ``(A, B, D)``.

Duplicate-free sessions (Smart-SRA output, whose sessions never repeat a
page) pass through as single transactions; heur3's path-completed sessions
split at exactly their inserted back-moves.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.sessions.model import Session, SessionSet

__all__ = ["maximal_forward_references"]


def _split_path(pages: Sequence[str]) -> list[tuple[str, ...]]:
    transactions: list[tuple[str, ...]] = []
    path: list[str] = []
    position: dict[str, int] = {}
    moved_forward = False
    for page in pages:
        if page in position:
            # backward reference: the path so far was maximal iff we moved
            # forward since the last emission.
            if moved_forward:
                transactions.append(tuple(path))
                moved_forward = False
            del path[position[page] + 1:]
            for stale in list(position):
                if position[stale] > position[page]:
                    del position[stale]
        else:
            position[page] = len(path)
            path.append(page)
            moved_forward = True
    if moved_forward and path:
        transactions.append(tuple(path))
    return transactions


def maximal_forward_references(sessions: SessionSet | Session
                               ) -> list[tuple[str, ...]]:
    """Split sessions into maximal-forward-reference transactions.

    Args:
        sessions: a single session or a whole set.

    Returns:
        All transactions, in session order then traversal order.  Empty
        sessions contribute nothing.
    """
    if isinstance(sessions, Session):
        return _split_path(sessions.pages)
    transactions: list[tuple[str, ...]] = []
    for session in sessions:
        transactions.extend(_split_path(session.pages))
    return transactions
