"""Transaction identification — the step after session reconstruction.

The data-preparation lineage the paper builds on (Cooley, Mobasher &
Srivastava 1999 — its reference [6]; Chen, Park & Yu's maximal forward
references) divides each reconstructed session into *transactions*:
semantically meaningful sub-units suitable for association mining.  Two
classic methods are implemented:

* :mod:`repro.transactions.maximal_forward` — **Maximal Forward Reference**
  (MFR): cut a session at every backward reference, keeping each maximal
  forward path.  Purely structural; pairs naturally with heur3's
  path-completed sessions (whose inserted back-moves are exactly the
  backward references MFR cuts at).
* :mod:`repro.transactions.reference_length` — **Reference Length** (RL):
  classify each page visit as *auxiliary* (short stay — navigation) or
  *content* (long stay) using a cutoff estimated from the observed stay
  distribution, then emit one transaction per content page (the auxiliary
  path leading to it plus the content page).

The simulator's bimodal timing model
(:class:`~repro.simulator.config.SimulationConfig` with
``content_fraction > 0``) generates ground truth for evaluating RL: the
``bench_transactions`` benchmark measures how accurately RL recovers the
true content pages from timing alone.
"""

from repro.transactions.maximal_forward import maximal_forward_references
from repro.transactions.reference_length import (
    ReferenceLengthModel,
    estimate_cutoff,
)

__all__ = [
    "maximal_forward_references",
    "ReferenceLengthModel",
    "estimate_cutoff",
]
