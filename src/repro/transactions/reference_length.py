"""Reference Length transaction identification (Cooley et al., 1999).

The *reference length* of a request is the time until the next request —
how long the user stayed on the page.  The method assumes auxiliary
(navigation) page stays are exponentially distributed and much shorter
than content-page stays.  Given an estimate γ of the fraction of requests
that are auxiliary, the classification cutoff ``C`` is the γ-quantile of
the fitted exponential:

    C = -ln(1 - γ) · mean_reference_length_of_auxiliary ≈ -ln(1 - γ) / λ̂

with λ̂ fitted by maximum likelihood on all observed reference lengths
(Cooley's approximation: the content tail inflates the estimate slightly,
which the quantile formula tolerates).

Visits with reference length ≤ C are auxiliary, longer ones content; the
last visit of each session has no observed stay and is conventionally
treated as content (the user left after finding what they wanted).  Each
transaction is an *auxiliary-content* unit: the run of auxiliary pages
leading to a content page, plus that page.
"""

from __future__ import annotations

import math

from repro.exceptions import EvaluationError
from repro.sessions.model import Session, SessionSet

__all__ = ["estimate_cutoff", "ReferenceLengthModel"]


def _reference_lengths(sessions: SessionSet) -> list[float]:
    lengths = [later.timestamp - earlier.timestamp
               for session in sessions
               for earlier, later in zip(session.requests,
                                         session.requests[1:])]
    return lengths


def estimate_cutoff(sessions: SessionSet,
                    auxiliary_fraction: float = 0.7) -> float:
    """Estimate the auxiliary/content stay-time cutoff ``C`` in seconds.

    Args:
        sessions: sessions whose inter-request gaps are the observed
            reference lengths.
        auxiliary_fraction: γ — the analyst's prior on the fraction of
            requests that are navigational (Cooley suggests most are).

    Raises:
        EvaluationError: if γ is outside (0, 1) or the sessions contain no
            inter-request gap to fit on.
    """
    if not 0 < auxiliary_fraction < 1:
        raise EvaluationError(
            f"auxiliary_fraction must be in (0, 1), got "
            f"{auxiliary_fraction}")
    lengths = _reference_lengths(sessions)
    positive = [length for length in lengths if length > 0]
    if not positive:
        raise EvaluationError(
            "no positive reference length to estimate the cutoff from")
    mean = sum(positive) / len(positive)
    return -math.log(1 - auxiliary_fraction) * mean


class ReferenceLengthModel:
    """Fitted reference-length classifier and transaction splitter.

    Args:
        cutoff: the auxiliary/content boundary in seconds; usually from
            :func:`estimate_cutoff`.

    Raises:
        EvaluationError: for a non-positive cutoff.
    """

    def __init__(self, cutoff: float) -> None:
        if cutoff <= 0:
            raise EvaluationError(f"cutoff must be positive, got {cutoff}")
        self.cutoff = cutoff

    @classmethod
    def fit(cls, sessions: SessionSet,
            auxiliary_fraction: float = 0.7) -> "ReferenceLengthModel":
        """Fit the cutoff on ``sessions`` and return the model."""
        return cls(estimate_cutoff(sessions, auxiliary_fraction))

    def classify(self, session: Session) -> list[bool]:
        """Per-visit content flags (``True`` = content).

        The final visit has no observed stay and is classified content by
        convention.
        """
        flags = []
        for earlier, later in zip(session.requests, session.requests[1:]):
            stay = later.timestamp - earlier.timestamp
            flags.append(stay > self.cutoff)
        if len(session):
            flags.append(True)
        return flags

    def content_pages(self, sessions: SessionSet) -> set[str]:
        """Pages classified as content in a *majority* of their visits."""
        content_votes: dict[str, int] = {}
        total_votes: dict[str, int] = {}
        for session in sessions:
            for page, is_content in zip(session.pages,
                                        self.classify(session)):
                total_votes[page] = total_votes.get(page, 0) + 1
                if is_content:
                    content_votes[page] = content_votes.get(page, 0) + 1
        return {page for page, total in total_votes.items()
                if content_votes.get(page, 0) * 2 > total}

    def transactions(self, sessions: SessionSet | Session
                     ) -> list[tuple[str, ...]]:
        """Auxiliary-content transactions.

        Each transaction is the run of auxiliary visits since the previous
        content visit, plus the terminating content visit.  A trailing
        auxiliary-only run (impossible under the final-visit convention,
        but reachable for empty sessions) is dropped.
        """
        if isinstance(sessions, Session):
            session_list = [sessions]
        else:
            session_list = [s for s in sessions if s]
        result: list[tuple[str, ...]] = []
        for session in session_list:
            current: list[str] = []
            for page, is_content in zip(session.pages,
                                        self.classify(session)):
                current.append(page)
                if is_content:
                    result.append(tuple(current))
                    current = []
        return result
