"""repro — reproduction of *A New Approach for Reactive Web Usage Data
Processing* (Bayir, Toroslu, Cosar; ICDE Workshops 2006).

The library covers the paper end to end:

* :mod:`repro.topology` — web site graphs and generators;
* :mod:`repro.simulator` — the agent simulator producing ground-truth
  sessions and the matching server log;
* :mod:`repro.logs` — Common Log Format round trip, cleaning and user
  partitioning;
* :mod:`repro.sessions` — the session model and the three baseline
  heuristics (time-duration, page-stay, navigation-oriented);
* :mod:`repro.core` — **Smart-SRA**, the paper's contribution;
* :mod:`repro.evaluation` — the capture metric and the Figure 8/9/10
  experiment harness;
* :mod:`repro.mining` — downstream pattern discovery on reconstructed
  sessions.

Quickstart::

    from repro import (SmartSRA, random_site, simulate_population,
                       SimulationConfig, evaluate_reconstruction)

    site = random_site(300, 15, seed=1)
    sim = simulate_population(site, SimulationConfig(n_agents=500))
    sessions = SmartSRA(site).reconstruct(sim.log_requests)
    report = evaluate_reconstruction("smart-sra", sim.ground_truth, sessions)
    print(f"real accuracy: {report.accuracy:.1%}")
"""

from repro.core import AMPConfig, Phase1Only, SmartSRA, SmartSRAConfig
from repro.evaluation import (
    AccuracyReport,
    evaluate_reconstruction,
    fig8_sweep,
    fig9_sweep,
    fig10_sweep,
    real_accuracy,
    run_trial,
    standard_heuristics,
    sweep,
)
from repro.exceptions import (
    ConfigurationError,
    EvaluationError,
    IngestError,
    LateEventError,
    LogFormatError,
    ReconstructionError,
    ReproError,
    SimulationError,
    TopologyError,
)
from repro.logs import ErrorPolicy, IngestReport, ingest_clf_file, ingest_lines
from repro.obs import Registry, Tracer, get_registry, set_registry, use_registry
from repro.evaluation import describe, render_statistics
from repro.sessions import (
    AdaptiveTimeoutHeuristic,
    AllMaximalPaths,
    DurationHeuristic,
    NavigationHeuristic,
    PageStayHeuristic,
    ReferrerHeuristic,
    Request,
    Session,
    SessionReconstructor,
    SessionSet,
)
from repro.streaming import streaming_amp, streaming_phase1, streaming_smart_sra
from repro.simulator import (
    SimulationConfig,
    SimulationResult,
    simulate_agent,
    simulate_population,
)
from repro.topology import (
    WebGraph,
    hierarchical_site,
    load_graph,
    power_law_site,
    random_site,
    save_graph,
)

__version__ = "1.0.0"

__all__ = [
    # value types
    "Request", "Session", "SessionSet", "WebGraph",
    # heuristics
    "SessionReconstructor", "DurationHeuristic", "PageStayHeuristic",
    "NavigationHeuristic", "ReferrerHeuristic", "AdaptiveTimeoutHeuristic",
    "SmartSRA",
    "SmartSRAConfig", "Phase1Only",
    "AllMaximalPaths", "AMPConfig",
    # streaming
    "streaming_smart_sra", "streaming_phase1", "streaming_amp",
    # statistics
    "describe", "render_statistics",
    # topology
    "random_site", "hierarchical_site", "power_law_site",
    "save_graph", "load_graph",
    # simulation
    "SimulationConfig", "SimulationResult", "simulate_agent",
    "simulate_population",
    # evaluation
    "real_accuracy", "evaluate_reconstruction", "AccuracyReport",
    "standard_heuristics", "run_trial", "sweep",
    "fig8_sweep", "fig9_sweep", "fig10_sweep",
    # ingestion
    "ErrorPolicy", "IngestReport", "ingest_lines", "ingest_clf_file",
    # observability
    "Registry", "Tracer", "get_registry", "set_registry", "use_registry",
    # errors
    "ReproError", "TopologyError", "SimulationError", "LogFormatError",
    "ReconstructionError", "EvaluationError", "ConfigurationError",
    "IngestError", "LateEventError",
    "__version__",
]
