"""Random web-site topology generators.

The paper evaluates on randomly generated topologies whose two first-order
statistics come from its Table 5: **300 pages** and an **average out-degree
of 15**.  :func:`random_site` reproduces that family.  Two further families,
:func:`hierarchical_site` (a tree-shaped site with cross links and home
links, the shape of most hand-authored sites) and :func:`power_law_site`
(preferential attachment, the shape of large organically grown sites), feed
the topology-family ablation benchmark.

All generators are deterministic given ``seed`` and return a
:class:`~repro.topology.graph.WebGraph` whose start pages are reachable
session entry points.
"""

from __future__ import annotations

import random

from repro.exceptions import TopologyError
from repro.topology.graph import WebGraph

__all__ = ["random_site", "hierarchical_site", "power_law_site", "page_name"]


def page_name(index: int) -> str:
    """Canonical page identifier for node ``index`` (``"P0"``, ``"P1"``, …)."""
    return f"P{index}"


def _ensure_reachable(adjacency: dict[str, set[str]],
                      start_pages: list[str], rng: random.Random) -> None:
    """Patch ``adjacency`` in place until every page is reachable from a start.

    Unreachable pages would be dead weight in the simulator (no agent could
    ever visit them) and would silently shrink the effective site size, so
    every generator runs this repair step: for each unreachable page, add one
    link from a uniformly chosen already-reachable page.
    """
    reachable = set(start_pages)
    frontier = list(start_pages)
    while frontier:
        page = frontier.pop()
        for target in adjacency[page]:
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)

    unreachable = sorted(set(adjacency) - reachable)
    reachable_list = sorted(reachable)
    for page in unreachable:
        source = rng.choice(reachable_list)
        while source == page:
            source = rng.choice(reachable_list)
        adjacency[source].add(page)
        # Everything newly reachable through `page` becomes a valid source
        # for later repairs.
        stack = [page]
        while stack:
            current = stack.pop()
            if current in reachable:
                continue
            reachable.add(current)
            reachable_list.append(current)
            stack.extend(adjacency[current])


def random_site(n_pages: int = 300, avg_out_degree: float = 15.0,
                start_fraction: float = 0.05, *,
                seed: int | None = None) -> WebGraph:
    """Generate the paper's random topology family.

    Each page receives a binomially distributed number of out-links with
    mean ``avg_out_degree``, targeting uniformly random distinct pages.
    ``ceil(start_fraction * n_pages)`` pages (at least one) are designated
    start pages, and a repair pass guarantees every page is reachable from
    some start page.

    Args:
        n_pages: number of pages (paper: 300).
        avg_out_degree: mean out-links per page (paper: 15).
        start_fraction: fraction of pages promoted to session entry points.
        seed: RNG seed for reproducibility.

    Raises:
        TopologyError: for non-positive sizes or an average out-degree that
            cannot be realized (``avg_out_degree >= n_pages``).
    """
    if n_pages <= 0:
        raise TopologyError(f"n_pages must be positive, got {n_pages}")
    if not 0 <= avg_out_degree < n_pages:
        raise TopologyError(
            f"avg_out_degree must be in [0, n_pages); got {avg_out_degree} "
            f"for {n_pages} pages")
    if not 0 < start_fraction <= 1:
        raise TopologyError(
            f"start_fraction must be in (0, 1], got {start_fraction}")

    rng = random.Random(seed)
    pages = [page_name(i) for i in range(n_pages)]
    # Binomial out-degree: each of the (n-1) possible targets is linked
    # independently with probability p = avg / (n - 1).
    link_probability = avg_out_degree / (n_pages - 1) if n_pages > 1 else 0.0

    adjacency: dict[str, set[str]] = {page: set() for page in pages}
    for src_index, src in enumerate(pages):
        degree = sum(1 for _ in range(n_pages - 1)
                     if rng.random() < link_probability)
        if degree:
            candidates = pages[:src_index] + pages[src_index + 1:]
            adjacency[src] = set(rng.sample(candidates, degree))

    n_starts = max(1, round(start_fraction * n_pages))
    start_pages = rng.sample(pages, n_starts)
    _ensure_reachable(adjacency, start_pages, rng)

    return WebGraph(
        ((src, dst) for src, targets in adjacency.items() for dst in targets),
        pages=pages, start_pages=start_pages)


def hierarchical_site(n_pages: int = 300, branching: int = 4,
                      cross_link_probability: float = 0.05,
                      home_link_probability: float = 0.3, *,
                      seed: int | None = None) -> WebGraph:
    """Generate a tree-shaped site with cross links.

    Pages form a ``branching``-ary tree rooted at ``P0`` (the single start
    page).  Every non-root page links back to its parent; with
    ``home_link_probability`` a page also links to the root (the ubiquitous
    "home" link), and each page sprouts cross links to uniformly random
    pages with probability ``cross_link_probability`` per candidate sampled
    (``branching`` candidates are drawn per page).

    Raises:
        TopologyError: for invalid sizes or probabilities.
    """
    if n_pages <= 0:
        raise TopologyError(f"n_pages must be positive, got {n_pages}")
    if branching < 1:
        raise TopologyError(f"branching must be >= 1, got {branching}")
    for label, probability in (("cross_link_probability",
                                cross_link_probability),
                               ("home_link_probability",
                                home_link_probability)):
        if not 0 <= probability <= 1:
            raise TopologyError(f"{label} must be in [0, 1], got {probability}")

    rng = random.Random(seed)
    pages = [page_name(i) for i in range(n_pages)]
    adjacency: dict[str, set[str]] = {page: set() for page in pages}
    root = pages[0]

    for index in range(1, n_pages):
        parent = pages[(index - 1) // branching]
        child = pages[index]
        adjacency[parent].add(child)
        adjacency[child].add(parent)
        if rng.random() < home_link_probability and parent != root:
            adjacency[child].add(root)

    if n_pages > 2:
        for page in pages:
            for _ in range(branching):
                if rng.random() < cross_link_probability:
                    target = rng.choice(pages)
                    if target != page:
                        adjacency[page].add(target)

    _ensure_reachable(adjacency, [root], rng)
    return WebGraph(
        ((src, dst) for src, targets in adjacency.items() for dst in targets),
        pages=pages, start_pages=[root])


def power_law_site(n_pages: int = 300, links_per_page: int = 8,
                   start_fraction: float = 0.05, *,
                   seed: int | None = None) -> WebGraph:
    """Generate a preferential-attachment ("rich get richer") site.

    Pages are added one at a time; each new page links to
    ``links_per_page`` existing pages chosen with probability proportional
    to their current in-degree (plus one, so fresh pages are attachable),
    and each linked page links back with probability 0.5.  The resulting
    in-degree distribution is heavy-tailed, matching measured web graphs
    (Broder et al., WWW 2000, the paper's reference [1]).

    Raises:
        TopologyError: for invalid sizes or fractions.
    """
    if n_pages <= 0:
        raise TopologyError(f"n_pages must be positive, got {n_pages}")
    if links_per_page < 1:
        raise TopologyError(
            f"links_per_page must be >= 1, got {links_per_page}")
    if not 0 < start_fraction <= 1:
        raise TopologyError(
            f"start_fraction must be in (0, 1], got {start_fraction}")

    rng = random.Random(seed)
    pages = [page_name(i) for i in range(n_pages)]
    adjacency: dict[str, set[str]] = {page: set() for page in pages}
    # attachment_pool holds one entry per (in-degree + 1) unit, so a uniform
    # draw from it realizes preferential attachment.
    attachment_pool: list[str] = [pages[0]]

    for index in range(1, n_pages):
        newcomer = pages[index]
        fanout = min(links_per_page, index)
        targets: set[str] = set()
        while len(targets) < fanout:
            targets.add(rng.choice(attachment_pool))
        for target in targets:
            adjacency[newcomer].add(target)
            attachment_pool.append(target)
            if rng.random() < 0.5:
                adjacency[target].add(newcomer)
                attachment_pool.append(newcomer)
        attachment_pool.append(newcomer)

    n_starts = max(1, round(start_fraction * n_pages))
    # The oldest pages are the hubs; make the biggest hubs the entry points,
    # which mirrors real sites (the home page is the most linked page).
    by_in_degree = sorted(
        pages, key=lambda p: sum(p in adjacency[q] for q in pages),
        reverse=True)
    start_pages = by_in_degree[:n_starts]
    _ensure_reachable(adjacency, start_pages, rng)

    return WebGraph(
        ((src, dst) for src, targets in adjacency.items() for dst in targets),
        pages=pages, start_pages=start_pages)
