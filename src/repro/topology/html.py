"""Extract a web topology from a directory of static HTML files.

The paper restricts itself to static sites, whose link structure is fully
determined by the HTML on disk.  :func:`graph_from_html_dir` turns such a
directory into a :class:`~repro.topology.graph.WebGraph`, so the library
runs against *real* sites, not just generated ones:

* every ``*.html``/``*.htm`` file becomes a page (its path relative to the
  root, without the extension, is the page id);
* every ``<a href="...">`` to another local HTML file becomes a hyperlink
  (fragments and query strings stripped; external and non-HTML targets
  ignored);
* start pages are the conventional index files (``index.html`` at any
  depth), falling back to all pages when none exists.

Only the standard library's :mod:`html.parser` is used.
"""

from __future__ import annotations

import pathlib
import posixpath
from html.parser import HTMLParser

from repro.exceptions import TopologyError
from repro.topology.graph import WebGraph

__all__ = ["extract_links", "graph_from_html_dir"]

_HTML_SUFFIXES = (".html", ".htm")


class _LinkCollector(HTMLParser):
    """Collects ``href`` targets of anchor tags."""

    def __init__(self) -> None:
        super().__init__()
        self.hrefs: list[str] = []

    def handle_starttag(self, tag: str, attrs) -> None:  # noqa: ANN001
        if tag.lower() != "a":
            return
        for name, value in attrs:
            if name.lower() == "href" and value:
                self.hrefs.append(value)


def extract_links(html_text: str) -> list[str]:
    """All anchor ``href`` values in ``html_text``, in document order."""
    collector = _LinkCollector()
    collector.feed(html_text)
    return collector.hrefs


def _is_local_html(href: str) -> bool:
    if "://" in href or href.startswith(("mailto:", "javascript:", "#",
                                         "//")):
        return False
    path = href.split("#", 1)[0].split("?", 1)[0]
    return path.lower().endswith(_HTML_SUFFIXES)


def _page_id(relative_path: str) -> str:
    """``docs/a.html`` → ``docs/a``."""
    stem, __, __ = relative_path.rpartition(".")
    return stem


def graph_from_html_dir(root: str) -> WebGraph:
    """Build the site topology from the static HTML under ``root``.

    Args:
        root: directory containing the site (scanned recursively).

    Returns:
        The extracted :class:`WebGraph`.  Relative links are resolved
        against each file's directory; links escaping ``root`` or pointing
        at missing files are dropped (a real crawler would 404 on them).

    Raises:
        TopologyError: when ``root`` is not a directory or contains no
            HTML files.
    """
    base = pathlib.Path(root)
    if not base.is_dir():
        raise TopologyError(f"{root!r} is not a directory")

    html_files = sorted(
        path for path in base.rglob("*")
        if path.is_file() and path.suffix.lower() in _HTML_SUFFIXES)
    if not html_files:
        raise TopologyError(f"no HTML files under {root!r}")

    pages: dict[str, pathlib.Path] = {}
    for path in html_files:
        relative = path.relative_to(base).as_posix()
        pages[_page_id(relative)] = path

    edges: list[tuple[str, str]] = []
    for page_id, path in pages.items():
        directory = posixpath.dirname(page_id and f"{page_id}.x") or ""
        text = path.read_text(encoding="utf-8", errors="replace")
        for href in extract_links(text):
            if not _is_local_html(href):
                continue
            clean = href.split("#", 1)[0].split("?", 1)[0]
            if clean.startswith("/"):
                resolved = posixpath.normpath(clean.lstrip("/"))
            else:
                resolved = posixpath.normpath(
                    posixpath.join(directory, clean))
            if resolved.startswith(".."):
                continue  # escapes the site root
            target = _page_id(resolved)
            if target in pages and target != page_id:
                edges.append((page_id, target))

    starts = [page_id for page_id in pages
              if posixpath.basename(page_id) == "index"]
    if not starts:
        starts = sorted(pages)
    return WebGraph(edges, pages=pages.keys(), start_pages=starts)
