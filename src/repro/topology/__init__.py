"""Web site topology substrate.

The paper models the mined web site as a static directed graph whose nodes
are pages and whose edges are hyperlinks, with a designated subset of
*start pages* (pages where new sessions may begin — ``index.html`` and the
like).  This package provides:

* :class:`~repro.topology.graph.WebGraph` — the graph value type consumed by
  the navigation-oriented heuristic, Smart-SRA and the agent simulator;
* generators (:mod:`repro.topology.generators`) reproducing the paper's
  random topology (Table 5: 300 pages, average out-degree 15) plus two more
  realistic families (hierarchical and power-law) used by the topology
  ablation benchmark;
* structural analysis helpers (:mod:`repro.topology.analysis`);
* JSON / adjacency-list serialization (:mod:`repro.topology.io`).
"""

from repro.topology.analysis import (
    degree_statistics,
    entry_candidates,
    path_statistics,
    reachable_fraction,
    summarize,
)
from repro.topology.generators import (
    hierarchical_site,
    power_law_site,
    random_site,
)
from repro.topology.graph import WebGraph
from repro.topology.html import extract_links, graph_from_html_dir
from repro.topology.io import (
    graph_from_adjacency_lines,
    graph_from_jsonable,
    graph_to_adjacency_lines,
    graph_to_jsonable,
    load_graph,
    save_graph,
)

__all__ = [
    "WebGraph",
    "random_site",
    "hierarchical_site",
    "power_law_site",
    "degree_statistics",
    "entry_candidates",
    "reachable_fraction",
    "path_statistics",
    "summarize",
    "graph_to_jsonable",
    "graph_from_jsonable",
    "graph_to_adjacency_lines",
    "graph_from_adjacency_lines",
    "save_graph",
    "load_graph",
    "extract_links",
    "graph_from_html_dir",
]
