"""Structural analysis of web topologies.

These helpers validate that generated sites actually have the first-order
statistics the paper's Table 5 prescribes (degree means), estimate how much
of a site is reachable from its entry points, and heuristically identify
entry-page candidates in topologies that come without an explicit
start-page annotation (e.g. graphs crawled from real sites).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import TopologyError
from repro.topology.graph import WebGraph

__all__ = [
    "DegreeStatistics",
    "degree_statistics",
    "reachable_fraction",
    "entry_candidates",
    "path_statistics",
    "PathStatistics",
    "summarize",
]


@dataclass(frozen=True, slots=True)
class DegreeStatistics:
    """Summary statistics of a graph's degree distributions."""

    mean_out: float
    mean_in: float
    max_out: int
    max_in: int
    std_out: float
    dead_end_count: int
    """Pages with no out-links (navigation dead ends)."""


def degree_statistics(graph: WebGraph) -> DegreeStatistics:
    """Compute degree summary statistics for ``graph``."""
    out_degrees = [graph.out_degree(page) for page in graph.pages]
    in_degrees = [graph.in_degree(page) for page in graph.pages]
    n = len(out_degrees)
    mean_out = sum(out_degrees) / n
    variance = sum((d - mean_out) ** 2 for d in out_degrees) / n
    return DegreeStatistics(
        mean_out=mean_out,
        mean_in=sum(in_degrees) / n,
        max_out=max(out_degrees),
        max_in=max(in_degrees),
        std_out=math.sqrt(variance),
        dead_end_count=sum(1 for d in out_degrees if d == 0),
    )


def reachable_fraction(graph: WebGraph) -> float:
    """Fraction of pages reachable from the start pages (1.0 = all).

    A simulator running on a graph with ``reachable_fraction < 1`` would
    never visit the unreachable remainder; generators in this library repair
    to 1.0, but externally supplied graphs may not.
    """
    reachable: set[str] = set(graph.start_pages)
    frontier = list(graph.start_pages)
    while frontier:
        page = frontier.pop()
        for target in graph.successors(page):
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    return len(reachable) / graph.page_count


def entry_candidates(graph: WebGraph, top: int = 10) -> list[str]:
    """Heuristically rank pages most likely to be session entry points.

    Real logs do not annotate entry pages, so analysts typically pick pages
    with a high in-degree-to-out-degree prominence and shallow position.
    This helper ranks by ``in_degree + 1`` scaled by whether the page is a
    declared start page, and returns the best ``top`` page ids.

    Args:
        graph: the topology to inspect.
        top: number of candidates to return.

    Raises:
        TopologyError: if ``top`` is not positive.
    """
    if top <= 0:
        raise TopologyError(f"top must be positive, got {top}")
    scored = sorted(
        graph.pages,
        key=lambda page: (graph.in_degree(page)
                          + (graph.page_count if page in graph.start_pages
                             else 0)),
        reverse=True)
    return scored[:top]


@dataclass(frozen=True, slots=True)
class PathStatistics:
    """Click-depth statistics from the start pages.

    Attributes:
        mean_depth: mean shortest-path length (clicks) from the nearest
            start page, over reachable pages.
        max_depth: eccentricity of the start set — the deepest page.
        depth_histogram: ``{clicks: page count}``, ascending.
    """

    mean_depth: float
    max_depth: int
    depth_histogram: dict[int, int]


def path_statistics(graph: WebGraph) -> PathStatistics:
    """Breadth-first click-depth profile from the start pages.

    The depth of a page is the minimum number of clicks needed to reach it
    from *any* start page — the "three clicks from home" number site
    architects budget.  Unreachable pages are excluded (see
    :func:`reachable_fraction`).
    """
    depth: dict[str, int] = {page: 0 for page in graph.start_pages}
    frontier = sorted(graph.start_pages)
    while frontier:
        next_frontier = []
        for page in frontier:
            for target in sorted(graph.successors(page)):
                if target not in depth:
                    depth[target] = depth[page] + 1
                    next_frontier.append(target)
        frontier = next_frontier

    histogram: dict[int, int] = {}
    for value in depth.values():
        histogram[value] = histogram.get(value, 0) + 1
    return PathStatistics(
        mean_depth=sum(depth.values()) / len(depth),
        max_depth=max(depth.values()),
        depth_histogram=dict(sorted(histogram.items())),
    )


def summarize(graph: WebGraph) -> dict[str, float | int]:
    """One-call structural summary used by the CLI's ``topology`` command."""
    stats = degree_statistics(graph)
    paths = path_statistics(graph)
    return {
        "pages": graph.page_count,
        "links": graph.edge_count,
        "start_pages": len(graph.start_pages),
        "mean_out_degree": round(stats.mean_out, 3),
        "mean_in_degree": round(stats.mean_in, 3),
        "max_out_degree": stats.max_out,
        "max_in_degree": stats.max_in,
        "dead_ends": stats.dead_end_count,
        "reachable_fraction": round(reachable_fraction(graph), 4),
        "mean_click_depth": round(paths.mean_depth, 3),
        "max_click_depth": paths.max_depth,
    }
