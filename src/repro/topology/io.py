"""Topology (de)serialization.

Two interchange formats are supported:

* **JSON** — a self-describing object with ``pages``, ``edges`` and
  ``start_pages`` keys; the format used by :func:`save_graph` /
  :func:`load_graph` and by the CLI.
* **adjacency lines** — the classic ``src -> dst1 dst2 …`` text format many
  crawlers emit; start pages are flagged with a leading ``*``.  Useful for
  hand-authoring small example topologies (see ``examples/``).
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.exceptions import TopologyError
from repro.topology.graph import WebGraph

__all__ = [
    "graph_to_jsonable",
    "graph_from_jsonable",
    "save_graph",
    "load_graph",
    "graph_to_adjacency_lines",
    "graph_from_adjacency_lines",
]

_FORMAT_VERSION = 1


def graph_to_jsonable(graph: WebGraph) -> dict[str, object]:
    """Encode ``graph`` as JSON-serializable data."""
    return {
        "version": _FORMAT_VERSION,
        "pages": sorted(graph.pages),
        "start_pages": sorted(graph.start_pages),
        "edges": [[src, dst] for src, dst in graph.edges()],
    }


def graph_from_jsonable(data: dict[str, object]) -> WebGraph:
    """Decode the structure produced by :func:`graph_to_jsonable`.

    Raises:
        TopologyError: for a missing key or an unsupported format version.
    """
    try:
        version = data["version"]
        pages = data["pages"]
        start_pages = data["start_pages"]
        edges = data["edges"]
    except (KeyError, TypeError) as exc:
        raise TopologyError(f"malformed topology document: {exc}") from exc
    if version != _FORMAT_VERSION:
        raise TopologyError(
            f"unsupported topology format version {version!r} "
            f"(expected {_FORMAT_VERSION})")
    return WebGraph(
        ((str(src), str(dst)) for src, dst in edges),  # type: ignore[union-attr]
        pages=(str(p) for p in pages),  # type: ignore[union-attr]
        start_pages=(str(p) for p in start_pages))  # type: ignore[union-attr]


def save_graph(graph: WebGraph, path: str) -> None:
    """Write ``graph`` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_jsonable(graph), handle, indent=1)


def load_graph(path: str) -> WebGraph:
    """Read a graph previously written by :func:`save_graph`."""
    with open(path, encoding="utf-8") as handle:
        return graph_from_jsonable(json.load(handle))


def graph_to_adjacency_lines(graph: WebGraph) -> list[str]:
    """Render ``graph`` in the ``src -> dst1 dst2`` text format.

    Start pages are prefixed with ``*``.  Pages without out-links still get
    a line (with an empty target list) so the round trip is lossless.
    """
    lines = []
    for page in sorted(graph.pages):
        marker = "*" if page in graph.start_pages else ""
        targets = " ".join(sorted(graph.successors(page)))
        lines.append(f"{marker}{page} -> {targets}".rstrip())
    return lines


def graph_from_adjacency_lines(lines: Iterable[str]) -> WebGraph:
    """Parse the format produced by :func:`graph_to_adjacency_lines`.

    Blank lines and ``#`` comments are ignored.

    Raises:
        TopologyError: for a line without the ``->`` separator, or a
            document declaring no start page.
    """
    edges: list[tuple[str, str]] = []
    pages: set[str] = set()
    start_pages: set[str] = set()
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "->" not in line:
            raise TopologyError(f"missing '->' separator in line: {line!r}")
        left, right = line.split("->", 1)
        src = left.strip()
        if src.startswith("*"):
            src = src[1:].strip()
            start_pages.add(src)
        if not src:
            raise TopologyError(f"empty source page in line: {line!r}")
        pages.add(src)
        for dst in right.split():
            pages.add(dst)
            edges.append((src, dst))
    if not start_pages:
        raise TopologyError(
            "adjacency document declares no start page (prefix one or more "
            "source pages with '*')")
    return WebGraph(edges, pages=pages, start_pages=start_pages)
