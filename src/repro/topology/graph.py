"""The :class:`WebGraph` value type.

A :class:`WebGraph` is a directed graph over page identifiers with a
designated non-empty set of *start pages*.  It is deliberately a thin,
immutable structure optimized for the two queries the heuristics hammer:

* ``has_link(src, dst)`` — the paper's ``Link[src, dst] = 1`` adjacency test;
* ``successors(page)`` / ``predecessors(page)`` — used by the simulator's
  navigation behaviors and by Smart-SRA's referrer scan.

Page identifiers are strings.  The conventional naming used by the
generators is ``"P0" … "Pn-1"``, matching the paper's examples, but any
string works.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

import networkx as nx

from repro.exceptions import TopologyError

__all__ = ["WebGraph", "AdjacencyIndex"]


class AdjacencyIndex:
    """Interned integer view of a :class:`WebGraph`'s adjacency.

    Pages are assigned dense integer ids by sorted page name, and the
    predecessor relation is precomputed both as frozensets of ids (O(1)
    membership, cheap int hashing) and as numerically sorted id tuples
    (deterministic iteration — numeric id order *is* lexicographic page
    order, because ids are sorted-name ranks).  Smart-SRA Phase 2's inner
    loop runs entirely on this view; see
    :meth:`WebGraph.adjacency_index`.

    Attributes:
        pages: page names, indexed by id (sorted).
        page_id: name → id mapping.
        pred_id_sets: per page id, the frozenset of predecessor ids.
        pred_sorted_ids: per page id, predecessor ids as a sorted tuple.
    """

    __slots__ = ("pages", "page_id", "pred_id_sets", "pred_sorted_ids")

    def __init__(self, pred: Mapping[str, frozenset[str]]) -> None:
        self.pages: tuple[str, ...] = tuple(sorted(pred))
        self.page_id: dict[str, int] = {
            page: index for index, page in enumerate(self.pages)}
        self.pred_id_sets: tuple[frozenset[int], ...] = tuple(
            frozenset(self.page_id[source] for source in pred[page])
            for page in self.pages)
        self.pred_sorted_ids: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(id_set)) for id_set in self.pred_id_sets)


class WebGraph:
    """Immutable directed web-site graph with start pages.

    Args:
        edges: iterable of ``(source, target)`` hyperlink pairs.  Self-loops
            are rejected (a page linking to itself never creates a new
            server request) and duplicates are collapsed.
        pages: optional explicit node set.  Nodes mentioned by ``edges`` are
            always included; pass ``pages`` to add isolated pages.
        start_pages: the session entry pages.  Must be a non-empty subset of
            the node set.

    Raises:
        TopologyError: for an edge touching a page outside ``pages`` (when
            ``pages`` is given), a self-loop, an empty or invalid start-page
            set, or an empty graph.
    """

    __slots__ = ("_succ", "_pred", "_start_pages", "_edge_count", "_index")

    def __init__(self, edges: Iterable[tuple[str, str]],
                 pages: Iterable[str] | None = None,
                 start_pages: Iterable[str] = ()) -> None:
        succ: dict[str, set[str]] = {}
        explicit = set(pages) if pages is not None else None
        if explicit is not None:
            for page in explicit:
                succ[page] = set()

        edge_count = 0
        for src, dst in edges:
            if src == dst:
                raise TopologyError(f"self-loop on page {src!r} is not allowed")
            if explicit is not None and (src not in explicit
                                         or dst not in explicit):
                raise TopologyError(
                    f"edge ({src!r}, {dst!r}) mentions a page outside the "
                    "explicit page set")
            targets = succ.setdefault(src, set())
            succ.setdefault(dst, set())
            if dst not in targets:
                targets.add(dst)
                edge_count += 1

        if not succ:
            raise TopologyError("a web graph must contain at least one page")

        pred: dict[str, set[str]] = {page: set() for page in succ}
        for src, targets in succ.items():
            for dst in targets:
                pred[dst].add(src)

        starts = frozenset(start_pages)
        if not starts:
            raise TopologyError("a web graph needs at least one start page")
        unknown = starts - succ.keys()
        if unknown:
            raise TopologyError(
                f"start pages not present in the graph: {sorted(unknown)}")

        # Freeze adjacency as sorted tuples for deterministic iteration and
        # keep the sets for O(1) membership.
        self._succ: dict[str, frozenset[str]] = {
            page: frozenset(targets) for page, targets in succ.items()}
        self._pred: dict[str, frozenset[str]] = {
            page: frozenset(sources) for page, sources in pred.items()}
        self._start_pages: frozenset[str] = starts
        self._edge_count = edge_count
        self._index: AdjacencyIndex | None = None

    # -- basic queries ------------------------------------------------------

    @property
    def pages(self) -> frozenset[str]:
        """All page identifiers."""
        return frozenset(self._succ)

    @property
    def start_pages(self) -> frozenset[str]:
        """Pages at which a session may begin."""
        return self._start_pages

    @property
    def page_count(self) -> int:
        """Number of pages."""
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        """Number of distinct hyperlinks."""
        return self._edge_count

    def __contains__(self, page: str) -> bool:
        return page in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._succ))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WebGraph):
            return NotImplemented
        return (self._succ == other._succ
                and self._start_pages == other._start_pages)

    def __repr__(self) -> str:
        return (f"WebGraph({self.page_count} pages, {self.edge_count} links, "
                f"{len(self._start_pages)} start pages)")

    def has_link(self, src: str, dst: str) -> bool:
        """The paper's adjacency test ``Link[src, dst] = 1``.

        Unknown pages simply have no links; no exception is raised, because
        real logs routinely mention pages absent from the crawled topology.
        """
        targets = self._succ.get(src)
        return targets is not None and dst in targets

    def successors(self, page: str) -> frozenset[str]:
        """Pages directly reachable from ``page`` (empty for unknown pages)."""
        return self._succ.get(page, frozenset())

    def predecessors(self, page: str) -> frozenset[str]:
        """Pages with a hyperlink *to* ``page`` (empty for unknown pages)."""
        return self._pred.get(page, frozenset())

    def adjacency_index(self) -> AdjacencyIndex:
        """The interned integer adjacency view (built once, then cached).

        The cache never crosses a pickle boundary — parallel workers
        rebuild it locally in O(pages + links), keeping worker payloads
        slim — and the graph's immutability makes sharing it safe.
        """
        index = self._index
        if index is None:
            index = self._index = AdjacencyIndex(self._pred)
        return index

    def __getstate__(self) -> dict[str, object]:
        return {"_succ": self._succ, "_pred": self._pred,
                "_start_pages": self._start_pages,
                "_edge_count": self._edge_count}

    def __setstate__(self, state: dict[str, object]) -> None:
        for slot, value in state.items():
            object.__setattr__(self, slot, value)
        object.__setattr__(self, "_index", None)

    def out_degree(self, page: str) -> int:
        """Number of out-links of ``page`` (0 for unknown pages)."""
        return len(self._succ.get(page, frozenset()))

    def in_degree(self, page: str) -> int:
        """Number of in-links of ``page`` (0 for unknown pages)."""
        return len(self._pred.get(page, frozenset()))

    def edges(self) -> Iterator[tuple[str, str]]:
        """All hyperlinks as ``(source, target)`` pairs, sorted."""
        for src in sorted(self._succ):
            for dst in sorted(self._succ[src]):
                yield (src, dst)

    # -- derived graphs ------------------------------------------------------

    def restricted_to(self, pages: Iterable[str]) -> "WebGraph":
        """Induced subgraph on ``pages`` ∩ this graph's pages.

        The paper's Phase 2 note — "if the web topology graph contains
        vertices ... that do not appear in the candidate session ... these
        vertices and their incident edges must be removed" — is this
        operation.  Pages in ``pages`` that the graph does not know are
        silently ignored; if no requested start page survives, every
        surviving page is promoted to a start page so the result is still a
        valid :class:`WebGraph`.

        Raises:
            TopologyError: if the intersection is empty.
        """
        keep = set(pages) & self._succ.keys()
        if not keep:
            raise TopologyError(
                "restriction would produce an empty graph")
        edges = [(src, dst) for src in keep
                 for dst in self._succ[src] if dst in keep]
        starts = self._start_pages & keep
        if not starts:
            starts = frozenset(keep)
        return WebGraph(edges, pages=keep, start_pages=starts)

    def fingerprint(self) -> str:
        """Stable content hash of the graph (pages, links, start pages).

        Equal graphs produce equal fingerprints across processes and
        platforms; used to key simulation caches and dataset manifests.
        """
        import hashlib

        digest = hashlib.sha256()
        for page in sorted(self._succ):
            digest.update(page.encode("utf-8"))
            digest.update(b"\x00")
        digest.update(b"\x01")
        for src, dst in self.edges():
            digest.update(f"{src}>{dst}".encode("utf-8"))
            digest.update(b"\x00")
        digest.update(b"\x01")
        for page in sorted(self._start_pages):
            digest.update(page.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()[:16]

    # -- interop -------------------------------------------------------------

    def to_networkx(self) -> "nx.DiGraph":
        """Export as a :class:`networkx.DiGraph`.

        Start pages carry a ``start=True`` node attribute.
        """
        graph = nx.DiGraph()
        graph.add_nodes_from(self._succ)
        graph.add_edges_from(self.edges())
        for page in self._start_pages:
            graph.nodes[page]["start"] = True
        return graph

    @classmethod
    def from_networkx(cls, graph: "nx.DiGraph",
                      start_pages: Iterable[str] | None = None) -> "WebGraph":
        """Build from a :class:`networkx.DiGraph`.

        Args:
            graph: source digraph; node names are coerced to ``str``.
            start_pages: explicit start pages.  When omitted, nodes carrying
                a truthy ``start`` attribute are used; when none carry it,
                nodes with in-degree zero are used; when there are none of
                those either, all pages become start pages.
        """
        nodes = [str(node) for node in graph.nodes]
        edges = [(str(src), str(dst)) for src, dst in graph.edges
                 if str(src) != str(dst)]
        if start_pages is None:
            flagged = [str(node) for node, data in graph.nodes(data=True)
                       if data.get("start")]
            if flagged:
                start_pages = flagged
            else:
                roots = [str(node) for node in graph.nodes
                         if graph.in_degree(node) == 0]
                start_pages = roots if roots else nodes
        return cls(edges, pages=nodes, start_pages=start_pages)

    @classmethod
    def from_adjacency(cls, adjacency: Mapping[str, Iterable[str]],
                       start_pages: Iterable[str]) -> "WebGraph":
        """Build from a ``{page: [linked pages]}`` mapping."""
        edges = [(src, dst) for src, targets in adjacency.items()
                 for dst in targets]
        return cls(edges, pages=adjacency.keys() | {
            dst for targets in adjacency.values() for dst in targets},
            start_pages=start_pages)
