"""Columnar Smart-SRA data plane — vectorized reconstruction over int columns.

The object-path hot loops (:func:`repro.core.phase1.split_candidates`,
:func:`repro.core.phase2.maximal_sessions_fast`) traverse a Python object
graph: every record is a :class:`~repro.sessions.model.Request`, every
comparison an attribute load, every parallel fan-out a pickled object list.
This module replaces that data plane with a **struct-of-arrays** view: a
user's clickstream becomes parallel columns of ``(timestamp, page-id,
referrer-id)`` with page URLs interned once per run into an integer
:class:`SymbolTable`, and both Smart-SRA phases run as array passes over
the whole multi-user batch at once.  ``Request``/``Session`` objects only
appear at the boundary — ingest interns them into columns, and the final
session index lists are materialized back through
:meth:`~repro.sessions.model.Session.from_trusted_parts`.

Backends
--------
When numpy imports, every pass is vectorized; otherwise (or when the
``REPRO_COLUMNAR_FALLBACK`` environment variable is set to a non-empty
value other than ``0``) a pure-stdlib implementation over ``array`` columns
runs the *same* algorithm and produces **identical** output — session for
session, in the same order.  The fallback has no speed claim; it exists so
the columnar engine is correct everywhere numpy is not.

Phase 2 as a DAG pass
---------------------
``maximal_sessions_fast`` releases requests in *waves* (a request joins the
wave after the one that consumed its last blocker) and extends open
sessions wave by wave.  That whole process is equivalent to a static DAG
computation, which is what makes it vectorizable:

* **edges** — within one candidate, ``a → b`` when ``link(page_a, page_b)``
  and ``0 <= t_b - t_a <= ρ``.  Forward edges (``a < b``) are exactly the
  blocker relation; equal-timestamp pairs additionally contribute
  *reversed* edges (``a > b``, ``t_a == t_b``) that can extend but never
  block.
* **wave** — longest-path depth over forward edges (``wave[b] = 1 +
  max(wave[a])`` over blockers, ``0`` with none): provably the release
  wave of the object path.
* **succ** — a session ending at ``a`` is consumed by the *first* wave
  holding a valid extender, branching into all of that wave's extenders:
  ``succ(a) = {b : wave[b] == min wave over edges a → b with wave[a] <
  wave[b]}``.  Forward edges always satisfy the wave inequality (a blocker
  strictly raises its dependent's wave); only reversed edges need the
  check.
* **sessions** — exactly the root-to-sink paths of the ``succ`` relation.
  Roots are the zero-wave requests, plus — under ``rescue_orphans`` — any
  released request no firing edge reaches (the rescued singletons).
  Without the rescue policy, a released request nothing reaches simply
  never exists, and reachability from the roots encodes that for free.

Paths are enumerated breadth-first over the whole batch (a trie of
``(request, parent)`` frontier blocks), so enumeration is also a handful of
array ops per depth level rather than a per-session Python walk.  Output
order within a user is deterministic — ``(path depth, discovery order)`` —
and independent of which other users share the batch, which is what makes
``columnar`` and ``columnar-parallel`` construction-order identical.  It
differs from the object engines' order; cross-engine comparison is by
canonical form, exactly as for ``maximal_sessions`` vs the fast path.

Float exactness
---------------
Every accepting comparison uses the *same* float expressions as the object
path — ``fl(t_b - t_a) <= ρ``, ``fl(t_i - t_first) > δ`` — never an
algebraically equal rearrangement.  Vectorized window discovery
(``searchsorted`` over offset timestamps) only ever produces *supersets*,
which the exact per-pair predicates then filter, so ρ/δ-boundary ties
resolve bit-identically to the object engines.
"""

from __future__ import annotations

import math
import os
from array import array
from bisect import bisect_right
from collections.abc import Sequence
from operator import attrgetter

from repro.core.config import SmartSRAConfig
from repro.exceptions import ConfigurationError, ReconstructionError
from repro.obs import SIZE_BUCKETS, get_registry
from repro.sessions.model import Request, Session
from repro.topology.graph import WebGraph

try:  # numpy is optional — the stdlib fallback reproduces it exactly
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the CI fallback leg
    _np = None

__all__ = [
    "COLUMNAR_FALLBACK_ENV",
    "numpy_available",
    "active_backend",
    "SymbolTable",
    "UserColumns",
    "ColumnBatch",
    "ColumnarPlane",
    "PlaneResult",
    "reconstruct_serial",
    "reconstruct_parallel",
]

#: setting this environment variable to anything non-empty other than
#: ``"0"`` forces the stdlib fallback even when numpy is importable —
#: how tests and the CI fallback leg exercise backend parity cheaply.
COLUMNAR_FALLBACK_ENV = "REPRO_COLUMNAR_FALLBACK"

#: dense adjacency matrices are capped at this many cells (16M booleans =
#: 16 MiB); larger topologies fall back to sorted-edge-key membership.
_DENSE_ADJACENCY_LIMIT = 1 << 24

# C-level attribute readers for the ingest hot loops.
_GET_TIMESTAMP = attrgetter("timestamp")
_GET_PAGE = attrgetter("page")


def numpy_available() -> bool:
    """Whether the numpy backend can be selected at all."""
    return _np is not None


def active_backend(backend: str | None = None) -> str:
    """Resolve a backend request to ``"numpy"`` or ``"fallback"``.

    Args:
        backend: ``None`` (follow :data:`COLUMNAR_FALLBACK_ENV`, then
            numpy availability) or an explicit ``"numpy"``/``"fallback"``.

    Raises:
        ConfigurationError: for an unknown name, or an explicit
            ``"numpy"`` request when numpy is not importable.
    """
    if backend is None:
        forced = os.environ.get(COLUMNAR_FALLBACK_ENV, "")
        if forced and forced != "0":
            return "fallback"
        return "numpy" if _np is not None else "fallback"
    if backend not in ("numpy", "fallback"):
        raise ConfigurationError(
            f"unknown columnar backend {backend!r}; "
            "use 'numpy' or 'fallback'")
    if backend == "numpy" and _np is None:
        raise ConfigurationError(
            "columnar backend 'numpy' requested but numpy is not importable")
    return backend


class SymbolTable:
    """Bidirectional page-URL ↔ integer-id interner.

    Seeded from a topology's :class:`~repro.topology.graph.AdjacencyIndex`
    so every topology page's symbol id **equals** its adjacency rank —
    the precomputed predecessor structures then apply to the columns
    directly.  Pages outside the topology intern on first sight to ids
    ``>= n_topology``; they have no links, so they never block and never
    extend (mirroring the object path's ``id -1`` convention).
    """

    __slots__ = ("_names", "_ids", "n_topology")

    def __init__(self, pages: Sequence[str] = ()) -> None:
        self._names: list[str] = list(pages)
        self._ids: dict[str, int] = {
            name: index for index, name in enumerate(self._names)}
        if len(self._ids) != len(self._names):
            raise ConfigurationError("symbol table seed has duplicate pages")
        #: ids below this bound are topology pages (== adjacency ranks).
        self.n_topology: int = len(self._names)

    @classmethod
    def for_topology(cls, topology: WebGraph) -> "SymbolTable":
        """Seed from ``topology`` so ids coincide with adjacency ranks."""
        return cls(topology.adjacency_index().pages)

    def intern(self, page: str) -> int:
        """Return ``page``'s id, assigning the next one on first sight."""
        ids = self._ids
        pid = ids.get(page)
        if pid is None:
            pid = ids[page] = len(self._names)
            self._names.append(page)
        return pid

    def resolve(self, pid: int) -> str:
        """The page name behind ``pid``.

        Raises:
            ReconstructionError: for an id this table never assigned.
        """
        if 0 <= pid < len(self._names):
            return self._names[pid]
        raise ReconstructionError(
            f"unknown page id {pid} (table holds {len(self._names)})")

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, page: str) -> bool:
        return page in self._ids

    @property
    def pages(self) -> tuple[str, ...]:
        """All interned page names, indexed by id."""
        return tuple(self._names)


#: referrer-id column value for "no referrer" (direct entry / plain CLF).
NO_REFERRER = -1


class UserColumns:
    """One user's clickstream as parallel columns — the pool work unit.

    Pickles as compact byte buffers instead of a list of ``Request``
    objects, which is what lets :func:`reconstruct_parallel` ship work to
    processes without the per-object serialization tax bench A17 measured.
    The wire form narrows page/referrer ids to int32 and elides the
    referrer/synthetic columns entirely when every value is the default
    (plain CLF logs), so a request costs 12 wire bytes against ~30 for a
    pickled ``Request`` — and, more importantly, decoding is a buffer
    copy, not per-object reconstruction.  The byte form is
    backend-neutral: a numpy parent can feed fallback workers and vice
    versa (both sides hold native-endian float64/int64 after decode).
    """

    __slots__ = ("user_id", "times", "pages", "referrers", "synthetic")

    def __init__(self, user_id: str, times, pages, referrers,
                 synthetic) -> None:
        self.user_id = user_id
        self.times = times
        self.pages = pages
        self.referrers = referrers
        self.synthetic = synthetic

    @classmethod
    def from_requests(cls, user_id: str, requests: Sequence[Request],
                      symbols: SymbolTable,
                      backend: str | None = None) -> "UserColumns":
        """Intern one user's (chronological) requests into columns."""
        ids = symbols._ids
        intern = symbols.intern
        times: list[float] = []
        pages: list[int] = []
        referrers: list[int] = []
        synthetic: list[int] = []
        for request in requests:
            times.append(request.timestamp)
            pid = ids.get(request.page)
            pages.append(pid if pid is not None else intern(request.page))
            referrer = request.referrer
            if referrer is None:
                referrers.append(NO_REFERRER)
            else:
                rid = ids.get(referrer)
                referrers.append(rid if rid is not None
                                 else intern(referrer))
            synthetic.append(1 if request.synthetic else 0)
        if active_backend(backend) == "numpy":
            return cls(user_id,
                       _np.asarray(times, dtype=_np.float64),
                       _np.asarray(pages, dtype=_np.int64),
                       _np.asarray(referrers, dtype=_np.int64),
                       _np.asarray(synthetic, dtype=_np.uint8))
        return cls(user_id, array("d", times), array("q", pages),
                   array("q", referrers), array("B", synthetic))

    def __len__(self) -> int:
        return len(self.times)

    def __getstate__(self):
        # ``None`` for the referrer column means "all NO_REFERRER" and
        # for the synthetic column "all false" — the plain-CLF common
        # case costs zero wire bytes.  Ids travel as int32 (a symbol
        # table big enough to overflow that would not fit in memory).
        referrers = (None if _column_all_equal(self.referrers, NO_REFERRER)
                     else _ids_to_bytes(self.referrers))
        synthetic = (None if _column_all_equal(self.synthetic, 0)
                     else _as_bytes(self.synthetic))
        return (self.user_id, len(self.times), _as_bytes(self.times),
                _ids_to_bytes(self.pages), referrers, synthetic)

    def __setstate__(self, state) -> None:
        user_id, count, times_b, pages_b, referrers_b, synthetic_b = state
        self.user_id = user_id
        if active_backend() == "numpy":
            self.times = _np.frombuffer(times_b, dtype=_np.float64)
            self.pages = _np.frombuffer(
                pages_b, dtype=_np.int32).astype(_np.int64)
            self.referrers = (
                _np.full(count, NO_REFERRER, dtype=_np.int64)
                if referrers_b is None else
                _np.frombuffer(referrers_b, dtype=_np.int32
                               ).astype(_np.int64))
            self.synthetic = (_np.zeros(count, dtype=_np.uint8)
                              if synthetic_b is None else
                              _np.frombuffer(synthetic_b, dtype=_np.uint8))
        else:
            self.times = _from_bytes("d", times_b)
            self.pages = array("q", _from_bytes("i", pages_b))
            self.referrers = (array("q", [NO_REFERRER]) * count
                              if referrers_b is None else
                              array("q", _from_bytes("i", referrers_b)))
            self.synthetic = (array("B", [0]) * count
                              if synthetic_b is None else
                              _from_bytes("B", synthetic_b))


def _as_bytes(column) -> bytes:
    return column.tobytes()


def _ids_to_bytes(column) -> bytes:
    """Narrow an int64 id column to its int32 wire form."""
    if _np is not None and isinstance(column, _np.ndarray):
        return column.astype(_np.int32).tobytes()
    return array("i", column).tobytes()


def _column_all_equal(column, value: int) -> bool:
    if _np is not None and isinstance(column, _np.ndarray):
        return bool((column == value).all())
    return all(entry == value for entry in column)


def _from_bytes(typecode: str, data: bytes):
    column = array(typecode)
    column.frombytes(data)
    return column


class ColumnBatch:
    """Many users' columns concatenated — what one plane pass consumes.

    Batching *across* users matters as much as vectorizing within one:
    per-array fixed overhead would otherwise dominate on real logs, where
    the median user contributes a handful of requests.  ``user_starts``
    has ``len(users) + 1`` entries (offset of each user plus the total),
    and candidate splitting forces a cut at every user boundary.
    """

    __slots__ = ("users", "user_starts", "times", "pages", "backend")

    def __init__(self, users, user_starts, times, pages,
                 backend: str) -> None:
        self.users = users
        self.user_starts = user_starts
        self.times = times
        self.pages = pages
        self.backend = backend

    @classmethod
    def from_user_requests(cls, items, symbols: SymbolTable,
                           backend: str | None = None) -> "ColumnBatch":
        """Intern ``[(user_id, sorted requests), ...]`` into one batch."""
        resolved = active_backend(backend)
        users: list[str] = []
        user_starts: list[int] = [0]
        cursor = 0
        for user_id, requests in items:
            users.append(user_id)
            cursor += len(requests)
            user_starts.append(cursor)
        pool: list[Request] = []
        for __, requests in items:
            pool.extend(requests)
        times = list(map(_GET_TIMESTAMP, pool))
        pages = list(map(symbols._ids.get, map(_GET_PAGE, pool)))
        if None in pages:     # only on first sight of off-topology pages
            intern = symbols.intern
            pages = [pid if pid is not None else intern(request.page)
                     for pid, request in zip(pages, pool)]
        if resolved == "numpy":
            return cls(users, _np.asarray(user_starts, dtype=_np.int64),
                       _np.asarray(times, dtype=_np.float64),
                       _np.asarray(pages, dtype=_np.int64), resolved)
        return cls(users, user_starts, array("d", times),
                   array("q", pages), resolved)

    @classmethod
    def from_user_columns(cls, columns: Sequence[UserColumns]
                          ) -> "ColumnBatch":
        """Concatenate per-user columns (all of one backend) into a batch."""
        backend = active_backend()
        users = [column.user_id for column in columns]
        user_starts: list[int] = [0]
        for column in columns:
            user_starts.append(user_starts[-1] + len(column))
        if backend == "numpy":
            times = (_np.concatenate([c.times for c in columns])
                     if columns else _np.zeros(0, dtype=_np.float64))
            pages = (_np.concatenate([c.pages for c in columns])
                     if columns else _np.zeros(0, dtype=_np.int64))
            return cls(users, _np.asarray(user_starts, dtype=_np.int64),
                       times, pages, backend)
        times = array("d")
        pages = array("q")
        for column in columns:
            times.extend(column.times)
            pages.extend(column.pages)
        return cls(users, user_starts, times, pages, backend)

    def __len__(self) -> int:
        return len(self.times)


class PlaneResult:
    """Index-level output of one plane pass, grouped by batch user.

    ``session_flat[session_offsets[i]:session_offsets[i + 1]]`` holds the
    ``i``-th session's request positions (batch-global, ascending-time);
    sessions are ordered user by user (batch user order).  Materialization
    back to :class:`~repro.sessions.model.Session` objects is the caller's
    boundary step — benches time the plane up to exactly this point.
    """

    __slots__ = ("session_offsets", "session_flat", "user_session_counts")

    def __init__(self, session_offsets, session_flat,
                 user_session_counts) -> None:
        self.session_offsets = session_offsets
        self.session_flat = session_flat
        self.user_session_counts = user_session_counts

    def __len__(self) -> int:
        return max(0, len(self.session_offsets) - 1)


class ColumnarPlane:
    """The reconstruction pipeline over columns for one heuristic config.

    Two shapes exist: the full Smart-SRA plane (Phase-1 split + the
    Phase-2 DAG pass) and split-only planes for the time-oriented
    heuristics (δ-only for heur1, ρ-only for heur2, both for the Phase-1
    ablation) — one bound at infinity disables that rule in exactly the
    object path's ``>`` form, since nothing exceeds infinity.
    """

    def __init__(self, symbols: SymbolTable, *, max_gap: float,
                 max_duration: float, phase2: bool = False,
                 rescue_orphans: bool = False,
                 publish_phase1: bool = False,
                 pred_id_sets: tuple[frozenset[int], ...] = ()) -> None:
        self.symbols = symbols
        self.max_gap = max_gap
        self.max_duration = max_duration
        self.phase2 = phase2
        self.rescue_orphans = rescue_orphans
        self.publish_phase1 = publish_phase1
        self.pred_id_sets = pred_id_sets
        self._dense = None       # lazy numpy adjacency (never pickled)
        self._edge_keys = None

    @classmethod
    def for_smart_sra(cls, topology: WebGraph,
                      config: SmartSRAConfig | None = None
                      ) -> "ColumnarPlane":
        """The full heur4 plane: split + topology DAG pass."""
        if config is None:
            config = SmartSRAConfig()
        index = topology.adjacency_index()
        return cls(SymbolTable(index.pages), max_gap=config.max_gap,
                   max_duration=config.max_duration, phase2=True,
                   rescue_orphans=config.rescue_orphans,
                   publish_phase1=True,
                   pred_id_sets=index.pred_id_sets)

    @classmethod
    def split_only(cls, *, max_gap: float = math.inf,
                   max_duration: float = math.inf,
                   publish_phase1: bool = False) -> "ColumnarPlane":
        """A time-rules-only plane (heur1 / heur2 / Phase-1 ablation)."""
        return cls(SymbolTable(), max_gap=max_gap,
                   max_duration=max_duration,
                   publish_phase1=publish_phase1)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_dense"] = None       # workers rebuild lazily, payloads
        state["_edge_keys"] = None   # stay slim (mirrors WebGraph)
        return state

    @property
    def n_topology(self) -> int:
        return self.symbols.n_topology

    # -- the pass ----------------------------------------------------------

    def run_batch(self, batch: ColumnBatch) -> PlaneResult:
        """Run the full plane over one batch, publishing obs tallies.

        Phase-1 counters (``sessions.phase1.*``) match the object path
        exactly; so do the Phase-2 tallies (``sessions.phase2.*`` —
        candidates, extension hits, orphan misses, session count), proven
        by the counter-parity unit test.
        """
        if batch.backend == "numpy":
            starts = _split_numpy(batch.times, batch.user_starts,
                                  self.max_gap, self.max_duration)
            self._publish_phase1(len(starts), len(batch),
                                 _sizes_numpy(starts, len(batch)))
            if not self.phase2:
                return _candidates_as_result_numpy(batch, starts)
            return self._phase2_numpy(batch, starts)
        starts = _split_fallback(batch.times, batch.user_starts,
                                 self.max_gap, self.max_duration)
        self._publish_phase1(len(starts), len(batch),
                             _sizes_fallback(starts, len(batch)))
        if not self.phase2:
            return _candidates_as_result_fallback(batch, starts)
        return self._phase2_fallback(batch, starts)

    def _publish_phase1(self, n_candidates: int, n_requests: int,
                        sizes) -> None:
        if not self.publish_phase1:
            return
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter("sessions.phase1.candidates").inc(n_candidates)
        registry.counter("sessions.phase1.requests").inc(n_requests)
        histogram = registry.histogram("sessions.phase1.candidate_size",
                                       SIZE_BUCKETS)
        for size in sizes:
            histogram.observe(size)

    def _publish_phase2(self, n_candidates: int, hits: int, misses: int,
                        sessions: int) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter("sessions.phase2.candidates").inc(n_candidates)
            registry.counter("sessions.phase2.extensions").inc(hits)
            registry.counter("sessions.phase2.orphans").inc(misses)
            registry.counter("sessions.phase2.sessions").inc(sessions)

    # -- adjacency ---------------------------------------------------------

    def _linked_numpy(self, pa, pb):
        """Vector bool: is there a hyperlink ``page pa → page pb``?"""
        np = _np
        n_topo = self.n_topology
        if n_topo == 0 or pa.size == 0:
            return np.zeros(pa.shape, dtype=bool)
        known = (pa < n_topo) & (pb < n_topo)
        keys = np.where(known, pa * n_topo + pb, 0)
        if n_topo * n_topo <= _DENSE_ADJACENCY_LIMIT:
            dense = self._dense
            if dense is None:
                dense = np.zeros(n_topo * n_topo, dtype=bool)
                for dst, preds in enumerate(self.pred_id_sets):
                    if preds:
                        sources = np.fromiter(preds, dtype=np.int64,
                                              count=len(preds))
                        dense[sources * n_topo + dst] = True
                self._dense = dense
            return dense[keys] & known
        edge_keys = self._edge_keys
        if edge_keys is None:
            flat = [src * n_topo + dst
                    for dst, preds in enumerate(self.pred_id_sets)
                    for src in preds]
            edge_keys = self._edge_keys = np.sort(
                np.asarray(flat, dtype=np.int64))
        if edge_keys.size == 0:
            return np.zeros(pa.shape, dtype=bool)
        positions = np.searchsorted(edge_keys, keys)
        positions[positions == edge_keys.size] = 0
        return (edge_keys[positions] == keys) & known

    # -- phase 2, numpy ----------------------------------------------------

    def _phase2_numpy(self, batch: ColumnBatch, starts) -> PlaneResult:
        np = _np
        t = batch.times
        n = t.shape[0]
        if n == 0:
            empty = np.zeros(0, dtype=np.int64)
            return PlaneResult(np.zeros(1, dtype=np.int64), empty,
                               np.zeros(len(batch.users), dtype=np.int64))
        max_gap = self.max_gap

        # Candidate geometry: ordinal and start offset per request.
        start_flags = np.zeros(n, dtype=np.int64)
        start_flags[starts] = 1
        cand_ord = np.cumsum(start_flags) - 1
        cand_start_of = starts[cand_ord]

        # Offset timestamps: per-candidate-normalized times spread onto a
        # stride that isolates candidates, so one global sorted array
        # answers every "tails within ρ of b, same candidate" window via
        # searchsorted.  Rounding only widens the windows (slack below);
        # the exact predicates filter afterwards.
        t_norm = t - t[cand_start_of]
        stride = float(t_norm.max()) + max_gap + 2.0
        t_off = t_norm + cand_ord * stride
        slack = 1e-6 + abs(float(t_off[-1])) * 1e-12
        arange_n = np.arange(n, dtype=np.int64)
        lo = np.searchsorted(t_off, t_off - max_gap - slack, side="left")

        # Expand windows to forward (tail a < released b) pairs only —
        # a ranges over [lo, b), so self-pairs and reversed pairs never
        # materialize.  Every window pair shares one candidate by
        # construction: candidates sit ≥ ρ + 2 apart on the t_off axis
        # (stride is the max span plus ρ + 2, slack is microseconds), so
        # the ρ-window can never reach a neighbour.  The exact predicate
        # is the object path's subtraction form; the window is only its
        # (slack-widened) superset.
        counts = arange_n - lo
        total = int(counts.sum())
        b_idx = np.repeat(arange_n, counts)
        exclusive = np.cumsum(counts) - counts
        a_idx = (np.arange(total, dtype=np.int64)
                 + np.repeat(lo - exclusive, counts))
        ok = t[b_idx] - t[a_idx] <= max_gap
        ok &= self._linked_numpy(batch.pages[a_idx], batch.pages[b_idx])
        fwd_a = a_idx[ok]
        fwd_b = b_idx[ok]

        # Reversed extension-only pairs exist solely inside runs of equal
        # timestamps (a > b, t_a == t_b) — expand those runs separately;
        # they are empty for most batches.
        eq_next = t_off[1:] == t_off[:-1]
        if bool(eq_next.any()):
            hi = np.searchsorted(t_off, t_off, side="right")
            rev_counts = hi - arange_n - 1
            rev_total = int(rev_counts.sum())
            rev_excl = np.cumsum(rev_counts) - rev_counts
            rb_idx = np.repeat(arange_n, rev_counts)
            ra_idx = (np.arange(rev_total, dtype=np.int64)
                      + np.repeat(arange_n + 1 - rev_excl, rev_counts))
            rok = t[ra_idx] == t[rb_idx]
            rok &= self._linked_numpy(batch.pages[ra_idx],
                                      batch.pages[rb_idx])
            rev_a = ra_idx[rok]
            rev_b = rb_idx[rok]
        else:
            rev_a = rev_b = np.zeros(0, dtype=np.int64)

        # Waves: longest-path depth over the forward (blocker) edges.
        wave = np.zeros(n, dtype=np.int64)
        if fwd_a.size:
            while True:
                relaxed = wave.copy()
                np.maximum.at(relaxed, fwd_b, wave[fwd_a] + 1)
                if np.array_equal(relaxed, wave):
                    break
                wave = relaxed
        rev_ok = wave[rev_a] < wave[rev_b]
        edge_a = np.concatenate([fwd_a, rev_a[rev_ok]])
        edge_b = np.concatenate([fwd_b, rev_b[rev_ok]])

        # succ: each tail keeps only edges into its minimal later wave.
        if edge_a.size:
            first_wave = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
            np.minimum.at(first_wave, edge_a, wave[edge_b])
            succ = wave[edge_b] == first_wave[edge_a]
            succ_a = edge_a[succ]
            succ_b = edge_b[succ]
            order = np.lexsort((succ_b, succ_a))
            succ_a = succ_a[order]
            succ_b = succ_b[order]
        else:
            succ_a = succ_b = np.zeros(0, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(succ_a, minlength=n), out=indptr[1:])
        outdeg = indptr[1:] - indptr[:-1]

        if self.rescue_orphans:
            placed = np.zeros(n, dtype=bool)
            placed[succ_b] = True    # under rescue every succ edge fires
            roots = np.flatnonzero((wave == 0) | ~placed)
        else:
            roots = np.flatnonzero(wave == 0)

        # Breadth-first path trie over the whole batch.  Each node also
        # remembers its path's root request, so leaves can be sorted into
        # batch user order before backfill (sessions never cross users: a
        # session's user is its root's).
        req_blocks = [roots]
        parent_blocks = [np.full(roots.size, -1, dtype=np.int64)]
        root_blocks = [roots]
        leaf_blocks: list = []
        leaf_depths: list[int] = []
        frontier_req = roots
        frontier_ids = np.arange(roots.size, dtype=np.int64)
        frontier_roots = roots
        trie_size = int(roots.size)
        depth = 0
        while frontier_req.size:
            degrees = outdeg[frontier_req]
            is_leaf = degrees == 0
            if is_leaf.any():
                leaf_blocks.append(frontier_ids[is_leaf])
                leaf_depths.append(depth)
            grow = ~is_leaf
            parents = frontier_req[grow]
            if parents.size == 0:
                break
            parent_ids = frontier_ids[grow]
            child_counts = degrees[grow]
            n_children = int(child_counts.sum())
            exclusive = np.cumsum(child_counts) - child_counts
            slots = (np.arange(n_children, dtype=np.int64)
                     - np.repeat(exclusive, child_counts)
                     + np.repeat(indptr[parents], child_counts))
            children = succ_b[slots]
            req_blocks.append(children)
            parent_blocks.append(np.repeat(parent_ids, child_counts))
            frontier_roots = np.repeat(frontier_roots[grow], child_counts)
            root_blocks.append(frontier_roots)
            frontier_req = children
            frontier_ids = np.arange(trie_size, trie_size + n_children,
                                     dtype=np.int64)
            trie_size += n_children
            depth += 1

        trie_req = np.concatenate(req_blocks)
        trie_parent = np.concatenate(parent_blocks)
        trie_root = np.concatenate(root_blocks)
        if leaf_blocks:
            leaf_ids = np.concatenate(leaf_blocks)
            lengths = np.concatenate(
                [np.full(block.size, block_depth + 1, dtype=np.int64)
                 for block, block_depth in zip(leaf_blocks, leaf_depths)])
        else:  # pragma: no cover - every root terminates somewhere
            leaf_ids = np.zeros(0, dtype=np.int64)
            lengths = np.zeros(0, dtype=np.int64)

        # Sort sessions into batch user order up front (stable, so the
        # within-user emission order is the leaf discovery order), then
        # backfill each path directly into its final slot.
        user_of = np.searchsorted(batch.user_starts, trie_root[leaf_ids],
                                  side="right") - 1
        order = np.argsort(user_of, kind="stable")
        leaf_ids = leaf_ids[order]
        lengths = lengths[order]
        offsets = np.zeros(leaf_ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        flat = np.empty(int(offsets[-1]), dtype=np.int64)
        cursor = leaf_ids
        positions = offsets[1:] - 1
        while cursor.size:    # backfill each path, one depth per step
            flat[positions] = trie_req[cursor]
            cursor = trie_parent[cursor]
            alive = cursor >= 0
            cursor = cursor[alive]
            positions = positions[alive] - 1
        user_counts = np.bincount(user_of, minlength=len(batch.users))

        released = int(np.count_nonzero(wave))
        if trie_req.size > roots.size:
            # hits = distinct extended requests = depth ≥ 1 trie nodes;
            # a scatter mask beats a sort-based unique here.
            reached = np.zeros(n, dtype=bool)
            reached[trie_req[roots.size:]] = True
            hits = int(np.count_nonzero(reached))
        else:
            hits = 0
        self._publish_phase2(int(starts.size), hits, released - hits,
                             int(leaf_ids.size))
        return PlaneResult(offsets, flat, user_counts)

    # -- phase 2, stdlib fallback -----------------------------------------

    def _phase2_fallback(self, batch: ColumnBatch, starts) -> PlaneResult:
        t = batch.times
        p = batch.pages
        n = len(t)
        if n == 0:
            return PlaneResult([0], [], [0] * len(batch.users))
        max_gap = self.max_gap
        pred_sets = self.pred_id_sets
        n_topo = self.n_topology

        wave = [0] * n
        fwd_edges: list[tuple[int, int]] = []
        rev_pairs: list[tuple[int, int]] = []
        bounds = list(starts) + [n]
        for c in range(len(starts)):
            lo, hi = bounds[c], bounds[c + 1]
            for b in range(lo, hi):
                pb = p[b]
                preds = pred_sets[pb] if 0 <= pb < n_topo else None
                tb = t[b]
                depth = 0
                if preds:
                    # Backward ρ-window scan, the object path's exact form.
                    for a in range(b - 1, lo - 1, -1):
                        if tb - t[a] > max_gap:
                            break
                        if p[a] in preds:
                            fwd_edges.append((a, b))
                            if wave[a] + 1 > depth:
                                depth = wave[a] + 1
                    # Reversed extenders: equal-time tails after b.
                    a = b + 1
                    while a < hi and t[a] == tb:
                        if p[a] in preds:
                            rev_pairs.append((a, b))
                        a += 1
                wave[b] = depth

        edges = fwd_edges + [(a, b) for a, b in rev_pairs
                             if wave[a] < wave[b]]
        first_wave = [n + 1] * n
        for a, b in edges:
            if wave[b] < first_wave[a]:
                first_wave[a] = wave[b]
        succ: list[list[int]] = [[] for __ in range(n)]
        for a, b in edges:
            if wave[b] == first_wave[a]:
                succ[a].append(b)
        for children in succ:
            children.sort()

        if self.rescue_orphans:
            placed = [False] * n
            for a, b in edges:
                if wave[b] == first_wave[a]:
                    placed[b] = True
            roots = [i for i in range(n) if wave[i] == 0 or not placed[i]]
        else:
            roots = [i for i in range(n) if wave[i] == 0]

        # Breadth-first trie — same traversal (and thus emission order)
        # as the vectorized version.
        trie_req: list[int] = list(roots)
        trie_parent: list[int] = [-1] * len(roots)
        frontier = list(range(len(roots)))
        leaves: list[int] = []
        leaf_lengths: list[int] = []
        reached: set[int] = set()
        depth = 0
        while frontier:
            grown: list[int] = []
            for trie_id in frontier:
                children = succ[trie_req[trie_id]]
                if not children:
                    leaves.append(trie_id)
                    leaf_lengths.append(depth + 1)
                    continue
                for child in children:
                    grown.append(len(trie_req))
                    trie_req.append(child)
                    trie_parent.append(trie_id)
                    reached.add(child)
            frontier = grown
            depth += 1

        offsets = [0]
        flat: list[int] = []
        for trie_id, length in zip(leaves, leaf_lengths):
            segment = [0] * length
            cursor = trie_id
            for slot in range(length - 1, -1, -1):
                segment[slot] = trie_req[cursor]
                cursor = trie_parent[cursor]
            flat.extend(segment)
            offsets.append(len(flat))

        released = sum(1 for w in wave if w > 0)
        hits = len(reached)
        self._publish_phase2(len(starts), hits, released - hits,
                             len(leaves))
        return _regroup_by_user_fallback(batch, offsets, flat)


# -- phase 1 ---------------------------------------------------------------

def _split_numpy(times, user_starts, max_gap: float, max_duration: float):
    """Candidate start offsets over a batch (numpy).

    Gap cuts and user boundaries come from one vectorized diff; the δ
    rule then refines only the (rare) segments whose total span exceeds
    it, re-testing candidates with ``searchsorted`` plus an exact
    subtraction-form adjustment so boundaries agree with the object path
    bit for bit.
    """
    np = _np
    n = times.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    diffs = times[1:] - times[:-1]
    is_user_start = np.zeros(n, dtype=bool)
    is_user_start[user_starts[:-1]] = True
    unsorted = (diffs < 0) & ~is_user_start[1:]
    if unsorted.any():
        i = int(np.flatnonzero(unsorted)[0])
        raise ReconstructionError(
            "request stream not sorted by timestamp: "
            f"{float(times[i])} then {float(times[i + 1])}")
    forced = is_user_start.copy()
    forced[1:] |= diffs > max_gap
    seg_starts = np.flatnonzero(forced)
    seg_ends = np.append(seg_starts[1:], n)
    overflow = np.flatnonzero(
        times[seg_ends - 1] - times[seg_starts] > max_duration)
    if overflow.size == 0:
        return seg_starts
    # Every overflowing segment advances one δ cut per round, all segments
    # at once: searchsorted over offset-isolated times proposes the cut,
    # then the exact subtraction-form predicate snaps it so boundaries
    # agree with the object path bit for bit (at most a rounding step or
    # two, because times[j] - times[cursor] is monotone in j).
    o_start = seg_starts[overflow]
    lengths = seg_ends[overflow] - o_start
    total = int(lengths.sum())
    excl = np.cumsum(lengths) - lengths
    gather = (np.arange(total, dtype=np.int64)
              - np.repeat(excl, lengths) + np.repeat(o_start, lengths))
    t_seg = times[gather]
    t_norm = t_seg - np.repeat(t_seg[excl], lengths)
    stride = float(t_norm.max()) + max_duration + 2.0
    t_off = t_norm + np.repeat(
        np.arange(overflow.size, dtype=np.float64) * stride, lengths)
    cur = excl
    end = excl + lengths
    cuts: list = []
    while True:
        active = t_seg[end - 1] - t_seg[cur] > max_duration
        if not active.any():
            break
        cur = cur[active]
        end = end[active]
        cut = np.searchsorted(t_off, t_off[cur] + max_duration,
                              side="right")
        while True:
            down = ((cut - 1 > cur)
                    & (t_seg[cut - 1] - t_seg[cur] > max_duration))
            if not down.any():
                break
            cut[down] -= 1
        while True:
            probe = np.minimum(cut, end - 1)
            up = (cut < end) & (t_seg[probe] - t_seg[cur] <= max_duration)
            if not up.any():
                break
            cut[up] += 1
        cuts.append(gather[cut])
        cur = cut
    return np.unique(np.concatenate([seg_starts] + cuts))


def _split_fallback(times, user_starts, max_gap: float,
                    max_duration: float) -> list[int]:
    """Candidate start offsets over a batch (stdlib) — the object loop."""
    starts: list[int] = []
    for u in range(len(user_starts) - 1):
        lo, hi = user_starts[u], user_starts[u + 1]
        if lo == hi:
            continue
        starts.append(lo)
        first = lo
        previous = times[lo]
        for i in range(lo + 1, hi):
            current = times[i]
            if current < previous:
                raise ReconstructionError(
                    "request stream not sorted by timestamp: "
                    f"{previous} then {current}")
            if (current - previous > max_gap
                    or current - times[first] > max_duration):
                starts.append(i)
                first = i
            previous = current
    return starts


def _sizes_numpy(starts, n: int):
    return _np.diff(_np.append(starts, n)).tolist()


def _sizes_fallback(starts: list[int], n: int) -> list[int]:
    bounds = starts + [n]
    return [bounds[i + 1] - bounds[i] for i in range(len(starts))]


# -- result shaping --------------------------------------------------------

def _candidates_as_result_numpy(batch: ColumnBatch, starts) -> PlaneResult:
    np = _np
    n = len(batch)
    offsets = np.append(starts, n)
    counts = np.diff(np.searchsorted(starts, batch.user_starts))
    return PlaneResult(offsets if n else np.zeros(1, dtype=np.int64),
                       np.arange(n, dtype=np.int64), counts)


def _candidates_as_result_fallback(batch: ColumnBatch,
                                   starts: list[int]) -> PlaneResult:
    n = len(batch)
    user_starts = batch.user_starts
    counts = []
    for u in range(len(batch.users)):
        counts.append(bisect_right(starts, user_starts[u + 1] - 1)
                      - bisect_right(starts, user_starts[u] - 1))
    return PlaneResult(starts + [n] if n else [0], list(range(n)), counts)


def _regroup_by_user_fallback(batch: ColumnBatch, offsets: list[int],
                              flat: list[int]) -> PlaneResult:
    n_sessions = len(offsets) - 1
    user_starts = batch.user_starts
    user_of = [bisect_right(user_starts, flat[offsets[i]]) - 1
               for i in range(n_sessions)]
    order = sorted(range(n_sessions), key=user_of.__getitem__)
    offsets2 = [0]
    flat2: list[int] = []
    for i in order:
        flat2.extend(flat[offsets[i]:offsets[i + 1]])
        offsets2.append(len(flat2))
    counts = [0] * len(batch.users)
    for u in user_of:
        counts[u] += 1
    return PlaneResult(offsets2, flat2, counts)


# -- materialization & drivers --------------------------------------------

def materialize_sessions(items, result: PlaneResult) -> list[Session]:
    """Turn index-level plane output back into ``Session`` objects.

    Reuses the *original* ``Request`` objects (``items`` aligns with the
    batch's users), so ``synthetic``/``referrer`` metadata survives
    exactly and no new request allocation happens at the boundary.  One
    C-level gather picks every referenced request; each session is then a
    tuple slice, so the per-session Python cost is one constructor call.
    """
    offsets = _tolist(result.session_offsets)
    flat = _tolist(result.session_flat)
    pool: list[Request] = []
    for __, requests in items:
        pool.extend(requests)
    picked = tuple(map(pool.__getitem__, flat))
    from_trusted = Session.from_trusted_parts
    return [from_trusted(picked[lo:hi])
            for lo, hi in zip(offsets, offsets[1:])]


def _tolist(column):
    return column.tolist() if hasattr(column, "tolist") else column


def reconstruct_serial(plane: ColumnarPlane, per_user,
                       backend: str | None = None) -> list[Session]:
    """One batched plane pass over every user, then materialize."""
    items = list(per_user.items())
    batch = ColumnBatch.from_user_requests(items, plane.symbols,
                                           backend=backend)
    result = plane.run_batch(batch)
    return materialize_sessions(items, result)


def _run_block(block: Sequence[UserColumns], plane: ColumnarPlane):
    """Pool work function: one block of user columns → compact payload.

    Returns ``(user_ids, session counts, session offsets, flat user-local
    request indices)`` — plain ints and small buffers, so results cross
    the pool as cheaply as the column inputs did.  Self-describing
    (user ids travel along), so supervised skip-degradation cannot
    misalign decoding.
    """
    batch = ColumnBatch.from_user_columns(block)
    result = plane.run_batch(batch)
    offsets = _tolist(result.session_offsets)
    counts = _tolist(result.user_session_counts)
    if batch.backend == "numpy":
        np = _np
        lengths = np.diff(result.session_offsets)
        user_of = np.repeat(
            np.arange(len(batch.users), dtype=np.int64),
            result.user_session_counts)
        base = np.repeat(batch.user_starts[user_of], lengths)
        local = array("q")
        local.frombytes((result.session_flat - base).tobytes())
    else:
        flat = result.session_flat
        user_starts = batch.user_starts
        local = array("q")
        cursor = 0
        for u in range(len(batch.users)):
            base = user_starts[u]
            for __ in range(counts[u]):
                lo, hi = offsets[cursor], offsets[cursor + 1]
                cursor += 1
                local.extend(flat[j] - base for j in range(lo, hi))
    return (list(batch.users), counts, offsets, local)


def reconstruct_parallel(plane: ColumnarPlane, per_user, *,
                         workers: int | None, mode: str = "auto",
                         supervision=None) -> list[Session]:
    """Fan the plane out over user blocks; materialize parent-side.

    Workers receive :class:`UserColumns` buffers and return index lists,
    so ``Request`` objects never cross the pool in either direction —
    the A17 fix.  Output is construction-order identical to
    :func:`reconstruct_serial`: blocks are contiguous user slices and a
    user's session order never depends on its batch-mates.
    """
    import functools

    from repro.parallel import parallel_map, shard_by_user_columns

    items = list(per_user.items())
    blocks = shard_by_user_columns(items, plane.symbols)
    payloads = parallel_map(functools.partial(_run_block, plane=plane),
                            blocks, workers=workers, mode=mode,
                            chunk_size=1, supervision=supervision)
    sessions: list[Session] = []
    from_trusted = Session.from_trusted_parts
    for user_ids, counts, offsets, flat in payloads:
        cursor = 0
        slot = 0
        for user_id, count in zip(user_ids, counts):
            getter = per_user[user_id].__getitem__
            for __ in range(count):
                length = offsets[cursor + 1] - offsets[cursor]
                cursor += 1
                sessions.append(from_trusted(
                    tuple(map(getter, flat[slot:slot + length]))))
                slot += length
    return sessions
