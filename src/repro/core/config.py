"""Configuration for Smart-SRA."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["SmartSRAConfig"]


@dataclass(frozen=True, slots=True)
class SmartSRAConfig:
    """Thresholds and policy knobs for Smart-SRA.

    Attributes:
        max_duration: δ — total candidate-session duration bound, seconds
            (paper default: 30 minutes).  Enforced by Phase 1 only; the
            paper notes the overall duration limit "is already guaranteed
            after performing the first phase".
        max_gap: ρ — page-stay bound, seconds (paper default: 10 minutes).
            Enforced by Phase 1 between consecutive requests and by Phase 2
            both in the referrer scan (Step I) and when extending sessions
            (Step III).
        rescue_orphans: safety net for Phase 2's Step III: a released page
            that extends no open session would be silently dropped (the
            paper's pseudocode has the same property).  For chronologically
            sorted candidates this provably never happens — a released
            page's last blocking referrer always terminates an open session
            one round earlier, within ρ — so the default ``False`` is both
            faithful and lossless (asserted by
            ``tests/property/test_smart_sra_properties.py``).  ``True``
            turns the would-be drop into a singleton session, guarding
            degraded inputs and rule experiments.
    """

    max_duration: float = 30.0 * 60.0
    max_gap: float = 10.0 * 60.0
    rescue_orphans: bool = False

    def __post_init__(self) -> None:
        if self.max_duration <= 0:
            raise ConfigurationError(
                f"max_duration must be positive, got {self.max_duration}")
        if self.max_gap <= 0:
            raise ConfigurationError(
                f"max_gap must be positive, got {self.max_gap}")
        if self.max_gap > self.max_duration:
            raise ConfigurationError(
                "max_gap (ρ) cannot exceed max_duration (δ): "
                f"{self.max_gap} > {self.max_duration}")
