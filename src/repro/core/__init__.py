"""Smart-SRA — the paper's primary contribution (§3).

Smart-SRA (Smart Session Reconstruction Algorithm) reconstructs user
sessions from a server log in two phases:

* **Phase 1** (:mod:`repro.core.phase1`) splits each user's request stream
  into *candidate sessions* using both classic time rules — total duration
  ≤ δ (30 min) and page-stay gap ≤ ρ (10 min).
* **Phase 2** (:mod:`repro.core.phase2`) re-partitions every candidate into
  **maximal** page sequences satisfying the timestamp-ordering rule and the
  topology rule (every consecutive pair hyperlinked, within ρ), without
  inserting the artificial backward movements the navigation-oriented
  heuristic needs.

Use :class:`~repro.core.smart_sra.SmartSRA` as a drop-in
:class:`~repro.sessions.base.SessionReconstructor`:

    >>> from repro.core import SmartSRA
    >>> from repro.topology import random_site
    >>> topology = random_site(50, 5, seed=7)
    >>> reconstructor = SmartSRA(topology)

"""

# columnar first: it pulls in the repro.sessions package, whose
# maximal_paths module imports repro.core.amp — importing amp before the
# sessions package finishes initializing would close an import cycle.
from repro.core.columnar import ColumnarPlane, SymbolTable, UserColumns
from repro.core.amp import (
    AMPConfig,
    amp_sessions_optimized,
    amp_sessions_reference,
    audit_amp_config,
    count_maximal_paths,
)
from repro.core.config import SmartSRAConfig
from repro.core.phase1 import split_candidates
from repro.core.phase2 import maximal_sessions, maximal_sessions_fast
from repro.core.smart_sra import Phase1Only, SmartSRA

__all__ = [
    "SmartSRA",
    "Phase1Only",
    "SmartSRAConfig",
    "AMPConfig",
    "split_candidates",
    "maximal_sessions",
    "maximal_sessions_fast",
    "amp_sessions_reference",
    "amp_sessions_optimized",
    "count_maximal_paths",
    "audit_amp_config",
    "ColumnarPlane",
    "SymbolTable",
    "UserColumns",
]
