"""All-Maximal-Paths (AMP) — the Bayir–Toroslu 2013 Phase-2 generalization.

Smart-SRA's Phase 2 extends *one wave* of maximal link-consistent
sessions.  The authors' follow-up — "Link Based Session Reconstruction:
Finding All Maximal Paths" (arXiv 1307.1927, PAPERS.md) — generalizes it:
model each Phase-1 candidate as a DAG over request *ordinals* with an edge
``a → b`` whenever

* ``a`` precedes ``b`` in the candidate (timestamp ordering rule; ties
  resolve by ordinal, matching the candidate's stable sort order),
* ``0 ≤ t_b − t_a ≤ ρ`` (page-stay rule), and
* the topology has a hyperlink ``page_a → page_b`` (topology rule),

then emit **every maximal path**: every path from a root (in-degree 0) to
a sink (out-degree 0).  The total-duration rule (δ) needs no per-path
check — Phase 1 already bounds the whole candidate's span, and every path
lives inside it.

Two properties this module relies on (both property-tested):

* **Nothing is dropped.**  Every request is reachable from some root
  (walk blockers backwards until in-degree 0), so every request appears
  in at least one emitted path — unlike Phase 2, whose released pages can
  be orphaned under degraded inputs.
* **Maximality is structural.**  No emitted path is a proper *contiguous*
  infix of another: a path starts at an in-degree-0 node and ends at an
  out-degree-0 node, so any contiguous containment would contradict one
  endpoint's degree.  (Plain *subsequence* containment is legal output —
  ``[P1, P3]`` alongside ``[P1, P2, P3]`` when the link ``P1 → P3``
  exists — which is why the invariant verifier's maximality rule is
  semantics-aware; see :mod:`repro.diffcheck.invariants`.)

The danger is exactly the one Meiss et al. ("What's in a Session",
PAPERS.md) predict: dense, cyclic, crawler-shaped click graphs make the
path count combinatorial (a length-``n`` candidate over a complete
topology has ``2^(n-2)`` maximal paths).  Both implementations therefore
compute the **exact** path count first — an O(V+E) big-int dynamic
program, no enumeration — and apply the configured
:class:`AMPConfig` overflow policy *before* materializing anything, so
memory stays bounded no matter how adversarial the workload.

Two implementations, byte-identical canonical digests required (enforced
by the ``amp-reference`` / ``amp-optimized`` diffcheck engines):

* :func:`amp_sessions_reference` — clear DFS over the candidate graph
  built with :meth:`~repro.topology.graph.WebGraph.has_link` calls.
* :func:`amp_sessions_optimized` — interned adjacency from
  :class:`repro.core.columnar.SymbolTable` (ids == adjacency ranks, so
  link tests are set-membership on ints), backward ρ-window edge scan,
  and memoized suffix extension (each node's maximal suffixes are built
  once, bottom-up in reverse ordinal order, instead of re-walked per
  path).

Both enumerate in the same order — roots by ascending ordinal, successors
by ascending ordinal — so even *truncated* outputs agree byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.config import SmartSRAConfig
from repro.exceptions import ConfigurationError, PathBudgetError
from repro.obs import get_registry
from repro.sessions.model import Request, Session
from repro.topology.graph import WebGraph

__all__ = [
    "AMP_OVERFLOW_POLICIES",
    "AMPConfig",
    "AMPCandidateOutcome",
    "count_maximal_paths",
    "amp_sessions_reference",
    "amp_sessions_optimized",
    "AMPAudit",
    "audit_amp_config",
]

#: Legal :attr:`AMPConfig.overflow` policies, in degradation-severity order.
AMP_OVERFLOW_POLICIES = ("block", "truncate", "raise")


@dataclass(frozen=True, slots=True)
class AMPConfig:
    """Explosion guards for All-Maximal-Paths enumeration.

    Attributes:
        path_budget: maximum number of maximal paths one Phase-1 candidate
            may emit.  The exact count is known *before* enumeration (an
            O(V+E) counting pass), so the budget is enforced without
            materializing a single over-budget path.
        overflow: what to do when a candidate's exact path count exceeds
            ``path_budget``:

            * ``"block"`` — skip the candidate entirely (emit nothing for
              it) and count it in ``sessions.amp.blocked_candidates``;
            * ``"truncate"`` (default) — emit exactly the first
              ``path_budget`` paths in the deterministic shared
              enumeration order, so reference and optimized digests still
              agree byte for byte;
            * ``"raise"`` — raise :class:`~repro.exceptions.PathBudgetError`
              with the offending count.
    """

    path_budget: int = 4096
    overflow: str = "truncate"

    def __post_init__(self) -> None:
        if self.path_budget < 1:
            raise ConfigurationError(
                f"path_budget must be at least 1, got {self.path_budget}")
        if self.overflow not in AMP_OVERFLOW_POLICIES:
            raise ConfigurationError(
                f"unknown overflow policy {self.overflow!r}; expected one "
                f"of {', '.join(AMP_OVERFLOW_POLICIES)}")


@dataclass(slots=True)
class AMPCandidateOutcome:
    """Per-candidate enumeration result, budget verdict included.

    Attributes:
        sessions: the emitted maximal-path sessions (possibly truncated,
            possibly empty under ``"block"``).
        path_count: the *exact* number of maximal paths the candidate
            graph holds, regardless of how many were emitted.
        policy: ``None`` when the candidate fit its budget, else the
            overflow policy that fired (``"block"`` or ``"truncate"``;
            ``"raise"`` never returns).
    """

    sessions: list[Session]
    path_count: int
    policy: str | None


def _publish_amp(candidates: int, paths: int, truncated_paths: int,
                 blocked: int) -> None:
    """Flush AMP tallies to the ambient registry (phase2 idiom: the hot
    loop stays metric-free, one flush per reconstruct-user call)."""
    registry = get_registry()
    if registry.enabled:
        registry.counter("sessions.amp.candidates").inc(candidates)
        registry.counter("sessions.amp.paths").inc(paths)
        registry.counter("sessions.amp.truncated_paths").inc(truncated_paths)
        registry.counter("sessions.amp.blocked_candidates").inc(blocked)


# -- candidate graph construction --------------------------------------------


def _graph_reference(candidate: Sequence[Request], topology: WebGraph,
                     max_gap: float
                     ) -> tuple[list[int], list[list[int]]]:
    """Build the candidate DAG with plain :meth:`WebGraph.has_link` calls.

    Returns ``(roots, successors)`` over request ordinals; successor lists
    are ascending (the shared enumeration order).  The forward scan stops
    at the first request past the ρ window — timestamps are sorted, so the
    gap is monotone in ``j``.
    """
    n = len(candidate)
    successors: list[list[int]] = [[] for __ in range(n)]
    in_degree = [0] * n
    for i in range(n):
        earlier = candidate[i]
        for j in range(i + 1, n):
            later = candidate[j]
            # same subtraction form as Phase 2's window test — never
            # rearranged algebraically, so float rounding cannot disagree
            # between implementations.
            gap = later.timestamp - earlier.timestamp
            if gap > max_gap:
                break
            if 0 <= gap and topology.has_link(earlier.page, later.page):
                successors[i].append(j)
                in_degree[j] += 1
    roots = [i for i in range(n) if in_degree[i] == 0]
    return roots, successors


def _graph_interned(times: Sequence[float], ids: Sequence[int],
                    pred_id_sets: Sequence[frozenset[int]], n_topology: int,
                    max_gap: float) -> tuple[list[int], list[list[int]]]:
    """Build the candidate DAG on interned symbol ids.

    ``ids`` come from a :class:`~repro.core.columnar.SymbolTable` seeded
    for the topology, so topology pages carry their adjacency rank
    (``< n_topology``) and the link test is integer set membership on the
    precomputed predecessor sets; off-topology pages (``>= n_topology``)
    have no links in either direction.  The backward scan from each
    ``j`` stops at the first request outside the ρ window, mirroring
    :func:`repro.core.phase2.maximal_sessions_fast`'s blocker scan.
    """
    n = len(times)
    successors: list[list[int]] = [[] for __ in range(n)]
    in_degree = [0] * n
    for j in range(n):
        pid = ids[j]
        if pid >= n_topology:
            continue
        predecessors = pred_id_sets[pid]
        if not predecessors:
            continue
        timestamp = times[j]
        for i in range(j - 1, -1, -1):
            if timestamp - times[i] > max_gap:
                break
            if ids[i] in predecessors:
                # outer j ascends, so each successors[i] stays ascending.
                successors[i].append(j)
                in_degree[j] += 1
    roots = [i for i in range(n) if in_degree[i] == 0]
    return roots, successors


# -- counting and enumeration ------------------------------------------------


def count_maximal_paths(roots: Sequence[int],
                        successors: Sequence[Sequence[int]]) -> int:
    """Exact maximal-path count of a candidate DAG, without enumerating.

    ``paths_from[i]`` is 1 at a sink, else the sum over successors —
    evaluated in reverse ordinal order (edges only go forward, so that is
    a reverse topological order).  Python big ints make the count exact
    even when it is astronomically past any budget (a length-50 complete
    candidate counts ``2^48`` paths in microseconds).
    """
    n = len(successors)
    paths_from = [0] * n
    for i in range(n - 1, -1, -1):
        succ = successors[i]
        paths_from[i] = (1 if not succ
                         else sum(paths_from[j] for j in succ))
    return sum(paths_from[i] for i in roots)


def _iter_paths(roots: Sequence[int],
                successors: Sequence[Sequence[int]]):
    """Lazily yield every maximal path in the shared enumeration order.

    Iterative DFS (explicit stack — adversarial candidates can be longer
    than the recursion limit): roots ascending, successors ascending, so
    paths arrive in lexicographic ordinal order.  Used by the reference
    implementation always, and by the optimized one under ``"truncate"``
    where materializing the memo table would defeat the budget's point.
    """
    for root in roots:
        path = [root]
        # (node, index of the next successor to descend into)
        stack: list[tuple[int, int]] = [(root, 0)]
        while stack:
            node, cursor = stack[-1]
            succ = successors[node]
            if not succ:
                yield tuple(path)
                stack.pop()
                path.pop()
                continue
            if cursor == len(succ):
                stack.pop()
                path.pop()
                continue
            stack[-1] = (node, cursor + 1)
            child = succ[cursor]
            stack.append((child, 0))
            path.append(child)


def _suffix_paths(successors: Sequence[Sequence[int]]
                  ) -> list[list[tuple[int, ...]]]:
    """Memoized suffix extension: every node's maximal suffixes, built once.

    Reverse ordinal order is reverse topological order, so each node's
    suffix list concatenates its successors' already-built lists — shared
    suffixes are walked once instead of once per path through them.  List
    order per node is (successor ascending, then that successor's own
    order), which makes ``suffixes[root]`` identical to the DFS order of
    :func:`_iter_paths` from that root.
    """
    n = len(successors)
    suffixes: list[list[tuple[int, ...]]] = [[] for __ in range(n)]
    for i in range(n - 1, -1, -1):
        succ = successors[i]
        if not succ:
            suffixes[i] = [(i,)]
        else:
            suffixes[i] = [(i,) + tail
                           for j in succ for tail in suffixes[j]]
    return suffixes


# -- the two public per-candidate entry points -------------------------------


def _budget_verdict(count: int, amp: AMPConfig,
                    candidate: Sequence[Request]) -> str | None:
    """Apply the overflow policy to an exact pre-enumeration count."""
    if count <= amp.path_budget:
        return None
    if amp.overflow == "raise":
        user = candidate[0].user_id if candidate else "?"
        raise PathBudgetError(
            f"candidate for user {user!r} ({len(candidate)} requests) has "
            f"{count} maximal paths, over the path budget of "
            f"{amp.path_budget}; lower the density, raise the budget, or "
            f"pick overflow='block'/'truncate'")
    return amp.overflow


def amp_sessions_reference(candidate: Sequence[Request], topology: WebGraph,
                           config: SmartSRAConfig | None = None,
                           amp: AMPConfig | None = None
                           ) -> AMPCandidateOutcome:
    """Enumerate one candidate's maximal paths — clear reference version.

    Args:
        candidate: a chronological Phase-1 candidate
            (:func:`repro.core.phase1.split_candidates` output).
        topology: the site's hyperlink graph; off-topology pages have no
            links and become singleton paths.
        config: Smart-SRA thresholds (only ρ = ``max_gap`` is consulted;
            δ is already enforced by Phase 1 on the whole candidate).
        amp: explosion guards; defaults to :class:`AMPConfig`'s.
    """
    if config is None:
        config = SmartSRAConfig()
    if amp is None:
        amp = AMPConfig()
    if not candidate:
        return AMPCandidateOutcome([], 0, None)
    roots, successors = _graph_reference(candidate, topology, config.max_gap)
    count = count_maximal_paths(roots, successors)
    policy = _budget_verdict(count, amp, candidate)
    if policy == "block":
        return AMPCandidateOutcome([], count, policy)
    sessions: list[Session] = []
    for path in _iter_paths(roots, successors):
        if len(sessions) == amp.path_budget:
            break
        sessions.append(Session([candidate[i] for i in path]))
    return AMPCandidateOutcome(sessions, count, policy)


def amp_sessions_optimized(candidate: Sequence[Request], topology: WebGraph,
                           config: SmartSRAConfig | None = None,
                           amp: AMPConfig | None = None, *,
                           interner: Any | None = None
                           ) -> AMPCandidateOutcome:
    """Enumerate one candidate's maximal paths — interned, memoized version.

    Same contract and byte-identical output as
    :func:`amp_sessions_reference`; see the module docstring for what is
    optimized.  ``interner`` is an optional pre-built
    :class:`~repro.core.columnar.SymbolTable` to reuse across candidates
    (the reconstructor builds one per reconstruct call); when ``None`` a
    fresh table is seeded from ``topology``.

    Under ``"truncate"`` overflow the memo table is *not* built — its
    size tracks the full path count, which is exactly what the budget
    exists to avoid — so the first ``path_budget`` paths stream out of
    the lazy shared-order DFS instead.
    """
    # Imported here: repro.core.columnar imports sessions.model and
    # topology, and keeping core.amp importable without pulling the whole
    # columnar plane keeps the stdlib-fallback cold path cheap.
    from repro.core.columnar import SymbolTable

    if config is None:
        config = SmartSRAConfig()
    if amp is None:
        amp = AMPConfig()
    if not candidate:
        return AMPCandidateOutcome([], 0, None)
    symbols = interner if interner is not None else (
        SymbolTable.for_topology(topology))
    index = topology.adjacency_index()
    intern = symbols.intern
    ids = [intern(request.page) for request in candidate]
    times = [request.timestamp for request in candidate]
    roots, successors = _graph_interned(
        times, ids, index.pred_id_sets, symbols.n_topology, config.max_gap)
    count = count_maximal_paths(roots, successors)
    policy = _budget_verdict(count, amp, candidate)
    if policy == "block":
        return AMPCandidateOutcome([], count, policy)
    sessions: list[Session] = []
    if policy == "truncate":
        for path in _iter_paths(roots, successors):
            if len(sessions) == amp.path_budget:
                break
            sessions.append(Session.from_trusted_parts(
                tuple(candidate[i] for i in path)))
    else:
        suffixes = _suffix_paths(successors)
        for root in roots:
            for path in suffixes[root]:
                sessions.append(Session.from_trusted_parts(
                    tuple(candidate[i] for i in path)))
    return AMPCandidateOutcome(sessions, count, policy)


# -- configuration audit (repro doctor) --------------------------------------


@dataclass(slots=True)
class AMPAudit:
    """Outcome of auditing an AMP configuration (``repro doctor``).

    Attributes:
        amp: the audited configuration.
        checks: ``(level, message)`` conclusions; levels are ``"ok"``,
            ``"warn"`` and ``"FAIL"`` (same vocabulary as
            :class:`repro.streaming.governor.OverloadAudit`).
    """

    amp: AMPConfig
    checks: list[tuple[str, str]]

    @property
    def ok(self) -> bool:
        """True when no check failed (warnings are advisory)."""
        return all(level != "FAIL" for level, _ in self.checks)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (``repro doctor --json``)."""
        return {
            "path_budget": self.amp.path_budget,
            "overflow": self.amp.overflow,
            "checks": [{"level": level, "message": message}
                       for level, message in self.checks],
            "ok": self.ok,
        }

    def render(self) -> str:
        """Human-readable audit, one conclusion per line."""
        lines = [
            f"amp configuration: path-budget={self.amp.path_budget}"
            f" overflow={self.amp.overflow}"]
        for level, message in self.checks:
            lines.append(f"  {level:<4}  {message}")
        lines.append(f"  verdict: {'ok' if self.ok else 'DEGRADED'}")
        return "\n".join(lines)


def audit_amp_config(amp: AMPConfig, *, memory_budget: int | None = None,
                     typical_cost: int = 96,
                     typical_path_length: int = 8) -> AMPAudit:
    """Audit an AMP configuration for operational sanity.

    Static construction errors are :class:`ConfigurationError` at
    :class:`AMPConfig` time; this audit catches configurations that are
    *legal but degenerate* — above all a path budget whose worst-case
    materialized output dwarfs the streaming governor's memory budget,
    which would let a single dense candidate blow the budget the governor
    thinks it is enforcing.

    Args:
        amp: the (already validated) configuration to audit.
        memory_budget: the streaming governor's memory budget in bytes,
            when AMP runs behind the governed pipeline; ``None`` audits
            the config standalone.
        typical_cost: planning estimate for one request's tracked bytes.
        typical_path_length: planning estimate for one maximal path's
            request count.
    """
    checks: list[tuple[str, str]] = []
    worst_case = amp.path_budget * typical_path_length * typical_cost
    checks.append(
        ("ok", f"worst case ~{worst_case}B materialized per candidate "
               f"({amp.path_budget} paths x {typical_path_length} requests "
               f"x {typical_cost}B)"))
    if memory_budget is not None:
        if worst_case > memory_budget:
            checks.append(
                ("FAIL", f"one over-budget candidate materializes "
                         f"~{worst_case}B, over the governor's whole "
                         f"memory budget ({memory_budget}B) — the path "
                         f"budget undoes the memory budget; lower "
                         f"path_budget below ~"
                         f"{memory_budget // (typical_path_length * typical_cost)}"))
        elif worst_case > memory_budget // 2:
            checks.append(
                ("warn", f"one candidate may materialize ~{worst_case}B "
                         f"({100 * worst_case / memory_budget:.0f}% of the "
                         f"governor's budget); expect rebalancing churn "
                         f"while AMP output drains"))
        else:
            checks.append(
                ("ok", f"path budget fits the governor's memory budget "
                       f"({100 * worst_case / memory_budget:.1f}%)"))
    if amp.overflow == "raise":
        checks.append(
            ("warn", "overflow='raise' turns adversarial traffic into hard "
                     "failures; block/truncate degrade gracefully"))
    if amp.path_budget > 1_000_000:
        checks.append(
            ("warn", f"path_budget {amp.path_budget} is past 1M; counting "
                     f"stays exact but enumeration cost is linear in the "
                     f"budget"))
    return AMPAudit(amp=amp, checks=checks)
