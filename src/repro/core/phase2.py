"""Smart-SRA Phase 2 — topological maximal-session extraction.

Phase 2 (paper Figure 2) turns one time-consistent candidate session into
the set of **maximal** page sequences that satisfy both

* the *timestamp ordering rule* — pages appear in increasing request-time
  order with consecutive gaps ≤ ρ, and
* the *topology rule* — every consecutive pair is connected by a hyperlink.

It iterates three steps until the candidate is exhausted:

* **Step I** — collect the candidate's current *referrer-free* pages: pages
  with no earlier candidate member linking to them within ρ.  (The paper's
  pseudocode writes the referrer scan with ``j > i``; its worked example —
  Tables 3-4, where ``P1`` is the sole initial start page — requires
  *earlier* pages, i.e. ``j < i``.  We follow the worked example; see
  DESIGN.md.)
* **Step II** — remove those pages from the candidate.
* **Step III** — extend every open session whose last page hyperlinks to a
  removed page within ρ, possibly *branching* one session into several;
  sessions that could not be extended are carried over unchanged (this is
  what makes the output maximal).  On the first iteration each removed page
  simply opens its own session.

The worked example — candidate ``P1@0 P20@6 P13@9 P49@12 P34@14 P23@15``
over the Figure 1 topology yielding exactly ``[P1 P13 P34 P23]``,
``[P1 P13 P49 P23]`` and ``[P1 P20 P23]`` — is verified in
``tests/unit/test_smart_sra.py``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import SmartSRAConfig
from repro.obs import get_registry
from repro.sessions.model import Request, Session
from repro.topology.graph import WebGraph

__all__ = ["maximal_sessions", "maximal_sessions_fast"]


def _publish_phase2(extensions: int, orphans: int, sessions: int) -> None:
    """Flush one candidate's Phase-2 tallies to the ambient registry.

    ``extensions`` are topology-rule hits (a released page legally
    extended an open session); ``orphans`` are misses (a released page
    matched no open session's tail).  Tallied locally and flushed once per
    candidate so the hot loop stays metric-free.
    """
    registry = get_registry()
    if registry.enabled:
        registry.counter("sessions.phase2.candidates").inc()
        registry.counter("sessions.phase2.extensions").inc(extensions)
        registry.counter("sessions.phase2.orphans").inc(orphans)
        registry.counter("sessions.phase2.sessions").inc(sessions)


def maximal_sessions(candidate: Sequence[Request], topology: WebGraph,
                     config: SmartSRAConfig | None = None) -> list[Session]:
    """Run Phase 2 on one candidate session.

    Args:
        candidate: a time-consistent candidate produced by
            :func:`repro.core.phase1.split_candidates` (chronological).
        topology: the site's hyperlink graph.  Pages absent from the graph
            simply have no links (they always become singleton sessions).
        config: thresholds and the orphan policy; defaults to the paper's.

    Returns:
        The maximal sessions extracted from ``candidate``, in the order the
        algorithm produced them.  With the default (paper-faithful) orphan
        policy some input pages may appear in **no** output session; with
        ``config.rescue_orphans`` every page appears in at least one.
    """
    if config is None:
        config = SmartSRAConfig()
    remaining: list[Request] = list(candidate)
    open_sessions: list[Session] = []
    hits = misses = 0

    while remaining:
        released = _referrer_free(remaining, topology, config.max_gap)
        released_set = {id(request) for request in released}
        remaining = [request for request in remaining
                     if id(request) not in released_set]

        if not open_sessions:
            # Step III-a: the released pages seed the initial sessions.
            open_sessions = [Session([request]) for request in released]
            continue

        # Step III-b: try to extend every open session with every released
        # page.  One page may extend several sessions, and one session may
        # be extended by several pages — each combination yields a distinct
        # branched session, exactly like the paper's Table 4 trace.
        next_sessions: list[Session] = []
        extended: set[int] = set()
        for request in released:
            placed = False
            for index, session in enumerate(open_sessions):
                last = session[-1]
                # Topology rule + timestamp ordering rule: the new page
                # must be hyperlinked from the session's last page AND come
                # later (a released page can predate a session's tail when
                # its own referrer was consumed in an earlier iteration).
                if (topology.has_link(last.page, request.page)
                        and 0 <= request.timestamp - last.timestamp
                        <= config.max_gap):
                    next_sessions.append(session.extended(request))
                    extended.add(index)
                    placed = True
            if placed:
                hits += 1
            else:
                misses += 1
                if config.rescue_orphans:
                    next_sessions.append(Session([request]))
        for index, session in enumerate(open_sessions):
            if index not in extended:
                next_sessions.append(session)
        open_sessions = next_sessions

    _publish_phase2(hits, misses, len(open_sessions))
    return open_sessions


def maximal_sessions_fast(candidate: Sequence[Request], topology: WebGraph,
                          config: SmartSRAConfig | None = None
                          ) -> list[Session]:
    """Optimized Phase 2 — same output set as :func:`maximal_sessions`.

    The reference implementation re-scans the whole candidate for
    referrer-free pages every round (O(n²) per round, O(n³) worst case).
    This version computes each request's *blocker set* once and releases
    requests topological-sort style: a request joins the wave after the
    wave that removed its last blocker — provably the same waves as the
    reference (a request is referrer-free exactly when all its blockers
    are gone).  Step III is also indexed: a released page can only extend
    sessions whose last page is one of its topology predecessors.

    When it pays: long candidates over sparse topologies (4-5× measured on
    600-request candidates at out-degree 2, where the reference's repeated
    Step-I scans dominate).  On the paper's dense 300-page/out-degree-15
    setting with short candidates, both implementations are Step-III-bound
    and perform the same — see ``bench_phase2_implementations``.

    The inner loops run on the topology's interned integer adjacency view
    (:meth:`~repro.topology.graph.WebGraph.adjacency_index`): page ids are
    dense sorted-name ranks, so numeric id order reproduces the reference's
    sorted-page-name extension order without re-sorting per release, and
    the blocker scan walks backwards in time and stops at the ρ window
    instead of re-testing every earlier request.

    Output may differ from the reference in *ordering* only; the session
    multiset is identical (property-tested).  :class:`~repro.core.smart_sra.
    SmartSRA` uses this version; the reference stays as the
    paper-pseudocode ground truth.
    """
    if config is None:
        config = SmartSRAConfig()
    n = len(candidate)
    if n == 0:
        return []

    requests = list(candidate)
    max_gap = config.max_gap
    index = topology.adjacency_index()
    page_id = index.page_id
    pred_id_sets = index.pred_id_sets
    pred_sorted_ids = index.pred_sorted_ids
    # Interned per-request views: pages absent from the topology get id -1
    # (no in-links, no out-links, so they never block and never extend).
    ids = [page_id.get(request.page, -1) for request in requests]
    times = [request.timestamp for request in requests]
    _EMPTY: tuple[int, ...] = ()

    # Blocker graph: j blocks i (j < i) when page_j links to page_i within
    # the referrer window ρ.  Requests are chronological, so the scan walks
    # j backwards from i and stops at the first request outside the window
    # — O(n·w) where w is the ρ-window population, instead of O(n²).
    blocker_count = [0] * n
    dependents: list[list[int]] = [[] for __ in range(n)]
    for i in range(n):
        pid = ids[i]
        if pid < 0:
            continue
        predecessors = pred_id_sets[pid]
        if not predecessors:
            continue
        timestamp = times[i]
        for j in range(i - 1, -1, -1):
            # same expression as the reference's window test: subtraction
            # is monotone in j (times are sorted), so the first request
            # past ρ ends the scan without float-rounding disagreements.
            if timestamp - times[j] > max_gap:
                break
            if ids[j] in predecessors:
                blocker_count[i] += 1
                dependents[j].append(i)

    wave = [i for i in range(n) if blocker_count[i] == 0]
    open_sessions: list[Session] = []
    by_last: dict[int, list[int]] = {}
    first_wave = True
    hits = misses = 0
    while wave:
        if first_wave:
            open_sessions = [Session([requests[i]]) for i in wave]
            for index_, i in enumerate(wave):
                by_last.setdefault(ids[i], []).append(index_)
            first_wave = False
        else:
            next_sessions: list[Session] = []
            next_by_last: dict[int, list[int]] = {}
            extended: set[int] = set()

            def add(session: Session, last_id: int) -> None:
                next_by_last.setdefault(last_id, []).append(
                    len(next_sessions))
                next_sessions.append(session)

            for i in wave:
                request = requests[i]
                pid = ids[i]
                timestamp = times[i]
                placed = False
                # numeric id order == sorted page-name order (ids are
                # sorted ranks), pinning the extension order across
                # processes without a per-release sort.
                for predecessor in (pred_sorted_ids[pid] if pid >= 0
                                    else _EMPTY):
                    for session_index in by_last.get(predecessor, ()):
                        session = open_sessions[session_index]
                        if (0 <= timestamp
                                - session[-1].timestamp <= max_gap):
                            add(session.extended(request), pid)
                            extended.add(session_index)
                            placed = True
                if placed:
                    hits += 1
                else:
                    misses += 1
                    if config.rescue_orphans:
                        add(Session([request]), pid)
            for session_index, session in enumerate(open_sessions):
                if session_index not in extended:
                    add(session, page_id.get(session[-1].page, -1))
            open_sessions = next_sessions
            by_last = next_by_last

        next_wave = []
        for i in wave:
            for dependent in dependents[i]:
                blocker_count[dependent] -= 1
                if blocker_count[dependent] == 0:
                    next_wave.append(dependent)
        next_wave.sort()
        wave = next_wave

    _publish_phase2(hits, misses, len(open_sessions))
    return open_sessions


def _referrer_free(remaining: Sequence[Request], topology: WebGraph,
                   max_gap: float) -> list[Request]:
    """Step I — pages of ``remaining`` with no earlier referrer within ρ.

    The first remaining request is always referrer-free (it has no earlier
    member), which guarantees the Phase 2 loop makes progress.
    """
    released: list[Request] = []
    for index, request in enumerate(remaining):
        has_referrer = any(
            topology.has_link(earlier.page, request.page)
            and request.timestamp - earlier.timestamp <= max_gap
            for earlier in remaining[:index])
        if not has_referrer:
            released.append(request)
    return released
