"""Smart-SRA Phase 1 — time-based candidate construction.

Phase 1 walks one user's chronological request stream and cuts it whenever
either classic time rule fires:

* the gap to the previous request exceeds ρ (``max_gap``), or
* the span from the candidate's first request exceeds δ (``max_duration``).

Each resulting *candidate session* therefore satisfies both time-oriented
heuristics simultaneously, which is exactly the paper's Phase 1
specification.  Candidates are plain request lists, not
:class:`~repro.sessions.model.Session` objects, because they are an
intermediate representation consumed by Phase 2.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import SmartSRAConfig
from repro.exceptions import ReconstructionError
from repro.obs import SIZE_BUCKETS, get_registry
from repro.sessions.model import Request

__all__ = ["split_candidates"]


def split_candidates(requests: Sequence[Request],
                     config: SmartSRAConfig | None = None
                     ) -> list[list[Request]]:
    """Split one user's request stream into time-consistent candidates.

    Args:
        requests: the user's requests in non-decreasing timestamp order.
        config: thresholds; defaults to the paper's δ = 30 min, ρ = 10 min.

    Returns:
        Candidate sessions in chronological order.  Every candidate ``c``
        satisfies ``c[-1].timestamp - c[0].timestamp <= δ`` and all
        consecutive gaps ``<= ρ``.

    Raises:
        ReconstructionError: if the input is not sorted by timestamp.
    """
    if config is None:
        config = SmartSRAConfig()

    candidates: list[list[Request]] = []
    current: list[Request] = []
    for request in requests:
        if current:
            if request.timestamp < current[-1].timestamp:
                raise ReconstructionError(
                    "request stream not sorted by timestamp: "
                    f"{current[-1].timestamp} then {request.timestamp}")
            gap = request.timestamp - current[-1].timestamp
            span = request.timestamp - current[0].timestamp
            if gap > config.max_gap or span > config.max_duration:
                candidates.append(current)
                current = []
        current.append(request)
    if current:
        candidates.append(current)
    registry = get_registry()
    if registry.enabled:
        registry.counter("sessions.phase1.candidates").inc(len(candidates))
        registry.counter("sessions.phase1.requests").inc(len(requests))
        size = registry.histogram("sessions.phase1.candidate_size",
                                  SIZE_BUCKETS)
        for candidate in candidates:
            size.observe(len(candidate))
    return candidates
