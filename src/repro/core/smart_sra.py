"""The :class:`SmartSRA` reconstructor facade (paper's **heur4**).

Composes Phase 1 (:func:`repro.core.phase1.split_candidates`) and Phase 2
(:func:`repro.core.phase2.maximal_sessions`) behind the standard
:class:`~repro.sessions.base.SessionReconstructor` interface, plus
:class:`Phase1Only`, the "both time rules, no topology" ablation
reconstructor used to quantify how much of Smart-SRA's accuracy comes from
Phase 2.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.config import SmartSRAConfig
from repro.core.phase1 import split_candidates
from repro.core.phase2 import maximal_sessions_fast
from repro.exceptions import ConfigurationError
from repro.obs import get_registry
from repro.sessions.base import HEURISTIC_REGISTRY, SessionReconstructor
from repro.sessions.model import Request, Session
from repro.topology.graph import WebGraph

__all__ = ["SmartSRA", "Phase1Only"]


class SmartSRA(SessionReconstructor):
    """heur4 — Smart Session Reconstruction Algorithm.

    Args:
        topology: the site's hyperlink graph.
        config: thresholds and orphan policy; defaults to the paper's
            (δ = 30 min, ρ = 10 min, orphans dropped).

    Example:
        >>> from repro.topology import WebGraph
        >>> graph = WebGraph([("A", "B")], start_pages=["A"])
        >>> from repro.sessions.model import Request
        >>> stream = [Request(0.0, "u", "A"), Request(60.0, "u", "B")]
        >>> [s.pages for s in SmartSRA(graph).reconstruct(stream)]
        [('A', 'B')]
    """

    name = "heur4"
    label = "Smart-SRA"
    supports_columnar = True

    def __init__(self, topology: WebGraph,
                 config: SmartSRAConfig | None = None) -> None:
        self.topology = topology
        self.config = config if config is not None else SmartSRAConfig()
        self._plane = None

    def _columnar_plane(self):
        plane = self._plane
        if plane is None:
            from repro.core.columnar import ColumnarPlane
            plane = self._plane = ColumnarPlane.for_smart_sra(
                self.topology, self.config)
        return plane

    def __getstate__(self) -> dict[str, object]:
        # the cached plane duplicates adjacency data the topology already
        # carries; workers on the object path must not pay for it.
        state = self.__dict__.copy()
        state["_plane"] = None
        return state

    def reconstruct_user(self, requests: Sequence[Request]) -> list[Session]:
        registry = get_registry()
        sessions: list[Session] = []
        # spans mirror the timers so a --trace run yields the
        # phase1 -> phase2 critical path (free when no tracer is set).
        with registry.span("sessions.phase1"), \
                registry.timer("sessions.phase1.seconds"):
            candidates = split_candidates(requests, self.config)
        with registry.span("sessions.phase2"), \
                registry.timer("sessions.phase2.seconds"):
            for candidate in candidates:
                sessions.extend(
                    maximal_sessions_fast(candidate, self.topology,
                                          self.config))
        return sessions


class Phase1Only(SessionReconstructor):
    """Ablation reconstructor: Smart-SRA Phase 1 without Phase 2.

    Equivalent to applying *both* time-oriented heuristics simultaneously
    (duration ≤ δ and page stay ≤ ρ) and stopping there.  Comparing this
    against full Smart-SRA isolates the contribution of the topological
    phase (benchmark ``bench_ablation_phases``).
    """

    name = "phase1"
    label = "Smart-SRA Phase 1 only (combined time rules)"
    supports_columnar = True

    def __init__(self, config: SmartSRAConfig | None = None) -> None:
        self.config = config if config is not None else SmartSRAConfig()
        self._plane = None

    def _columnar_plane(self):
        plane = self._plane
        if plane is None:
            from repro.core.columnar import ColumnarPlane
            plane = self._plane = ColumnarPlane.split_only(
                max_gap=self.config.max_gap,
                max_duration=self.config.max_duration,
                publish_phase1=True)
        return plane

    def reconstruct_user(self, requests: Sequence[Request]) -> list[Session]:
        return [Session(candidate)
                for candidate in split_candidates(requests, self.config)]


def _smart_sra_needs_topology() -> SessionReconstructor:  # pragma: no cover
    raise ConfigurationError(
        "heur4 (Smart-SRA) requires a site topology; construct "
        "SmartSRA(topology) directly or use "
        "repro.evaluation.harness.standard_heuristics(topology)")


HEURISTIC_REGISTRY.setdefault("heur4", _smart_sra_needs_topology)
HEURISTIC_REGISTRY.setdefault("smart-sra", _smart_sra_needs_topology)
HEURISTIC_REGISTRY.setdefault("phase1", Phase1Only)
