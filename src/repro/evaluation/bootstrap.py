"""Bootstrap confidence intervals for accuracy estimates.

A simulated accuracy number is a point estimate over a finite agent
population; reporting it without uncertainty invites over-reading small
gaps between heuristics.  Since agents are independent by construction,
the *user* is the natural resampling unit: :func:`bootstrap_accuracy`
resamples users with replacement and rebuilds the matched-accuracy ratio
per replicate, yielding a percentile confidence interval.

Used by the population-stability analysis and available to any experiment
that wants error bars on the paper's figures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.evaluation.metrics import evaluate_reconstruction
from repro.exceptions import EvaluationError
from repro.sessions.model import SessionSet

__all__ = ["AccuracyInterval", "bootstrap_accuracy"]


@dataclass(frozen=True, slots=True)
class AccuracyInterval:
    """A bootstrap percentile interval for matched accuracy.

    Attributes:
        estimate: the full-sample matched accuracy.
        low / high: the interval bounds at the requested confidence.
        confidence: the nominal coverage (e.g. 0.95).
        replicates: number of bootstrap resamples drawn.
    """

    estimate: float
    low: float
    high: float
    confidence: float
    replicates: int

    @property
    def width(self) -> float:
        """Interval width (high - low)."""
        return self.high - self.low

    def __str__(self) -> str:
        return (f"{self.estimate:.3f} "
                f"[{self.low:.3f}, {self.high:.3f}] "
                f"@{self.confidence:.0%}")


def bootstrap_accuracy(ground_truth: SessionSet, reconstructed: SessionSet,
                       replicates: int = 500, confidence: float = 0.95,
                       seed: int = 0) -> AccuracyInterval:
    """Percentile bootstrap CI for the one-to-one matched accuracy.

    Users are resampled with replacement; each replicate's accuracy is the
    ratio of resampled matched counts to resampled session counts.  The
    per-user (matched, total) pairs are computed once, so the resampling
    itself is O(replicates × users).

    Args:
        ground_truth: the simulator's real sessions.
        reconstructed: one heuristic's output.
        replicates: bootstrap resamples (≥ 50 recommended).
        confidence: nominal coverage in (0, 1).
        seed: resampling RNG seed.

    Raises:
        EvaluationError: for an empty ground truth, non-positive
            replicates, or a confidence outside (0, 1).
    """
    if replicates <= 0:
        raise EvaluationError(
            f"replicates must be positive, got {replicates}")
    if not 0 < confidence < 1:
        raise EvaluationError(
            f"confidence must be in (0, 1), got {confidence}")

    users = list(ground_truth.users())
    if not users:
        raise EvaluationError(
            "cannot bootstrap against an empty ground truth")

    # Per-user sufficient statistics: (matched sessions, total sessions).
    per_user: list[tuple[int, int]] = []
    for user in users:
        user_truth = SessionSet(ground_truth.for_user(user))
        user_recon = SessionSet(reconstructed.for_user(user))
        report = evaluate_reconstruction(
            "bootstrap", user_truth, user_recon)
        per_user.append((report.matched, report.total_real))

    total_matched = sum(matched for matched, __ in per_user)
    total_sessions = sum(total for __, total in per_user)
    estimate = total_matched / total_sessions

    rng = random.Random(seed)
    n = len(per_user)
    samples = []
    for __ in range(replicates):
        matched_sum = 0
        total_sum = 0
        for __ in range(n):
            matched, total = per_user[rng.randrange(n)]
            matched_sum += matched
            total_sum += total
        samples.append(matched_sum / total_sum if total_sum else 0.0)
    samples.sort()

    alpha = (1 - confidence) / 2
    low_index = int(alpha * replicates)
    high_index = min(replicates - 1, int((1 - alpha) * replicates))
    return AccuracyInterval(
        estimate=estimate,
        low=samples[low_index],
        high=samples[high_index],
        confidence=confidence,
        replicates=replicates,
    )
