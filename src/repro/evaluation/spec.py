"""Declarative experiment specifications.

A *spec* is a JSON document describing a complete experiment — topology,
simulation parameters, the heuristics to score, and optionally a parameter
sweep — so experiments are reproducible artifacts instead of shell
history.  The CLI's ``run-spec`` command executes one; programmatic users
call :func:`run_spec` directly.

Example spec::

    {
      "topology": {"family": "random", "pages": 300, "out_degree": 15,
                   "seed": 1},
      "simulation": {"n_agents": 1000, "seed": 2, "stp": 0.05,
                     "lpp": 0.3, "nip": 0.3},
      "heuristics": ["heur1", "heur2", "heur3", "heur4", "referrer"],
      "sweep": {"parameter": "lpp",
                "values": [0.0, 0.3, 0.6, 0.9]}
    }

Without ``"sweep"`` the spec runs a single trial.  Unknown keys are
rejected — a typo'd parameter name must fail loudly, not silently run the
default.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Mapping

from repro.core.smart_sra import Phase1Only, SmartSRA
from repro.evaluation.harness import (
    SweepResult,
    TrialResult,
    run_trial,
    sweep,
)
from repro.exceptions import EvaluationError
from repro.sessions.base import SessionReconstructor
from repro.sessions.adaptive import AdaptiveTimeoutHeuristic
from repro.sessions.maximal_paths import AllMaximalPaths
from repro.sessions.navigation_oriented import NavigationHeuristic
from repro.sessions.referrer import ReferrerHeuristic
from repro.sessions.time_oriented import DurationHeuristic, PageStayHeuristic
from repro.simulator.config import SimulationConfig
from repro.topology.generators import (
    hierarchical_site,
    power_law_site,
    random_site,
)
from repro.topology.graph import WebGraph

__all__ = ["run_spec", "load_spec", "build_topology", "build_heuristics"]

_TOPOLOGY_FAMILIES = {
    "random": (random_site, {"pages": "n_pages",
                             "out_degree": "avg_out_degree",
                             "start_fraction": "start_fraction"}),
    "hierarchical": (hierarchical_site, {"pages": "n_pages",
                                         "branching": "branching"}),
    "power-law": (power_law_site, {"pages": "n_pages",
                                   "links_per_page": "links_per_page",
                                   "start_fraction": "start_fraction"}),
}

_SPEC_KEYS = {"topology", "simulation", "heuristics", "sweep"}
_SIMULATION_FIELDS = {field.name
                      for field in dataclasses.fields(SimulationConfig)}


def load_spec(path: str) -> dict[str, object]:
    """Read a spec file; validation happens in :func:`run_spec`."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def build_topology(spec: Mapping[str, object]) -> WebGraph:
    """Materialize the ``topology`` section.

    Raises:
        EvaluationError: for an unknown family or parameter.
    """
    family = str(spec.get("family", "random"))
    entry = _TOPOLOGY_FAMILIES.get(family)
    if entry is None:
        known = ", ".join(sorted(_TOPOLOGY_FAMILIES))
        raise EvaluationError(
            f"unknown topology family {family!r}; known: {known}")
    factory, renames = entry
    kwargs: dict[str, object] = {}
    for key, value in spec.items():
        if key == "family":
            continue
        if key == "seed":
            kwargs["seed"] = value
            continue
        if key not in renames:
            raise EvaluationError(
                f"unknown topology parameter {key!r} for family {family!r}")
        kwargs[renames[key]] = value
    return factory(**kwargs)  # type: ignore[arg-type]


def build_heuristics(names: list[str], topology: WebGraph
                     ) -> dict[str, SessionReconstructor]:
    """Materialize the ``heuristics`` list.

    Raises:
        EvaluationError: for an unknown heuristic name or an empty list.
    """
    if not names:
        raise EvaluationError("spec lists no heuristics")
    constructors = {
        "heur1": lambda: DurationHeuristic(),
        "heur2": lambda: PageStayHeuristic(),
        "heur3": lambda: NavigationHeuristic(topology),
        "heur4": lambda: SmartSRA(topology),
        "phase1": lambda: Phase1Only(),
        "referrer": lambda: ReferrerHeuristic(),
        "adaptive": lambda: AdaptiveTimeoutHeuristic(),
        "amp": lambda: AllMaximalPaths(topology),
    }
    heuristics: dict[str, SessionReconstructor] = {}
    for name in names:
        constructor = constructors.get(name)
        if constructor is None:
            known = ", ".join(sorted(constructors))
            raise EvaluationError(
                f"unknown heuristic {name!r}; known: {known}")
        heuristics[name] = constructor()
    return heuristics


def run_spec(spec: Mapping[str, object]) -> TrialResult | SweepResult:
    """Execute a spec document.

    Returns:
        A :class:`SweepResult` when the spec has a ``sweep`` section, a
        single :class:`TrialResult` otherwise.

    Raises:
        EvaluationError: for unknown keys, families, parameters or
            heuristic names anywhere in the document.
    """
    unknown = set(spec) - _SPEC_KEYS
    if unknown:
        raise EvaluationError(
            f"unknown spec keys: {sorted(unknown)}; "
            f"allowed: {sorted(_SPEC_KEYS)}")

    topology = build_topology(spec.get("topology", {}))  # type: ignore[arg-type]

    simulation_section = spec.get("simulation", {})
    if not isinstance(simulation_section, Mapping):
        raise EvaluationError("'simulation' must be an object")
    bad_fields = set(simulation_section) - _SIMULATION_FIELDS
    if bad_fields:
        raise EvaluationError(
            f"unknown simulation parameters: {sorted(bad_fields)}")
    config = SimulationConfig(**simulation_section)  # type: ignore[arg-type]

    names = spec.get("heuristics", ["heur1", "heur2", "heur3", "heur4"])
    if not isinstance(names, list):
        raise EvaluationError("'heuristics' must be a list of names")

    sweep_section = spec.get("sweep")
    if sweep_section is None:
        return run_trial(topology, config,
                         build_heuristics(list(names), topology))
    if not isinstance(sweep_section, Mapping):
        raise EvaluationError("'sweep' must be an object")
    extra = set(sweep_section) - {"parameter", "values"}
    if extra:
        raise EvaluationError(f"unknown sweep keys: {sorted(extra)}")
    parameter = str(sweep_section.get("parameter", ""))
    values = sweep_section.get("values")
    if not isinstance(values, list) or not values:
        raise EvaluationError("'sweep.values' must be a non-empty list")
    return sweep(topology, config, parameter,
                 [float(value) for value in values],
                 heuristic_factory=lambda: build_heuristics(list(names),
                                                            topology))
