"""Experiment harness: simulate, reconstruct, evaluate.

The harness ties the substrates together exactly the way the paper's §5
evaluation does:

1. simulate an agent population over a topology
   (:func:`~repro.simulator.population.simulate_population`);
2. feed the resulting server log to each heuristic;
3. score every heuristic's output against the ground truth with the
   capture metric.

:func:`run_trial` performs one such experiment for one configuration;
:func:`sweep` repeats it while varying a single simulation parameter — the
shape of the paper's Figures 8-10.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.config import SmartSRAConfig
from repro.core.smart_sra import SmartSRA
from repro.evaluation.metrics import AccuracyReport, evaluate_reconstruction
from repro.exceptions import EvaluationError
from repro.obs import Registry, get_registry, use_local_registry
from repro.sessions.base import SessionReconstructor
from repro.sessions.navigation_oriented import NavigationHeuristic
from repro.sessions.time_oriented import DurationHeuristic, PageStayHeuristic
from repro.simulator.config import SimulationConfig
from repro.simulator.population import SimulationResult, simulate_population
from repro.topology.graph import WebGraph

__all__ = ["standard_heuristics", "run_trial", "sweep", "TrialResult",
           "SweepResult"]


def standard_heuristics(topology: WebGraph,
                        smart_config: SmartSRAConfig | None = None
                        ) -> dict[str, SessionReconstructor]:
    """The paper's four heuristics, keyed ``heur1`` … ``heur4``.

    Args:
        topology: the simulated site (needed by heur3 and heur4).
        smart_config: optional non-default Smart-SRA thresholds.
    """
    return {
        "heur1": DurationHeuristic(),
        "heur2": PageStayHeuristic(),
        "heur3": NavigationHeuristic(topology),
        "heur4": SmartSRA(topology, smart_config),
    }


@dataclass(frozen=True, slots=True)
class TrialResult:
    """One experiment: one simulated population, all heuristics scored.

    Attributes:
        simulation: the full simulation output (topology, ground truth,
            log, per-agent traces).  ``None`` for a trial fully restored
            from a checkpoint — the reports are intact but the raw
            simulation was deliberately not persisted (it is cheap to
            regenerate and enormous to store); rerun without ``resume``
            when the traces themselves are needed.
        reports: per-heuristic :class:`AccuracyReport`, keyed by the name
            used in the heuristics mapping.
    """

    simulation: SimulationResult | None
    reports: dict[str, AccuracyReport]

    def accuracies(self, metric: str = "matched") -> dict[str, float]:
        """Convenience view: ``{heuristic: real accuracy}``.

        Args:
            metric: ``"matched"`` (one-to-one, the headline series) or
                ``"captured"`` (any-capture).

        Raises:
            EvaluationError: for an unknown metric name.
        """
        if metric == "matched":
            return {name: report.matched_accuracy
                    for name, report in self.reports.items()}
        if metric == "captured":
            return {name: report.accuracy
                    for name, report in self.reports.items()}
        raise EvaluationError(
            f"unknown metric {metric!r}; use 'matched' or 'captured'")


def _score_heuristic(task: tuple[str, SessionReconstructor],
                     simulation: SimulationResult,
                     engine: str = "object") -> AccuracyReport:
    """Reconstruct and score one heuristic (parallel work unit).

    Module-level so it pickles into worker processes; the ambient registry
    it publishes to is the worker's private one, merged back by the
    engine.  ``engine`` selects the reconstruction data plane; heuristics
    that do not declare :attr:`~repro.sessions.base.SessionReconstructor.
    supports_columnar` silently fall back to the object path (both planes
    are diffcheck-verified equivalent, so mixing them inside one trial is
    sound).
    """
    name, heuristic = task
    use_engine = (engine if getattr(heuristic, "supports_columnar", False)
                  else "object")
    registry = get_registry()
    with registry.span("trial.reconstruct", heuristic=name), \
            registry.timer("eval.reconstruct.seconds", heuristic=name):
        reconstructed = heuristic.reconstruct(simulation.log_requests,
                                              engine=use_engine)
    with registry.span("trial.evaluate", heuristic=name), \
            registry.timer("eval.evaluate.seconds", heuristic=name):
        return evaluate_reconstruction(
            name, simulation.ground_truth, reconstructed)


def run_trial(topology: WebGraph, config: SimulationConfig,
              heuristics: Mapping[str, SessionReconstructor] | None = None,
              cache_dir: str | None = None, *,
              workers: int | None = None, mode: str = "auto",
              engine: str = "object", supervision=None, checkpoint=None,
              resume: bool = False) -> TrialResult:
    """Simulate one population and evaluate every heuristic on its log.

    Args:
        topology: the site to simulate.
        config: simulation parameters.
        heuristics: reconstructors to score; defaults to the paper's four
            (:func:`standard_heuristics`).
        cache_dir: optional simulation disk cache
            (:func:`repro.evaluation.simcache.cached_simulation`); repeated
            trials with identical inputs skip the simulation entirely.
        workers: ``None`` (default) scores the heuristics sequentially;
            ``0`` fans out over all usable CPUs; a positive count uses
            exactly that many workers (:func:`repro.parallel.parallel_map`
            — reports are identical either way, metric counters
            reconcile).
        mode: parallel execution mode; ignored when ``workers`` is
            ``None``.
        engine: reconstruction data plane, ``"object"`` (default) or
            ``"columnar"``; heuristics without columnar support keep the
            object path (results are identical either way).
        supervision: optional
            :class:`~repro.parallel.supervisor.RetryPolicy` — parallel
            scoring then survives worker crashes and hangs at per-
            heuristic granularity.  Under ``on_failure="skip"`` an
            unrecoverable heuristic is *omitted* from :attr:`reports`.
        checkpoint: optional checkpoint directory (path or
            :class:`~repro.parallel.checkpoint.CheckpointStore`); each
            completed heuristic's report is persisted as it finishes.
        resume: continue from an existing checkpoint directory, skipping
            heuristics whose reports are already on disk.  The restored
            trial's metrics are merged so the final snapshot matches an
            uninterrupted run; raises
            :class:`~repro.exceptions.ConfigurationError` when the
            directory belongs to a different trial configuration.
    """
    if supervision is not None or checkpoint is not None:
        return _run_trial_supervised(
            topology, config, heuristics, cache_dir, workers=workers,
            mode=mode, engine=engine, supervision=supervision,
            checkpoint=checkpoint, resume=resume)
    registry = get_registry()
    if heuristics is None:
        heuristics = standard_heuristics(topology)
    with registry.span("trial.simulate", agents=config.n_agents,
                       seed=config.seed), \
            registry.timer("eval.simulate.seconds"):
        if cache_dir is not None:
            from repro.evaluation.simcache import cached_simulation
            simulation = cached_simulation(topology, config, cache_dir)
        else:
            simulation = simulate_population(topology, config)
    tasks = list(heuristics.items())
    if workers is None:
        reports = {name: _score_heuristic((name, heuristic), simulation,
                                          engine=engine)
                   for name, heuristic in tasks}
    else:
        from repro.parallel import parallel_map

        scored = parallel_map(
            functools.partial(_score_heuristic, simulation=simulation,
                              engine=engine),
            tasks, workers=workers, mode=mode)
        reports = {task[0]: report for task, report in zip(tasks, scored)}
    if registry.enabled:
        registry.counter("eval.trials").inc()
        registry.counter("eval.sessions.real").inc(
            len(simulation.ground_truth))
        for name, report in reports.items():
            registry.counter("eval.sessions.reconstructed",
                             heuristic=name).inc(report.reconstructed_count)
            registry.gauge("eval.accuracy",
                           heuristic=name).set(report.matched_accuracy)
    return TrialResult(simulation=simulation, reports=reports)


@dataclass(frozen=True, slots=True)
class SweepResult:
    """A parameter sweep: one :class:`TrialResult` per parameter value.

    Attributes:
        parameter: the swept :class:`SimulationConfig` field name.
        values: the swept values, in run order.  Points quarantined under
            a ``skip`` supervision policy are absent — :attr:`values` and
            :attr:`trials` stay aligned, and :attr:`failures` records
            what was dropped.
        trials: the corresponding trial results.
        failures: structured :class:`~repro.parallel.supervisor.
            ChunkFailure` records for points that exhausted their retry
            budget (empty without supervision).
    """

    parameter: str
    values: tuple[float, ...]
    trials: tuple[TrialResult, ...]
    failures: tuple = ()

    def series(self, metric: str = "matched") -> dict[str, list[float]]:
        """Per-heuristic accuracy series aligned with :attr:`values`.

        Args:
            metric: ``"matched"`` (default) or ``"captured"``; see
                :class:`~repro.evaluation.metrics.AccuracyReport`.
        """
        names = list(self.trials[0].reports) if self.trials else []
        return {name: [trial.accuracies(metric)[name]
                       for trial in self.trials]
                for name in names}

    def rows(self, metric: str = "matched") -> list[dict[str, float]]:
        """Row-per-value view: ``{parameter: v, heur1: a1, …}``."""
        table = []
        for value, trial in zip(self.values, self.trials):
            row: dict[str, float] = {self.parameter: value}
            row.update(trial.accuracies(metric))
            table.append(row)
        return table


def _run_sweep_point(value: float, topology: WebGraph,
                     base_config: SimulationConfig, parameter: str,
                     heuristic_factory, cache_dir: str | None,
                     engine: str = "object") -> TrialResult:
    """Run one sweep point (parallel work unit; module-level to pickle)."""
    registry = get_registry()
    config = base_config.with_(**{parameter: value})
    heuristics = (heuristic_factory() if heuristic_factory is not None
                  else None)
    with registry.span("sweep.point", parameter=parameter, value=value), \
            registry.timer("eval.sweep.point.seconds"):
        trial = run_trial(topology, config, heuristics, cache_dir=cache_dir,
                          engine=engine)
    if registry.enabled:
        registry.counter("eval.sweep.points").inc()
        for name, accuracy in trial.accuracies().items():
            registry.gauge(
                "eval.sweep.accuracy", heuristic=name,
                **{parameter: f"{value:g}"}).set(accuracy)
    return trial


def sweep(topology: WebGraph, base_config: SimulationConfig, parameter: str,
          values: Sequence[float],
          heuristic_factory=None, cache_dir: str | None = None, *,
          workers: int | None = None, mode: str = "auto",
          engine: str = "object", supervision=None, checkpoint=None,
          resume: bool = False) -> SweepResult:
    """Vary one simulation parameter, evaluating all heuristics per value.

    Args:
        topology: the (fixed) site.
        base_config: configuration holding every other parameter fixed.
        parameter: name of the :class:`SimulationConfig` field to vary
            (``"stp"``, ``"lpp"`` or ``"nip"`` for the paper's figures).
        values: parameter values, run in order.
        heuristic_factory: optional ``() -> Mapping[str, reconstructor]``
            called per value; defaults to the paper's four heuristics.
        cache_dir: optional simulation disk cache shared by all points.
        workers: ``None`` (default) runs the points sequentially; ``0``
            fans the points out over all usable CPUs; a positive count
            uses exactly that many workers.  Results and metric counters
            are identical either way (sweep points are independent trials
            with value-labelled gauges).
        mode: parallel execution mode; ignored when ``workers`` is
            ``None``.
        engine: reconstruction data plane for every point — ``"object"``
            (default) or ``"columnar"`` (heuristics without columnar
            support keep the object path; accuracies are identical).
        supervision: optional
            :class:`~repro.parallel.supervisor.RetryPolicy` — each sweep
            point becomes a supervised unit of work with crash retry,
            progress deadlines and the policy's degradation path.
        checkpoint: optional checkpoint directory (path or
            :class:`~repro.parallel.checkpoint.CheckpointStore`).  Every
            completed point is persisted (report + metrics snapshot) the
            moment it finishes, so a killed sweep loses at most the
            points in flight.
        resume: continue from an existing checkpoint, recomputing only
            the missing points.  The resumed sweep's report *and* final
            metrics snapshot equal an uninterrupted run's.

    Raises:
        EvaluationError: for an empty value list or an unknown parameter.
        ConfigurationError: when resuming against a checkpoint written by
            a different sweep configuration.
    """
    if not values:
        raise EvaluationError("sweep requires at least one parameter value")
    if not hasattr(base_config, parameter):
        raise EvaluationError(
            f"unknown simulation parameter {parameter!r}")

    if supervision is not None or checkpoint is not None:
        return _sweep_supervised(
            topology, base_config, parameter, values, heuristic_factory,
            cache_dir, workers=workers, mode=mode, engine=engine,
            supervision=supervision, checkpoint=checkpoint, resume=resume)

    point = functools.partial(
        _run_sweep_point, topology=topology, base_config=base_config,
        parameter=parameter, heuristic_factory=heuristic_factory,
        cache_dir=cache_dir, engine=engine)
    if workers is None:
        trials = [point(value) for value in values]
    else:
        from repro.parallel import parallel_map

        trials = parallel_map(point, list(values), workers=workers,
                              mode=mode)
    return SweepResult(parameter=parameter, values=tuple(values),
                       trials=tuple(trials))


# -- fault-tolerant execution (supervision + checkpoint/resume) ----------
#
# The supervised variants below trade the plain paths' directness for two
# properties long runs need: every completed unit of work (a scored
# heuristic, a sweep point) is durable the moment it finishes, and each
# unit's metrics are captured in a private registry snapshot that is
# persisted with it.  Merging the saved snapshots for restored units in
# unit order is what makes a resumed run's final metrics equal an
# uninterrupted run's.


def _checkpoint_store(checkpoint):
    """Normalize the ``checkpoint`` argument (path or store or None)."""
    if checkpoint is None:
        return None
    from repro.parallel.checkpoint import CheckpointStore

    if isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(checkpoint)


def _fingerprint(document: Mapping[str, Any]) -> str:
    """Stable digest of a run configuration (pins checkpoint dirs)."""
    payload = json.dumps(document, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def _passthrough_policy():
    """The no-supervision policy used when only checkpointing was asked
    for: no retries, first unrecoverable failure raises — plain-path
    failure semantics, but completed units still flush to disk."""
    from repro.parallel.supervisor import RetryPolicy

    return RetryPolicy(max_retries=0, on_failure="raise")


def _simulate_for_trial(topology: WebGraph, config: SimulationConfig,
                        cache_dir: str | None) -> SimulationResult:
    if cache_dir is not None:
        from repro.evaluation.simcache import cached_simulation

        return cached_simulation(topology, config, cache_dir)
    return simulate_population(topology, config)


def _score_heuristic_captured(task: tuple[str, SessionReconstructor],
                              simulation: SimulationResult,
                              engine: str = "object"
                              ) -> tuple[AccuracyReport, dict | None]:
    """Score one heuristic under a private registry; return both.

    The snapshot travels with the report into the checkpoint unit, so a
    resume can replay the unit's metric contribution without redoing the
    work.  Disabled observability yields ``None`` — nothing to replay.
    """
    ambient = get_registry()
    if not ambient.enabled:
        return _score_heuristic(task, simulation, engine=engine), None
    local = Registry()
    with use_local_registry(local):
        report = _score_heuristic(task, simulation, engine=engine)
    return report, local.snapshot()


def _run_sweep_point_captured(value: float, topology: WebGraph,
                              base_config: SimulationConfig, parameter: str,
                              heuristic_factory, cache_dir: str | None,
                              engine: str = "object"
                              ) -> tuple[TrialResult, dict | None]:
    """Run one sweep point under a private registry; return both."""
    ambient = get_registry()
    if not ambient.enabled:
        return _run_sweep_point(value, topology, base_config, parameter,
                                heuristic_factory, cache_dir,
                                engine=engine), None
    local = Registry()
    with use_local_registry(local):
        trial = _run_sweep_point(value, topology, base_config, parameter,
                                 heuristic_factory, cache_dir,
                                 engine=engine)
    return trial, local.snapshot()


def _point_key(parameter: str, index: int, value: float) -> str:
    """The checkpoint unit key for one sweep point."""
    return f"{parameter}[{index}]={value:g}"


def _trial_payload(value: float, trial: TrialResult) -> dict[str, Any]:
    """The JSON body persisted for one completed sweep point.

    Deliberately *not* the full trial: the simulation (log, traces) is
    cheap to regenerate and enormous to store, so only the scored
    reports survive a round trip — enough for :class:`SweepResult`'s
    series, rows and accuracy views.
    """
    return {
        "value": float(value),
        "total_real": (len(trial.simulation.ground_truth)
                       if trial.simulation is not None else None),
        "reports": {name: report.to_dict()
                    for name, report in trial.reports.items()},
    }


def _trial_from_payload(payload: Mapping[str, Any]) -> TrialResult:
    """Rebuild the lite :class:`TrialResult` a checkpoint unit stores."""
    reports = {name: AccuracyReport.from_dict(data)
               for name, data in payload.get("reports", {}).items()}
    return TrialResult(simulation=None, reports=reports)


def _run_trial_supervised(topology: WebGraph, config: SimulationConfig,
                          heuristics, cache_dir: str | None, *,
                          workers: int | None, mode: str,
                          engine: str = "object", supervision,
                          checkpoint, resume: bool) -> TrialResult:
    """:func:`run_trial` with supervision and/or checkpointing active."""
    from repro.parallel.supervisor import supervised_map

    registry = get_registry()
    if heuristics is None:
        heuristics = standard_heuristics(topology)
    store = _checkpoint_store(checkpoint)
    restored: dict[str, tuple[AccuracyReport, dict | None]] = {}
    meta = None
    if store is not None:
        fingerprint = _fingerprint({
            "kind": "trial",
            "topology": topology.fingerprint(),
            "config": dataclasses.asdict(config),
            "heuristics": sorted(heuristics),
        })
        store.begin(fingerprint, label=f"trial seed={config.seed}",
                    resume=resume)
        meta = store.load_unit("trial-meta", "meta")
        for name in heuristics:
            unit = store.load_unit("trial-report", name)
            if unit is not None:
                restored[name] = (AccuracyReport.from_dict(unit["payload"]),
                                  unit.get("obs"))

    pending = [(name, heuristic) for name, heuristic in heuristics.items()
               if name not in restored]

    # Simulate unless every heuristic AND the trial metadata were
    # restored (the simulation is never persisted — see _trial_payload).
    simulation: SimulationResult | None = None
    if pending or meta is None:
        with registry.span("trial.simulate", agents=config.n_agents,
                           seed=config.seed):
            if registry.enabled:
                local = Registry()
                with use_local_registry(local), \
                        local.timer("eval.simulate.seconds"):
                    simulation = _simulate_for_trial(topology, config,
                                                     cache_dir)
                sim_obs: dict | None = local.snapshot()
            else:
                simulation = _simulate_for_trial(topology, config, cache_dir)
                sim_obs = None
        if sim_obs:
            registry.merge_snapshot(sim_obs)
        total_real = len(simulation.ground_truth)
        if store is not None:
            store.save_unit("trial-meta", "meta",
                            {"total_real": total_real}, obs=sim_obs)
    else:
        total_real = int(meta["payload"]["total_real"])
        if meta.get("obs"):
            registry.merge_snapshot(meta["obs"])

    computed: dict[str, tuple[AccuracyReport, dict | None]] = {}

    def record(name: str,
               result: tuple[AccuracyReport, dict | None]) -> None:
        computed[name] = result
        if store is not None:
            store.save_unit("trial-report", name, result[0].to_dict(),
                            obs=result[1])

    try:
        if pending:
            score = functools.partial(_score_heuristic_captured,
                                      simulation=simulation, engine=engine)
            if workers is None:
                for task in pending:
                    record(task[0], score(task))
            else:
                policy = (supervision if supervision is not None
                          else _passthrough_policy())
                supervised_map(
                    score, pending, workers=workers, mode=mode,
                    chunk_size=1, policy=policy,
                    on_chunk_complete=lambda index, results:
                        record(pending[index][0], results[0]))
    except BaseException:
        if store is not None:
            store.mark("interrupted")
        raise
    if store is not None:
        store.mark("complete")

    reports: dict[str, AccuracyReport] = {}
    for name in heuristics:
        entry = restored.get(name) or computed.get(name)
        if entry is None:
            continue  # quarantined under on_failure="skip"
        report, snapshot = entry
        reports[name] = report
        if snapshot:
            registry.merge_snapshot(snapshot)
    if registry.enabled:
        registry.counter("eval.trials").inc()
        registry.counter("eval.sessions.real").inc(total_real)
        for name, report in reports.items():
            registry.counter("eval.sessions.reconstructed",
                             heuristic=name).inc(report.reconstructed_count)
            registry.gauge("eval.accuracy",
                           heuristic=name).set(report.matched_accuracy)
    return TrialResult(simulation=simulation, reports=reports)


def _sweep_supervised(topology: WebGraph, base_config: SimulationConfig,
                      parameter: str, values: Sequence[float],
                      heuristic_factory, cache_dir: str | None, *,
                      workers: int | None, mode: str,
                      engine: str = "object", supervision,
                      checkpoint, resume: bool) -> SweepResult:
    """:func:`sweep` with supervision and/or checkpointing active."""
    from repro.parallel.supervisor import supervised_map

    registry = get_registry()
    store = _checkpoint_store(checkpoint)
    restored: dict[int, tuple[TrialResult, dict | None]] = {}
    if store is not None:
        marker = ("standard" if heuristic_factory is None else
                  getattr(heuristic_factory, "__qualname__",
                          repr(heuristic_factory)))
        fingerprint = _fingerprint({
            "kind": "sweep",
            "parameter": parameter,
            "values": [float(value) for value in values],
            "topology": topology.fingerprint(),
            "config": dataclasses.asdict(base_config),
            "heuristics": marker,
        })
        store.begin(fingerprint, label=f"sweep {parameter}", resume=resume)
        for index, value in enumerate(values):
            unit = store.load_unit("sweep-point",
                                   _point_key(parameter, index, value))
            if unit is not None:
                restored[index] = (_trial_from_payload(unit["payload"]),
                                   unit.get("obs"))

    todo = [(index, value) for index, value in enumerate(values)
            if index not in restored]
    point = functools.partial(
        _run_sweep_point_captured, topology=topology,
        base_config=base_config, parameter=parameter,
        heuristic_factory=heuristic_factory, cache_dir=cache_dir,
        engine=engine)

    computed: dict[int, tuple[TrialResult, dict | None]] = {}

    def record(position: int,
               result: tuple[TrialResult, dict | None]) -> None:
        index, value = todo[position]
        computed[index] = result
        if store is not None:
            store.save_unit("sweep-point",
                            _point_key(parameter, index, value),
                            _trial_payload(value, result[0]),
                            obs=result[1])

    failures: tuple = ()
    try:
        if todo:
            if workers is None:
                for position, (_, value) in enumerate(todo):
                    record(position, point(value))
            else:
                policy = (supervision if supervision is not None
                          else _passthrough_policy())
                outcome = supervised_map(
                    point, [value for _, value in todo], workers=workers,
                    mode=mode, chunk_size=1, policy=policy,
                    on_chunk_complete=lambda position, results:
                        record(position, results[0]))
                failures = tuple(outcome.failures)
    except BaseException:
        if store is not None:
            store.mark("interrupted")
        raise
    if store is not None:
        store.mark("complete")

    # Reassemble in point order, merging each point's metric snapshot in
    # that same order — restored or freshly computed, the ambient
    # registry ends up exactly where an uninterrupted run left it.
    kept_values: list[float] = []
    kept_trials: list[TrialResult] = []
    for index, value in enumerate(values):
        entry = restored.get(index) or computed.get(index)
        if entry is None:
            continue  # quarantined under on_failure="skip"
        trial, snapshot = entry
        if snapshot:
            registry.merge_snapshot(snapshot)
        kept_values.append(value)
        kept_trials.append(trial)
    return SweepResult(parameter=parameter, values=tuple(kept_values),
                       trials=tuple(kept_trials), failures=failures)
