"""Experiment harness: simulate, reconstruct, evaluate.

The harness ties the substrates together exactly the way the paper's §5
evaluation does:

1. simulate an agent population over a topology
   (:func:`~repro.simulator.population.simulate_population`);
2. feed the resulting server log to each heuristic;
3. score every heuristic's output against the ground truth with the
   capture metric.

:func:`run_trial` performs one such experiment for one configuration;
:func:`sweep` repeats it while varying a single simulation parameter — the
shape of the paper's Figures 8-10.
"""

from __future__ import annotations

import functools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.config import SmartSRAConfig
from repro.core.smart_sra import SmartSRA
from repro.evaluation.metrics import AccuracyReport, evaluate_reconstruction
from repro.exceptions import EvaluationError
from repro.obs import get_registry
from repro.sessions.base import SessionReconstructor
from repro.sessions.navigation_oriented import NavigationHeuristic
from repro.sessions.time_oriented import DurationHeuristic, PageStayHeuristic
from repro.simulator.config import SimulationConfig
from repro.simulator.population import SimulationResult, simulate_population
from repro.topology.graph import WebGraph

__all__ = ["standard_heuristics", "run_trial", "sweep", "TrialResult",
           "SweepResult"]


def standard_heuristics(topology: WebGraph,
                        smart_config: SmartSRAConfig | None = None
                        ) -> dict[str, SessionReconstructor]:
    """The paper's four heuristics, keyed ``heur1`` … ``heur4``.

    Args:
        topology: the simulated site (needed by heur3 and heur4).
        smart_config: optional non-default Smart-SRA thresholds.
    """
    return {
        "heur1": DurationHeuristic(),
        "heur2": PageStayHeuristic(),
        "heur3": NavigationHeuristic(topology),
        "heur4": SmartSRA(topology, smart_config),
    }


@dataclass(frozen=True, slots=True)
class TrialResult:
    """One experiment: one simulated population, all heuristics scored.

    Attributes:
        simulation: the full simulation output (topology, ground truth,
            log, per-agent traces).
        reports: per-heuristic :class:`AccuracyReport`, keyed by the name
            used in the heuristics mapping.
    """

    simulation: SimulationResult
    reports: dict[str, AccuracyReport]

    def accuracies(self, metric: str = "matched") -> dict[str, float]:
        """Convenience view: ``{heuristic: real accuracy}``.

        Args:
            metric: ``"matched"`` (one-to-one, the headline series) or
                ``"captured"`` (any-capture).

        Raises:
            EvaluationError: for an unknown metric name.
        """
        if metric == "matched":
            return {name: report.matched_accuracy
                    for name, report in self.reports.items()}
        if metric == "captured":
            return {name: report.accuracy
                    for name, report in self.reports.items()}
        raise EvaluationError(
            f"unknown metric {metric!r}; use 'matched' or 'captured'")


def _score_heuristic(task: tuple[str, SessionReconstructor],
                     simulation: SimulationResult) -> AccuracyReport:
    """Reconstruct and score one heuristic (parallel work unit).

    Module-level so it pickles into worker processes; the ambient registry
    it publishes to is the worker's private one, merged back by the
    engine.
    """
    name, heuristic = task
    registry = get_registry()
    with registry.span("trial.reconstruct", heuristic=name), \
            registry.timer("eval.reconstruct.seconds", heuristic=name):
        reconstructed = heuristic.reconstruct(simulation.log_requests)
    with registry.span("trial.evaluate", heuristic=name), \
            registry.timer("eval.evaluate.seconds", heuristic=name):
        return evaluate_reconstruction(
            name, simulation.ground_truth, reconstructed)


def run_trial(topology: WebGraph, config: SimulationConfig,
              heuristics: Mapping[str, SessionReconstructor] | None = None,
              cache_dir: str | None = None, *,
              workers: int | None = None, mode: str = "auto") -> TrialResult:
    """Simulate one population and evaluate every heuristic on its log.

    Args:
        topology: the site to simulate.
        config: simulation parameters.
        heuristics: reconstructors to score; defaults to the paper's four
            (:func:`standard_heuristics`).
        cache_dir: optional simulation disk cache
            (:func:`repro.evaluation.simcache.cached_simulation`); repeated
            trials with identical inputs skip the simulation entirely.
        workers: ``None`` (default) scores the heuristics sequentially;
            ``0`` fans out over all usable CPUs; a positive count uses
            exactly that many workers (:func:`repro.parallel.parallel_map`
            — reports are identical either way, metric counters
            reconcile).
        mode: parallel execution mode; ignored when ``workers`` is
            ``None``.
    """
    registry = get_registry()
    if heuristics is None:
        heuristics = standard_heuristics(topology)
    with registry.span("trial.simulate", agents=config.n_agents,
                       seed=config.seed), \
            registry.timer("eval.simulate.seconds"):
        if cache_dir is not None:
            from repro.evaluation.simcache import cached_simulation
            simulation = cached_simulation(topology, config, cache_dir)
        else:
            simulation = simulate_population(topology, config)
    tasks = list(heuristics.items())
    if workers is None:
        reports = {name: _score_heuristic((name, heuristic), simulation)
                   for name, heuristic in tasks}
    else:
        from repro.parallel import parallel_map

        scored = parallel_map(
            functools.partial(_score_heuristic, simulation=simulation),
            tasks, workers=workers, mode=mode)
        reports = {task[0]: report for task, report in zip(tasks, scored)}
    if registry.enabled:
        registry.counter("eval.trials").inc()
        registry.counter("eval.sessions.real").inc(
            len(simulation.ground_truth))
        for name, report in reports.items():
            registry.counter("eval.sessions.reconstructed",
                             heuristic=name).inc(report.reconstructed_count)
            registry.gauge("eval.accuracy",
                           heuristic=name).set(report.matched_accuracy)
    return TrialResult(simulation=simulation, reports=reports)


@dataclass(frozen=True, slots=True)
class SweepResult:
    """A parameter sweep: one :class:`TrialResult` per parameter value.

    Attributes:
        parameter: the swept :class:`SimulationConfig` field name.
        values: the swept values, in run order.
        trials: the corresponding trial results.
    """

    parameter: str
    values: tuple[float, ...]
    trials: tuple[TrialResult, ...]

    def series(self, metric: str = "matched") -> dict[str, list[float]]:
        """Per-heuristic accuracy series aligned with :attr:`values`.

        Args:
            metric: ``"matched"`` (default) or ``"captured"``; see
                :class:`~repro.evaluation.metrics.AccuracyReport`.
        """
        names = list(self.trials[0].reports) if self.trials else []
        return {name: [trial.accuracies(metric)[name]
                       for trial in self.trials]
                for name in names}

    def rows(self, metric: str = "matched") -> list[dict[str, float]]:
        """Row-per-value view: ``{parameter: v, heur1: a1, …}``."""
        table = []
        for value, trial in zip(self.values, self.trials):
            row: dict[str, float] = {self.parameter: value}
            row.update(trial.accuracies(metric))
            table.append(row)
        return table


def _run_sweep_point(value: float, topology: WebGraph,
                     base_config: SimulationConfig, parameter: str,
                     heuristic_factory, cache_dir: str | None) -> TrialResult:
    """Run one sweep point (parallel work unit; module-level to pickle)."""
    registry = get_registry()
    config = base_config.with_(**{parameter: value})
    heuristics = (heuristic_factory() if heuristic_factory is not None
                  else None)
    with registry.span("sweep.point", parameter=parameter, value=value), \
            registry.timer("eval.sweep.point.seconds"):
        trial = run_trial(topology, config, heuristics, cache_dir=cache_dir)
    if registry.enabled:
        registry.counter("eval.sweep.points").inc()
        for name, accuracy in trial.accuracies().items():
            registry.gauge(
                "eval.sweep.accuracy", heuristic=name,
                **{parameter: f"{value:g}"}).set(accuracy)
    return trial


def sweep(topology: WebGraph, base_config: SimulationConfig, parameter: str,
          values: Sequence[float],
          heuristic_factory=None, cache_dir: str | None = None, *,
          workers: int | None = None, mode: str = "auto") -> SweepResult:
    """Vary one simulation parameter, evaluating all heuristics per value.

    Args:
        topology: the (fixed) site.
        base_config: configuration holding every other parameter fixed.
        parameter: name of the :class:`SimulationConfig` field to vary
            (``"stp"``, ``"lpp"`` or ``"nip"`` for the paper's figures).
        values: parameter values, run in order.
        heuristic_factory: optional ``() -> Mapping[str, reconstructor]``
            called per value; defaults to the paper's four heuristics.
        cache_dir: optional simulation disk cache shared by all points.
        workers: ``None`` (default) runs the points sequentially; ``0``
            fans the points out over all usable CPUs; a positive count
            uses exactly that many workers.  Results and metric counters
            are identical either way (sweep points are independent trials
            with value-labelled gauges).
        mode: parallel execution mode; ignored when ``workers`` is
            ``None``.

    Raises:
        EvaluationError: for an empty value list or an unknown parameter.
    """
    if not values:
        raise EvaluationError("sweep requires at least one parameter value")
    if not hasattr(base_config, parameter):
        raise EvaluationError(
            f"unknown simulation parameter {parameter!r}")

    point = functools.partial(
        _run_sweep_point, topology=topology, base_config=base_config,
        parameter=parameter, heuristic_factory=heuristic_factory,
        cache_dir=cache_dir)
    if workers is None:
        trials = [point(value) for value in values]
    else:
        from repro.parallel import parallel_map

        trials = parallel_map(point, list(values), workers=workers,
                              mode=mode)
    return SweepResult(parameter=parameter, values=tuple(values),
                       trials=tuple(trials))
