"""Plain-text and CSV rendering of sweep results.

The benchmark harness and the CLI both print the same rows the paper's
figures plot: one row per swept parameter value, one column per heuristic,
accuracy in percent.
"""

from __future__ import annotations

import io

from repro.evaluation.harness import SweepResult

__all__ = ["render_sweep_table", "render_csv", "render_markdown",
           "render_trial_details"]


def render_sweep_table(result: SweepResult, title: str = "",
                       metric: str = "matched") -> str:
    """Render a sweep as an aligned text table (accuracy in %).

    Args:
        result: the sweep to render.
        title: optional heading line.
        metric: ``"matched"`` (default) or ``"captured"``.
    """
    series = result.series(metric)
    names = list(series)
    header = [result.parameter.upper()] + names
    rows = [[f"{value:g}"] + [f"{series[name][index] * 100:5.1f}"
                              for name in names]
            for index, value in enumerate(result.values)]

    widths = [max(len(header[column]),
                  max((len(row[column]) for row in rows), default=0))
              for column in range(len(header))]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write("  ".join(cell.rjust(width)
                        for cell, width in zip(header, widths)) + "\n")
    out.write("  ".join("-" * width for width in widths) + "\n")
    for row in rows:
        out.write("  ".join(cell.rjust(width)
                            for cell, width in zip(row, widths)) + "\n")
    return out.getvalue()


def render_csv(result: SweepResult, metric: str = "matched") -> str:
    """Render a sweep as CSV (accuracy as a 0-1 fraction)."""
    series = result.series(metric)
    names = list(series)
    lines = [",".join([result.parameter] + names)]
    for index, value in enumerate(result.values):
        cells = [f"{value:g}"] + [f"{series[name][index]:.4f}"
                                  for name in names]
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def render_markdown(result: SweepResult, metric: str = "matched") -> str:
    """Render a sweep as a GitHub-flavored markdown table (accuracy in %).

    This is the format EXPERIMENTS.md embeds, so regenerated numbers can be
    pasted into the documentation verbatim.
    """
    series = result.series(metric)
    names = list(series)
    lines = ["| " + result.parameter.upper() + " | "
             + " | ".join(names) + " |",
             "|" + "---|" * (len(names) + 1)]
    for index, value in enumerate(result.values):
        cells = " | ".join(f"{series[name][index] * 100:.1f}"
                           for name in names)
        lines.append(f"| {value:g} | {cells} |")
    return "\n".join(lines) + "\n"


def render_trial_details(result: SweepResult) -> str:
    """Per-value diagnostic block: session counts, lengths, precision."""
    out = io.StringIO()
    for value, trial in zip(result.values, result.trials):
        simulation = trial.simulation
        out.write(f"{result.parameter}={value:g}: "
                  f"{len(simulation.ground_truth)} real sessions, "
                  f"{len(simulation.log_requests)} log records, "
                  f"cache hit rate "
                  f"{simulation.cache_hit_rate * 100:.1f}%\n")
        for name, report in trial.reports.items():
            out.write(
                f"  {name}: matched {report.matched_accuracy * 100:5.1f}%  "
                f"captured {report.accuracy * 100:5.1f}%  "
                f"exact {report.exact / report.total_real * 100:5.1f}%  "
                f"precision {report.precision * 100:5.1f}%  "
                f"sessions {report.reconstructed_count}  "
                f"mean length {report.mean_reconstructed_length:.2f}\n")
    return out.getvalue()
