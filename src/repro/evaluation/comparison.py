"""Paired statistical comparison of two heuristics (McNemar's test).

"Heuristic A scored 58.9%, heuristic B 46.8%" — is that difference real or
seed noise?  Since both heuristics reconstruct the *same* ground truth,
the right test is paired: for every real session, did A capture it, did B?
Only the *discordant* sessions (captured by exactly one of the two) carry
information, and under the null hypothesis of equal accuracy they split
50/50 — McNemar's exact test on a binomial.

The paper reports point estimates only; this module is what lets the
reproduction say "Smart-SRA's advantage is significant at p < 0.001" and
lets users vet their own variants honestly.
"""

from __future__ import annotations

from dataclasses import dataclass

try:                                    # optional: only the McNemar test
    from scipy import stats             # needs scipy; everything else in
except ImportError:                     # the package runs without it
    stats = None

from repro.evaluation.subsequence import contains
from repro.exceptions import EvaluationError
from repro.sessions.model import Session, SessionSet

__all__ = ["McNemarResult", "compare_heuristics"]


@dataclass(frozen=True, slots=True)
class McNemarResult:
    """Outcome of a paired capture comparison.

    Attributes:
        name_a / name_b: labels of the two reconstructions.
        both: sessions captured by both.
        only_a / only_b: the discordant counts.
        neither: sessions captured by neither.
        p_value: two-sided exact McNemar p-value (1.0 when there are no
            discordant sessions — the methods are indistinguishable).
        accuracy_a / accuracy_b: the two any-capture accuracies.
    """

    name_a: str
    name_b: str
    both: int
    only_a: int
    only_b: int
    neither: int
    p_value: float
    accuracy_a: float
    accuracy_b: float

    @property
    def winner(self) -> str | None:
        """The label with more discordant wins, or ``None`` on a tie."""
        if self.only_a > self.only_b:
            return self.name_a
        if self.only_b > self.only_a:
            return self.name_b
        return None

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha

    def __str__(self) -> str:
        verdict = self.winner or "tie"
        return (f"{self.name_a} {self.accuracy_a:.1%} vs "
                f"{self.name_b} {self.accuracy_b:.1%} — discordant "
                f"{self.only_a}/{self.only_b}, p={self.p_value:.2e} "
                f"({verdict})")


def _captured_flags(ground_truth: SessionSet, reconstructed: SessionSet,
                    match_within_user: bool) -> list[bool]:
    pool_by_user: dict[str, list[Session]] = {}
    for session in reconstructed:
        if session:
            pool_by_user.setdefault(session.user_id, []).append(session)
    all_sessions = [session for session in reconstructed if session]
    flags = []
    for real in ground_truth:
        if not real:
            flags.append(False)
            continue
        pool = (pool_by_user.get(real.user_id, []) if match_within_user
                else all_sessions)
        flags.append(any(contains(candidate.pages, real.pages)
                         for candidate in pool))
    return flags


def compare_heuristics(ground_truth: SessionSet,
                       reconstructed_a: SessionSet,
                       reconstructed_b: SessionSet,
                       name_a: str = "A", name_b: str = "B",
                       match_within_user: bool = True) -> McNemarResult:
    """Run McNemar's exact test on two reconstructions of one ground truth.

    Capture here is the per-session any-capture relation (⊏) — the natural
    per-item pairing; the one-to-one matched metric is a set-level quantity
    and has no per-session boolean.

    Raises:
        EvaluationError: for an empty ground truth.
    """
    if stats is None:
        raise EvaluationError(
            "compare_heuristics needs scipy (McNemar's exact test); "
            "install it or compare point estimates only")
    if len(ground_truth) == 0:
        raise EvaluationError("cannot compare against an empty ground truth")

    flags_a = _captured_flags(ground_truth, reconstructed_a,
                              match_within_user)
    flags_b = _captured_flags(ground_truth, reconstructed_b,
                              match_within_user)

    both = only_a = only_b = neither = 0
    for a, b in zip(flags_a, flags_b):
        if a and b:
            both += 1
        elif a:
            only_a += 1
        elif b:
            only_b += 1
        else:
            neither += 1

    discordant = only_a + only_b
    if discordant == 0:
        p_value = 1.0
    else:
        p_value = stats.binomtest(min(only_a, only_b), discordant,
                                  0.5, alternative="two-sided").pvalue

    total = len(ground_truth)
    return McNemarResult(
        name_a=name_a, name_b=name_b,
        both=both, only_a=only_a, only_b=only_b, neither=neither,
        p_value=float(p_value),
        accuracy_a=(both + only_a) / total,
        accuracy_b=(both + only_b) / total,
    )
