"""Heuristic leaderboard: every method, one simulation, ranked with CIs.

The figures compare the paper's four heuristics; the library has grown
more (phase1 ablation, adaptive timeout, referrer upper baseline).  The
leaderboard runs *all* of them against one simulation — the referrer
heuristic sees the combined-log view (with referrers), everything else the
plain-CLF view — and ranks by matched accuracy with bootstrap confidence
intervals, so a single call answers "where does my new heuristic land?".

Custom entries participate by name through the same constructor table as
the spec runner.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.evaluation.bootstrap import AccuracyInterval, bootstrap_accuracy
from repro.evaluation.metrics import evaluate_reconstruction
from repro.evaluation.spec import build_heuristics
from repro.exceptions import EvaluationError
from repro.sessions.base import SessionReconstructor
from repro.sessions.model import Request
from repro.sessions.referrer import ReferrerHeuristic
from repro.simulator.config import SimulationConfig
from repro.simulator.population import SimulationResult, simulate_population
from repro.topology.graph import WebGraph

__all__ = ["LeaderboardRow", "leaderboard", "render_leaderboard",
           "DEFAULT_LINEUP"]

#: heuristics ranked by default (referrer last = the data-advantage entry).
DEFAULT_LINEUP = ("heur1", "heur2", "adaptive", "phase1", "heur3", "heur4",
                  "amp", "referrer")


@dataclass(frozen=True, slots=True)
class LeaderboardRow:
    """One ranked entry.

    Attributes:
        rank: 1-based position by matched accuracy.
        name: heuristic name.
        matched: one-to-one matched accuracy with bootstrap CI.
        captured: any-capture accuracy.
        sessions: reconstructed session count.
        log_view: ``"clf"`` or ``"combined"`` — which input the heuristic
            consumed.
    """

    rank: int
    name: str
    matched: AccuracyInterval
    captured: float
    sessions: int
    log_view: str


def leaderboard(topology: WebGraph, config: SimulationConfig,
                names: tuple[str, ...] = DEFAULT_LINEUP,
                simulation: SimulationResult | None = None,
                replicates: int = 200) -> list[LeaderboardRow]:
    """Run and rank the lineup on one simulation.

    Args:
        topology: the site (simulated fresh unless ``simulation`` given).
        config: simulation parameters.
        names: lineup to run (spec-runner heuristic names).
        simulation: reuse an existing simulation instead of running one.
        replicates: bootstrap resamples per entry.

    Returns:
        Rows sorted by descending matched accuracy (rank 1 first).

    Raises:
        EvaluationError: for an unknown heuristic name (via
            :func:`~repro.evaluation.spec.build_heuristics`).
    """
    if simulation is None:
        simulation = simulate_population(topology, config)
    heuristics: Mapping[str, SessionReconstructor] = build_heuristics(
        list(names), topology)

    plain_log = tuple(request.without_referrer()
                      for request in simulation.log_requests)

    scored = []
    for name, heuristic in heuristics.items():
        if isinstance(heuristic, ReferrerHeuristic):
            view, log = "combined", simulation.log_requests
        else:
            view, log = "clf", plain_log
        sessions = heuristic.reconstruct(log)
        report = evaluate_reconstruction(name, simulation.ground_truth,
                                         sessions)
        interval = bootstrap_accuracy(simulation.ground_truth, sessions,
                                      replicates=replicates, seed=0)
        scored.append((interval.estimate, name, interval, report, view,
                       len(sessions)))

    scored.sort(key=lambda item: (-item[0], item[1]))
    return [
        LeaderboardRow(rank=position, name=name, matched=interval,
                       captured=report.accuracy, sessions=session_count,
                       log_view=view)
        for position, (__, name, interval, report, view, session_count)
        in enumerate(scored, start=1)
    ]


def render_leaderboard(rows: list[LeaderboardRow]) -> str:
    """Render leaderboard rows as an aligned text table.

    Raises:
        EvaluationError: for an empty leaderboard.
    """
    if not rows:
        raise EvaluationError("nothing to render")
    lines = ["  #  heuristic  view      matched [95% CI]      captured"
             "  sessions"]
    for row in rows:
        interval = row.matched
        lines.append(
            f"  {row.rank}  {row.name:>9}  {row.log_view:<8}"
            f"  {interval.estimate * 100:5.1f}% "
            f"[{interval.low * 100:5.1f}, {interval.high * 100:5.1f}]"
            f"  {row.captured * 100:7.1f}%"
            f"  {row.sessions:8}")
    return "\n".join(lines) + "\n"


def leaderboard_from_requests(topology: WebGraph,
                              simulation: SimulationResult,
                              names: tuple[str, ...] = DEFAULT_LINEUP,
                              replicates: int = 200
                              ) -> list[LeaderboardRow]:
    """Leaderboard over an existing simulation (no re-simulation)."""
    return leaderboard(topology, simulation.config, names=names,
                       simulation=simulation, replicates=replicates)
