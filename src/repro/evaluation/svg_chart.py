"""Publication-style SVG line charts for accuracy sweeps.

The ASCII charts (:mod:`repro.evaluation.ascii_chart`) live in the
terminal; this module writes the same figures as standalone SVG files —
no plotting dependency, just hand-assembled SVG — so the benchmark run
leaves behind genuine counterparts of the paper's Figures 8-10 under
``benchmarks/results/``.
"""

from __future__ import annotations

from repro.evaluation.harness import SweepResult
from repro.exceptions import EvaluationError

__all__ = ["render_svg", "save_svg"]

#: default series colors (colorblind-safe Okabe-Ito subset).
_COLORS = ("#0072B2", "#E69F00", "#009E73", "#D55E00",
           "#CC79A7", "#56B4E9")

_WIDTH = 640
_HEIGHT = 400
_MARGIN_LEFT = 64
_MARGIN_RIGHT = 150
_MARGIN_TOP = 48
_MARGIN_BOTTOM = 56


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def render_svg(result: SweepResult, title: str = "",
               metric: str = "matched") -> str:
    """Render a sweep as an SVG document string.

    Args:
        result: the sweep to plot.
        title: chart heading.
        metric: ``"matched"`` or ``"captured"``.

    Raises:
        EvaluationError: for an empty sweep.
    """
    series = result.series(metric)
    if not series or not result.values:
        raise EvaluationError("cannot chart an empty sweep")

    values = list(result.values)
    peak = max(max(points) for points in series.values())
    y_top = max(0.05, min(1.0, peak * 1.1))
    x_min, x_max = min(values), max(values)
    x_span = (x_max - x_min) or 1.0

    plot_width = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_height = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM

    def x_of(value: float) -> float:
        return _MARGIN_LEFT + (value - x_min) / x_span * plot_width

    def y_of(accuracy: float) -> float:
        return (_MARGIN_TOP
                + (1 - accuracy / y_top) * plot_height)

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_WIDTH / 2}" y="24" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{_escape(title)}</text>')

    # gridlines + y labels (five divisions)
    for step in range(6):
        accuracy = y_top * step / 5
        y = y_of(accuracy)
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{y:.1f}" '
            f'x2="{_WIDTH - _MARGIN_RIGHT}" y2="{y:.1f}" '
            f'stroke="#dddddd" stroke-width="1"/>')
        parts.append(
            f'<text x="{_MARGIN_LEFT - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{accuracy * 100:.0f}%</text>')

    # x axis ticks
    for value in values:
        x = x_of(value)
        base = _HEIGHT - _MARGIN_BOTTOM
        parts.append(
            f'<line x1="{x:.1f}" y1="{base}" x2="{x:.1f}" '
            f'y2="{base + 5}" stroke="#333333"/>')
        parts.append(
            f'<text x="{x:.1f}" y="{base + 20}" '
            f'text-anchor="middle">{value:g}</text>')
    parts.append(
        f'<text x="{(_MARGIN_LEFT + _WIDTH - _MARGIN_RIGHT) / 2}" '
        f'y="{_HEIGHT - 12}" text-anchor="middle" font-style="italic">'
        f'{_escape(result.parameter.upper())}</text>')

    # axes
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" '
        f'x2="{_MARGIN_LEFT}" y2="{_HEIGHT - _MARGIN_BOTTOM}" '
        f'stroke="#333333" stroke-width="1.5"/>')
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_HEIGHT - _MARGIN_BOTTOM}" '
        f'x2="{_WIDTH - _MARGIN_RIGHT}" y2="{_HEIGHT - _MARGIN_BOTTOM}" '
        f'stroke="#333333" stroke-width="1.5"/>')

    # series polylines + markers + legend
    for index, (name, points) in enumerate(series.items()):
        color = _COLORS[index % len(_COLORS)]
        coordinates = " ".join(
            f"{x_of(value):.1f},{y_of(point):.1f}"
            for value, point in zip(values, points))
        parts.append(
            f'<polyline points="{coordinates}" fill="none" '
            f'stroke="{color}" stroke-width="2"/>')
        for value, point in zip(values, points):
            parts.append(
                f'<circle cx="{x_of(value):.1f}" cy="{y_of(point):.1f}" '
                f'r="3" fill="{color}"/>')
        legend_y = _MARGIN_TOP + 10 + index * 20
        legend_x = _WIDTH - _MARGIN_RIGHT + 16
        parts.append(
            f'<line x1="{legend_x}" y1="{legend_y}" '
            f'x2="{legend_x + 22}" y2="{legend_y}" stroke="{color}" '
            f'stroke-width="2"/>')
        parts.append(
            f'<text x="{legend_x + 28}" y="{legend_y + 4}">'
            f'{_escape(name)}</text>')

    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def save_svg(result: SweepResult, path: str, title: str = "",
             metric: str = "matched") -> None:
    """Render and write the chart to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(result, title, metric))
