"""Error taxonomy: *how* does a reconstruction miss a session?

Accuracy says how often a heuristic fails; error analysis needs to know
*how*.  For each ground-truth session this module assigns exactly one
category, evaluated in order against the user's reconstructed sessions:

========== ============================================================
category   meaning
========== ============================================================
EXACT      some reconstructed session has exactly the real pages.
MERGED     some reconstructed session captures the real one (⊏) with
           extra context around it — under-segmentation.
SCATTERED  not captured, but every real page occurs *somewhere* in the
           user's reconstruction: the visit order or grouping was
           destroyed (over-segmentation or interleaving).
PARTIAL    only some of the real pages appear anywhere — typically the
           session's cache-served pages are simply absent from the log.
LOST       none of the real pages appear for this user.
========== ============================================================

Each heuristic has a signature error profile (benchmark A13): time
heuristics are dominated by MERGED (giant sessions), Smart-SRA's misses
concentrate in PARTIAL (cache-hidden first pages nothing reactive can
recover).
"""

from __future__ import annotations

import enum
from collections import Counter

from repro.evaluation.subsequence import contains
from repro.exceptions import EvaluationError
from repro.sessions.model import Session, SessionSet

__all__ = ["ErrorCategory", "classify_session", "error_breakdown",
           "render_breakdown"]


class ErrorCategory(enum.Enum):
    """Reconstruction outcome for one ground-truth session."""

    EXACT = "exact"
    MERGED = "merged"
    SCATTERED = "scattered"
    PARTIAL = "partial"
    LOST = "lost"


def classify_session(real: Session,
                     pool: list[Session]) -> ErrorCategory:
    """Assign the error category for one real session.

    Args:
        real: the ground-truth session (non-empty).
        pool: the same user's reconstructed sessions.

    Raises:
        EvaluationError: for an empty real session.
    """
    if not real:
        raise EvaluationError("cannot classify an empty real session")
    pages = real.pages
    for candidate in pool:
        if candidate.pages == pages:
            return ErrorCategory.EXACT
    for candidate in pool:
        if contains(candidate.pages, pages):
            return ErrorCategory.MERGED
    seen = {page for candidate in pool for page in candidate.pages}
    present = sum(1 for page in pages if page in seen)
    if present == len(pages):
        return ErrorCategory.SCATTERED
    if present > 0:
        return ErrorCategory.PARTIAL
    return ErrorCategory.LOST


def error_breakdown(ground_truth: SessionSet,
                    reconstructed: SessionSet
                    ) -> dict[ErrorCategory, int]:
    """Count ground-truth sessions per error category (within-user pools).

    Raises:
        EvaluationError: for an empty ground truth.
    """
    real_sessions = [session for session in ground_truth if session]
    if not real_sessions:
        raise EvaluationError(
            "cannot analyze an empty ground truth")
    pool_by_user: dict[str, list[Session]] = {}
    for session in reconstructed:
        if session:
            pool_by_user.setdefault(session.user_id, []).append(session)
    counts: Counter[ErrorCategory] = Counter()
    for real in real_sessions:
        counts[classify_session(real, pool_by_user.get(real.user_id, []))] \
            += 1
    return {category: counts.get(category, 0)
            for category in ErrorCategory}


def render_breakdown(breakdowns: dict[str, dict[ErrorCategory, int]]) -> str:
    """Render ``{heuristic: breakdown}`` as an aligned percentage table."""
    if not breakdowns:
        raise EvaluationError("nothing to render")
    categories = list(ErrorCategory)
    header = ("  heuristic  "
              + "  ".join(f"{category.value:>9}" for category in categories))
    lines = [header]
    for name, breakdown in breakdowns.items():
        total = sum(breakdown.values())
        cells = "  ".join(
            f"{breakdown.get(category, 0) / total * 100:8.1f}%"
            for category in categories)
        lines.append(f"  {name:>9}  {cells}")
    return "\n".join(lines) + "\n"
