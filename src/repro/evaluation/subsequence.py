"""The capture relation ``R ⊏ H`` — contiguous subsequence search.

The paper defines that a reconstructed session *H captures* a real session
*R* when R occurs in H as a **contiguous** subsequence preserving order:
``[P1,P3,P5] ⊏ [P9,P1,P3,P5,P8]`` but ``[P1,P3,P5] ⋢ [P1,P9,P3,P5,P8]``
"because P9 interrupts R in H".  That is exactly substring search over the
page-id alphabet, "adopted from ordinary string searching algorithm" (§5.1).

:func:`find` implements Knuth-Morris-Pratt, linear in ``len(haystack) +
len(needle)`` — real sessions are short but heur3 haystacks can grow long,
and the evaluation performs millions of searches per sweep point.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["find", "contains", "failure_function"]


def failure_function(needle: Sequence[str]) -> list[int]:
    """KMP failure (longest proper prefix-suffix) table for ``needle``."""
    table = [0] * len(needle)
    length = 0
    for index in range(1, len(needle)):
        while length and needle[index] != needle[length]:
            length = table[length - 1]
        if needle[index] == needle[length]:
            length += 1
        table[index] = length
    return table


def find(haystack: Sequence[str], needle: Sequence[str]) -> int:
    """Index of the first occurrence of ``needle`` in ``haystack``, else -1.

    The empty needle matches at index 0, mirroring ``str.find``.
    """
    if not needle:
        return 0
    if len(needle) > len(haystack):
        return -1
    table = failure_function(needle)
    matched = 0
    for index, symbol in enumerate(haystack):
        while matched and symbol != needle[matched]:
            matched = table[matched - 1]
        if symbol == needle[matched]:
            matched += 1
            if matched == len(needle):
                return index - len(needle) + 1
    return -1


def contains(haystack: Sequence[str], needle: Sequence[str]) -> bool:
    """Whether ``needle ⊏ haystack`` (contiguous, order-preserving)."""
    return find(haystack, needle) != -1
