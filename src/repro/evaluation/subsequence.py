"""The capture relation ``R ⊏ H`` — contiguous subsequence search.

The paper defines that a reconstructed session *H captures* a real session
*R* when R occurs in H as a **contiguous** subsequence preserving order:
``[P1,P3,P5] ⊏ [P9,P1,P3,P5,P8]`` but ``[P1,P3,P5] ⋢ [P1,P9,P3,P5,P8]``
"because P9 interrupts R in H".  That is exactly substring search over the
page-id alphabet, "adopted from ordinary string searching algorithm" (§5.1).

:func:`find` implements Knuth-Morris-Pratt, linear in ``len(haystack) +
len(needle)`` — real sessions are short but heur3 haystacks can grow long,
and the evaluation performs millions of searches per sweep point.

For repeated queries against a *fixed* corpus of haystacks,
:class:`SubsequenceIndex` replaces the per-pair O(n·m) scan with a
rarest-symbol postings lookup: each query only touches the haystack
positions where its least frequent page occurs, instead of every position
of every haystack.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["find", "contains", "failure_function", "SubsequenceIndex"]


def failure_function(needle: Sequence[str]) -> list[int]:
    """KMP failure (longest proper prefix-suffix) table for ``needle``."""
    table = [0] * len(needle)
    length = 0
    for index in range(1, len(needle)):
        while length and needle[index] != needle[length]:
            length = table[length - 1]
        if needle[index] == needle[length]:
            length += 1
        table[index] = length
    return table


def find(haystack: Sequence[str], needle: Sequence[str]) -> int:
    """Index of the first occurrence of ``needle`` in ``haystack``, else -1.

    The empty needle matches at index 0, mirroring ``str.find``.
    """
    if not needle:
        return 0
    if len(needle) > len(haystack):
        return -1
    table = failure_function(needle)
    matched = 0
    for index, symbol in enumerate(haystack):
        while matched and symbol != needle[matched]:
            matched = table[matched - 1]
        if symbol == needle[matched]:
            matched += 1
            if matched == len(needle):
                return index - len(needle) + 1
    return -1


def contains(haystack: Sequence[str], needle: Sequence[str]) -> bool:
    """Whether ``needle ⊏ haystack`` (contiguous, order-preserving)."""
    return find(haystack, needle) != -1


class SubsequenceIndex:
    """Inverted index answering ``needle ⊏ haystack?`` over a fixed corpus.

    Build once over the corpus of haystacks, then query many needles —
    the shape of the capture metric, where every ground-truth session is
    tested against the same pool of reconstructed sessions.

    Each query anchors on the needle's *rarest* symbol (fewest postings):
    for a needle occurring at offset ``o`` of itself, every corpus
    occurrence ``(haystack, position)`` of that symbol admits at most one
    candidate window ``haystack[position-o : position-o+len(needle)]``,
    verified by a direct tuple compare.  Work per query is proportional to
    the rarest symbol's corpus frequency — typically a tiny fraction of
    the ``Σ len(haystack)`` an exhaustive KMP scan walks — and a needle
    using any page absent from the corpus costs O(len(needle)).

    The exhaustive scan equivalence ``index.find_all(n) ==
    [i for i, h in enumerate(corpus) if contains(h, n)]`` is
    property-tested.
    """

    __slots__ = ("_sequences", "_postings")

    def __init__(self, sequences: Iterable[Sequence[str]]) -> None:
        self._sequences: list[tuple[str, ...]] = [
            tuple(sequence) for sequence in sequences]
        postings: dict[str, list[tuple[int, int]]] = {}
        for hay_index, sequence in enumerate(self._sequences):
            for position, symbol in enumerate(sequence):
                postings.setdefault(symbol, []).append((hay_index, position))
        self._postings = postings

    def __len__(self) -> int:
        return len(self._sequences)

    @property
    def sequences(self) -> list[tuple[str, ...]]:
        """The indexed corpus, in construction order."""
        return list(self._sequences)

    def find_all(self, needle: Sequence[str]) -> list[int]:
        """Ascending corpus indices of haystacks with ``needle ⊏ haystack``.

        The empty needle matches every haystack, mirroring :func:`find`.
        """
        needle = tuple(needle)
        if not needle:
            return list(range(len(self._sequences)))
        anchor_offset = 0
        anchor: list[tuple[int, int]] | None = None
        for offset, symbol in enumerate(needle):
            posting = self._postings.get(symbol)
            if posting is None:
                return []
            if anchor is None or len(posting) < len(anchor):
                anchor = posting
                anchor_offset = offset
        width = len(needle)
        sequences = self._sequences
        hits: set[int] = set()
        for hay_index, position in anchor:
            if hay_index in hits:
                continue
            start = position - anchor_offset
            if start >= 0 and sequences[hay_index][start:start + width] == needle:
                hits.add(hay_index)
        return sorted(hits)

    def contains_any(self, needle: Sequence[str]) -> bool:
        """Whether any corpus haystack captures ``needle``."""
        return bool(self.find_all(needle))
