"""Accuracy metrics (paper §5.1) and extended diagnostics.

The paper's headline number is **real accuracy** — "the ratio of correctly
reconstructed sessions over the number of real sessions", where a
reconstructed session H captures a real session R when R ⊏ H (contiguous
subsequence).  Two readings of that ratio are implemented:

* **any-capture** (:attr:`AccuracyReport.accuracy`): R counts when *some* H
  captures it.  This is the literal reading of the ⊏ definition, but it
  lets one giant under-segmented session capture every real session of its
  user, so a heuristic that never splits scores deceptively well.
* **one-to-one matched** (:attr:`AccuracyReport.matched_accuracy`): each
  reconstructed session may be credited with at most one real session
  (maximum bipartite matching on the capture relation).  This reading
  rewards *correct segmentation* — precisely what the paper's experiments
  discriminate — and reproduces the magnitude ordering of Figures 8-10;
  the benchmarks report it as the headline series.  See EXPERIMENTS.md.

:func:`evaluate_reconstruction` additionally reports diagnostics the paper
discusses qualitatively — reconstructed session counts and lengths
(heur3's inserted back-movements inflate length), exact matches, and a
precision analogue (the fraction of reconstructed sessions that capture
some real session).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Any

from repro.evaluation.subsequence import SubsequenceIndex, contains
from repro.exceptions import EvaluationError
from repro.sessions.model import Session, SessionSet

__all__ = [
    "session_captured",
    "real_accuracy",
    "evaluate_reconstruction",
    "AccuracyReport",
]


def session_captured(real: Session,
                     reconstructed: Iterable[Session]) -> bool:
    """Whether any session in ``reconstructed`` captures ``real`` (⊏)."""
    pages = real.pages
    return any(contains(candidate.pages, pages)
               for candidate in reconstructed)


@dataclass(frozen=True, slots=True)
class AccuracyReport:
    """Evaluation result for one (ground truth, reconstruction) pair.

    Attributes:
        heuristic: name of the evaluated reconstructor.
        total_real: number of ground-truth sessions (the denominator).
        captured: ground-truth sessions captured by ⊏ (any-capture).
        matched: ground-truth sessions credited under the one-to-one
            matching (each reconstructed session matches at most one).
        exact: ground-truth sessions reproduced *verbatim* (page sequences
            equal) — a stricter diagnostic than the paper's metric.
        reconstructed_count: sessions the heuristic produced.
        productive: reconstructed sessions that capture at least one real
            session (a precision analogue).
        mean_real_length: mean ground-truth session length, in requests.
        mean_reconstructed_length: mean reconstructed session length —
            heur3's path completion shows up here.
    """

    heuristic: str
    total_real: int
    captured: int
    matched: int
    exact: int
    reconstructed_count: int
    productive: int
    mean_real_length: float
    mean_reconstructed_length: float

    @property
    def accuracy(self) -> float:
        """Any-capture real accuracy: ``captured / total_real``.

        With no ground-truth sessions the ratio is vacuously ``1.0``
        (there was nothing to recover and nothing was missed); spurious
        reconstructed output still shows up in :attr:`precision`.
        """
        if self.total_real == 0:
            return 1.0
        return self.captured / self.total_real

    @property
    def matched_accuracy(self) -> float:
        """One-to-one matched real accuracy: ``matched / total_real``.

        Vacuously ``1.0`` when the ground truth is empty, mirroring
        :attr:`accuracy`.
        """
        if self.total_real == 0:
            return 1.0
        return self.matched / self.total_real

    @property
    def precision(self) -> float:
        """``productive / reconstructed_count`` (0.0 when nothing produced)."""
        if self.reconstructed_count == 0:
            return 0.0
        return self.productive / self.reconstructed_count

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-safe) for reports and checkpoints."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> AccuracyReport:
        """Rebuild a report from :meth:`to_dict` output.

        Unknown keys are ignored so documents written by a newer minor
        version still load; a missing field raises ``TypeError`` — the
        checkpoint layer treats that as a corrupt unit and recomputes.
        """
        names = {field.name for field in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in data.items()
                      if key in names})


def _maximum_matching(adjacency: list[list[int]]) -> int:
    """Size of a maximum bipartite matching (Kuhn's algorithm).

    ``adjacency[i]`` lists the right-side partner ids of left node ``i``.
    Classic augmenting-path search; matching is computed per user, where
    both sides are at most a few hundred sessions, so the recursion depth
    (bounded by the matching size) stays far below the interpreter limit.
    """
    match_right: dict[int, int] = {}

    def try_augment(left: int, visited: set[int]) -> bool:
        for right in adjacency[left]:
            if right in visited:
                continue
            visited.add(right)
            occupant = match_right.get(right)
            if occupant is None or try_augment(occupant, visited):
                match_right[right] = left
                return True
        return False

    size = 0
    for left in range(len(adjacency)):
        if try_augment(left, set()):
            size += 1
    return size


def real_accuracy(ground_truth: SessionSet, reconstructed: SessionSet,
                  match_within_user: bool = True) -> float:
    """The paper's accuracy metric as a bare number.

    Args:
        ground_truth: the simulator's real sessions.
        reconstructed: one heuristic's output.
        match_within_user: when ``True`` (default), a real session may only
            be captured by a reconstructed session of the *same user* —
            the natural reading, since heuristics reconstruct per user.
            ``False`` matches against the whole reconstructed set (needed
            when identities were translated, e.g. after a CLF round trip
            with proxy sharing).

    Raises:
        EvaluationError: when ``ground_truth`` is empty.
    """
    report = evaluate_reconstruction("(anonymous)", ground_truth,
                                     reconstructed, match_within_user)
    return report.accuracy


def evaluate_reconstruction(heuristic: str, ground_truth: SessionSet,
                            reconstructed: SessionSet,
                            match_within_user: bool = True, *,
                            allow_empty: bool = False) -> AccuracyReport:
    """Full evaluation of one heuristic's output against ground truth.

    See :func:`real_accuracy` for the ``match_within_user`` semantics.

    Args:
        allow_empty: permit an empty ``ground_truth`` and return a report
            with ``total_real == 0`` (accuracies vacuously 1.0) instead of
            raising.  An empty ground truth is usually an upstream mistake,
            so the default stays strict; the differential harness and
            empty-corpus evaluations opt in explicitly.

    Raises:
        EvaluationError: when ``ground_truth`` is empty and ``allow_empty``
            is false.
    """
    if len(ground_truth) == 0 and not allow_empty:
        raise EvaluationError(
            "cannot evaluate against an empty ground truth")

    captured = 0
    exact = 0
    productive_indices: set[int] = set()
    # capture_edges[i] lists the reconstructed-session indices capturing
    # ground-truth session i; grouped per user for the matching step.
    capture_edges: list[list[int]] = []
    real_groups: dict[str, list[int]] = {}

    # One SubsequenceIndex per candidate pool (per user, plus one global
    # pool for cross-user matching and user-less real sessions).  The
    # capture test is the hot path of every sweep point: the index answers
    # each real session's query by probing only its rarest page's corpus
    # occurrences instead of KMP-scanning every reconstructed session.
    pages_by_user: dict[str, list[tuple[int, ...]]] = {}
    globals_by_user: dict[str, list[int]] = {}
    for index, session in enumerate(reconstructed):
        if session:
            pages_by_user.setdefault(session.user_id, []).append(
                session.pages)
            globals_by_user.setdefault(session.user_id, []).append(index)
    user_indexes = {user: SubsequenceIndex(corpus)
                    for user, corpus in pages_by_user.items()}
    empty_index = SubsequenceIndex(())
    global_index: SubsequenceIndex | None = None

    for real_index, real in enumerate(ground_truth):
        if match_within_user and real:
            pool_index = user_indexes.get(real.user_id, empty_index)
            to_global = globals_by_user.get(real.user_id, ())
            group_key = real.user_id
        else:
            if global_index is None:
                global_index = SubsequenceIndex(
                    session.pages for session in reconstructed)
            pool_index = global_index
            to_global = range(len(reconstructed))
            group_key = ""
        edges = [to_global[local] for local in pool_index.find_all(real.pages)]
        captured += bool(edges)
        exact += any(reconstructed[index].pages == real.pages
                     for index in edges)
        productive_indices.update(edges)
        capture_edges.append(edges)
        real_groups.setdefault(group_key, []).append(real_index)

    matched = sum(
        _maximum_matching([capture_edges[real_index]
                           for real_index in group])
        for group in real_groups.values())

    return AccuracyReport(
        heuristic=heuristic,
        total_real=len(ground_truth),
        captured=captured,
        matched=matched,
        exact=exact,
        reconstructed_count=len(reconstructed),
        productive=len(productive_indices),
        mean_real_length=ground_truth.mean_length(),
        mean_reconstructed_length=reconstructed.mean_length(),
    )
