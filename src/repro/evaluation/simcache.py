"""Disk cache for simulation results.

Sweeps re-simulate the same (topology, configuration) pairs across bench
runs; at the paper's 10,000-agent scale each simulation costs seconds to
minutes.  :func:`cached_simulation` memoizes
:func:`~repro.simulator.population.simulate_population` on disk, keyed by
the topology fingerprint and every simulation parameter, so repeated
experiment runs pay the cost once.

Only the evaluation-relevant outputs are persisted (ground truth and log
requests — not per-agent traces), which is what
:func:`~repro.evaluation.harness.run_trial` consumes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib

from repro.sessions.model import Request, SessionSet
from repro.simulator.config import SimulationConfig
from repro.simulator.population import SimulationResult, simulate_population
from repro.topology.graph import WebGraph

__all__ = ["simulation_cache_key", "cached_simulation"]

_FORMAT_VERSION = 2  # bump when the simulator's behavior model changes


def simulation_cache_key(topology: WebGraph, config: SimulationConfig,
                         horizon: float,
                         arrival_profile: str) -> str:
    """Deterministic cache key covering every behavior-relevant input."""
    payload = json.dumps({
        "format": _FORMAT_VERSION,
        "topology": topology.fingerprint(),
        "config": dataclasses.asdict(config),
        "horizon": horizon,
        "arrival_profile": arrival_profile,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def cached_simulation(topology: WebGraph, config: SimulationConfig,
                      cache_dir: str, horizon: float = 86_400.0,
                      arrival_profile: str = "uniform") -> SimulationResult:
    """Simulate, or reload a previous identical simulation from disk.

    The returned :class:`SimulationResult` from a cache hit carries empty
    ``traces`` (per-agent drill-down is not persisted); ``ground_truth``
    and ``log_requests`` — everything evaluation needs — are exact.

    Args:
        topology: the site to browse.
        config: simulation parameters.
        cache_dir: directory for cache entries (created if missing).
        horizon / arrival_profile: as in
            :func:`~repro.simulator.population.simulate_population`.
    """
    directory = pathlib.Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    key = simulation_cache_key(topology, config, horizon, arrival_profile)
    entry = directory / f"sim_{key}.json"

    if entry.exists():
        with open(entry, encoding="utf-8") as handle:
            payload = json.load(handle)
        ground_truth = SessionSet.from_jsonable(payload["ground_truth"])
        log_requests = tuple(
            Request(item["t"], item["u"], item["p"],
                    referrer=item.get("r"))
            for item in payload["log"])
        return SimulationResult(
            topology=topology, config=config, ground_truth=ground_truth,
            log_requests=log_requests, traces=())

    result = simulate_population(topology, config, horizon=horizon,
                                 arrival_profile=arrival_profile)
    payload = {
        "ground_truth": result.ground_truth.to_jsonable(),
        "log": [
            {"t": request.timestamp, "u": request.user_id,
             "p": request.page,
             **({"r": request.referrer}
                if request.referrer is not None else {})}
            for request in result.log_requests
        ],
    }
    temporary = entry.with_suffix(".tmp")
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    temporary.replace(entry)  # atomic publish: no torn cache entries
    return result
