"""Graded session-similarity measures (beyond binary capture).

The paper's accuracy metric is binary: a real session is either captured
(⊏) or lost.  The evaluation framework it cites (Berendt, Mobasher,
Spiliopoulou & Nakagawa, 2003 — reference [2]) argues for *graded*
measures: a reconstruction that recovers 4 of a session's 5 pages in order
is better than one that recovers none, even though both fail the binary
test.  This module implements the graded complement:

* :func:`lcs_length` — longest common subsequence of two page sequences
  (order-preserving, gaps allowed);
* :func:`session_overlap` — normalized LCS, the "degree of overlap"
  between one real and one reconstructed session;
* :func:`similarity_report` — corpus-level aggregates: mean best overlap
  per real session (a graded recall), mean best overlap per reconstructed
  session (a graded precision), their harmonic mean, and a fragmentation
  ratio (how many sessions the heuristic cuts per real session).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import EvaluationError
from repro.sessions.model import Session, SessionSet

__all__ = [
    "lcs_length",
    "session_overlap",
    "SimilarityReport",
    "similarity_report",
]


def lcs_length(first: Sequence[str], second: Sequence[str]) -> int:
    """Length of the longest common subsequence of two page sequences.

    Classic dynamic program, O(len(first) × len(second)) time with a
    two-row table.  Unlike the capture relation ⊏, the common subsequence
    may be interrupted in *both* sequences — it measures how much of the
    visit order survived, not whether it survived contiguously.
    """
    if not first or not second:
        return 0
    # keep the shorter sequence as the table row for cache friendliness.
    if len(second) > len(first):
        first, second = second, first
    previous = [0] * (len(second) + 1)
    for symbol in first:
        current = [0]
        for index, other in enumerate(second, start=1):
            if symbol == other:
                current.append(previous[index - 1] + 1)
            else:
                current.append(max(previous[index], current[index - 1]))
        previous = current
    return previous[-1]


def session_overlap(real: Session, reconstructed: Session) -> float:
    """Degree of overlap: ``|LCS(real, reconstructed)| / |real|``.

    1.0 means every page of the real session appears in the reconstructed
    one in the right order (possibly interleaved with others); 0.0 means
    nothing survived.

    Raises:
        EvaluationError: for an empty real session (overlap undefined).
    """
    if not real:
        raise EvaluationError("overlap undefined for an empty real session")
    if not reconstructed:
        return 0.0
    return lcs_length(real.pages, reconstructed.pages) / len(real)


@dataclass(frozen=True, slots=True)
class SimilarityReport:
    """Corpus-level graded similarity between truth and reconstruction.

    Attributes:
        heuristic: name of the evaluated reconstructor.
        graded_recall: mean over real sessions of the best overlap any
            same-user reconstructed session achieves.
        graded_precision: mean over reconstructed sessions of
            ``|LCS| / |H|`` against their best same-user real session —
            how much of what the heuristic outputs is real order.
        f1: harmonic mean of the two (0.0 when both are 0).
        fragmentation: ``reconstructed count / real count`` — > 1 means
            over-splitting (or Smart-SRA's deliberate branching), < 1
            under-splitting.
    """

    heuristic: str
    graded_recall: float
    graded_precision: float
    f1: float
    fragmentation: float


def similarity_report(heuristic: str, ground_truth: SessionSet,
                      reconstructed: SessionSet) -> SimilarityReport:
    """Compute the graded similarity aggregates.

    Matching is within-user, like the capture metric: a real session is
    compared only against reconstructed sessions of the same user.

    Raises:
        EvaluationError: for an empty ground truth.
    """
    real_sessions = [session for session in ground_truth if session]
    if not real_sessions:
        raise EvaluationError(
            "cannot compute similarity against an empty ground truth")

    recon_by_user: dict[str, list[Session]] = {}
    for session in reconstructed:
        if session:
            recon_by_user.setdefault(session.user_id, []).append(session)
    truth_by_user: dict[str, list[Session]] = {}
    for session in real_sessions:
        truth_by_user.setdefault(session.user_id, []).append(session)

    recall_total = 0.0
    for real in real_sessions:
        pool = recon_by_user.get(real.user_id, [])
        recall_total += max(
            (session_overlap(real, candidate) for candidate in pool),
            default=0.0)
    graded_recall = recall_total / len(real_sessions)

    recon_sessions = [session for session in reconstructed if session]
    if recon_sessions:
        precision_total = 0.0
        for candidate in recon_sessions:
            pool = truth_by_user.get(candidate.user_id, [])
            precision_total += max(
                (lcs_length(candidate.pages, real.pages) / len(candidate)
                 for real in pool),
                default=0.0)
        graded_precision = precision_total / len(recon_sessions)
    else:
        graded_precision = 0.0

    if graded_recall + graded_precision > 0:
        f1 = (2 * graded_recall * graded_precision
              / (graded_recall + graded_precision))
    else:
        f1 = 0.0

    return SimilarityReport(
        heuristic=heuristic,
        graded_recall=graded_recall,
        graded_precision=graded_precision,
        f1=f1,
        fragmentation=len(recon_sessions) / len(real_sessions),
    )
