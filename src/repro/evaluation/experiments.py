"""The paper's literal examples and headline experiments.

This module pins down, as data and one-call functions, everything §5 and
the worked examples define:

* :func:`paper_example_topology` — the Figure 1 / Figure 3 six-page graph;
* :func:`paper_table1_stream` / :func:`paper_table3_stream` — the worked
  request sequences;
* :data:`PAPER_DEFAULTS` — Table 5's simulation and topology parameters;
* :func:`fig8_sweep`, :func:`fig9_sweep`, :func:`fig10_sweep` — the three
  accuracy experiments (vary STP / LPP / NIP with everything else fixed).

Scale note: the paper runs 10,000 agents per sweep point.  The sweep
functions accept ``n_agents`` so tests and default benchmark runs can use
smaller, seeded populations; pass ``n_agents=10_000`` to reproduce full
scale (see DESIGN.md's substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation.harness import SweepResult, sweep
from repro.sessions.model import Request
from repro.simulator.config import SimulationConfig
from repro.topology.generators import random_site
from repro.topology.graph import WebGraph

__all__ = [
    "PaperDefaults",
    "PAPER_DEFAULTS",
    "paper_example_topology",
    "paper_table1_stream",
    "paper_table3_stream",
    "paper_topology",
    "fig8_sweep",
    "fig9_sweep",
    "fig10_sweep",
    "FIG8_STP_VALUES",
    "FIG9_LPP_VALUES",
    "FIG10_NIP_VALUES",
]

_MINUTE = 60.0


@dataclass(frozen=True, slots=True)
class PaperDefaults:
    """Table 5 of the paper, verbatim.

    Attributes mirror the table rows: topology size and out-degree, stay
    time distribution, population size and the three fixed behavioral
    probabilities.
    """

    n_pages: int = 300
    avg_out_degree: float = 15.0
    mean_stay_minutes: float = 2.2
    stay_deviation_minutes: float = 0.5
    n_agents: int = 10_000
    stp: float = 0.05
    lpp: float = 0.30
    nip: float = 0.30

    def simulation_config(self, **overrides: object) -> SimulationConfig:
        """Materialize a :class:`SimulationConfig` from these defaults."""
        base = SimulationConfig(
            stp=self.stp, lpp=self.lpp, nip=self.nip,
            mean_stay=self.mean_stay_minutes * _MINUTE,
            stay_deviation=self.stay_deviation_minutes * _MINUTE,
            n_agents=self.n_agents)
        return base.with_(**overrides) if overrides else base


PAPER_DEFAULTS = PaperDefaults()

#: Figure 8's x-axis: STP from 1% to 20% in 1% steps.
FIG8_STP_VALUES = tuple(round(0.01 * step, 2) for step in range(1, 21))
#: Figure 9's x-axis: LPP from 0% to 90% in 10% steps.
FIG9_LPP_VALUES = tuple(round(0.10 * step, 1) for step in range(0, 10))
#: Figure 10's x-axis: NIP from 0% to 90% in 10% steps.
FIG10_NIP_VALUES = tuple(round(0.10 * step, 1) for step in range(0, 10))


def paper_example_topology() -> WebGraph:
    """The six-page example site of Figures 1 and 3.

    Edges (read off the paper's traces in Tables 2 and 4): P1→{P20, P13},
    P13→{P49, P34}, {P20, P34, P49}→P23.  Start pages (gray in Figure 3):
    P1 and P49.
    """
    edges = [
        ("P1", "P20"), ("P1", "P13"),
        ("P13", "P49"), ("P13", "P34"),
        ("P20", "P23"), ("P34", "P23"), ("P49", "P23"),
    ]
    return WebGraph(edges, start_pages=["P1", "P49"])


def _stream(times_minutes: list[tuple[str, float]],
            user_id: str) -> list[Request]:
    return [Request(minutes * _MINUTE, user_id, page)
            for page, minutes in times_minutes]


def paper_table1_stream(user_id: str = "u0") -> list[Request]:
    """Table 1's request sequence: P1@0, P20@6, P13@15, P49@29, P34@32,
    P23@47 (minutes)."""
    return _stream([("P1", 0), ("P20", 6), ("P13", 15),
                    ("P49", 29), ("P34", 32), ("P23", 47)], user_id)


def paper_table3_stream(user_id: str = "u0") -> list[Request]:
    """Table 3's request sequence: P1@0, P20@6, P13@9, P49@12, P34@14,
    P23@15 (minutes) — a single Phase 1 candidate."""
    return _stream([("P1", 0), ("P20", 6), ("P13", 9),
                    ("P49", 12), ("P34", 14), ("P23", 15)], user_id)


def paper_topology(seed: int = 0) -> WebGraph:
    """A Table 5 topology: 300 pages, average out-degree 15."""
    return random_site(PAPER_DEFAULTS.n_pages, PAPER_DEFAULTS.avg_out_degree,
                       seed=seed)


def _figure_sweep(parameter: str, values: tuple[float, ...],
                  n_agents: int, seed: int,
                  topology: WebGraph | None) -> SweepResult:
    if topology is None:
        topology = paper_topology(seed=seed)
    config = PAPER_DEFAULTS.simulation_config(n_agents=n_agents, seed=seed)
    return sweep(topology, config, parameter, list(values))


def fig8_sweep(n_agents: int = 2000, seed: int = 0,
               topology: WebGraph | None = None) -> SweepResult:
    """Figure 8 — real accuracy vs STP (1%-20%), LPP/NIP at Table 5 values."""
    return _figure_sweep("stp", FIG8_STP_VALUES, n_agents, seed, topology)


def fig9_sweep(n_agents: int = 2000, seed: int = 0,
               topology: WebGraph | None = None) -> SweepResult:
    """Figure 9 — real accuracy vs LPP (0%-90%), STP/NIP at Table 5 values."""
    return _figure_sweep("lpp", FIG9_LPP_VALUES, n_agents, seed, topology)


def fig10_sweep(n_agents: int = 2000, seed: int = 0,
                topology: WebGraph | None = None) -> SweepResult:
    """Figure 10 — real accuracy vs NIP (0%-90%), STP/LPP at Table 5 values."""
    return _figure_sweep("nip", FIG10_NIP_VALUES, n_agents, seed, topology)
