"""ASCII line charts for accuracy sweeps.

The paper's Figures 8-10 are line charts; the benchmark harness regenerates
their *data*, and this module renders it as a terminal chart so a bench run
visually reproduces the figure, not just its table.  Pure text, no plotting
dependency — the charts land in ``benchmarks/results/*.txt`` next to the
tables.
"""

from __future__ import annotations

from repro.evaluation.harness import SweepResult
from repro.exceptions import EvaluationError

__all__ = ["render_chart"]

#: plot glyph per series, in series order (heur1..heur4, then extras).
_GLYPHS = "1234abcdef"


def render_chart(result: SweepResult, title: str = "", height: int = 16,
                 metric: str = "matched") -> str:
    """Render a sweep as an ASCII line chart.

    Args:
        result: the sweep to plot.
        title: heading line.
        height: chart rows (y resolution).
        metric: ``"matched"`` or ``"captured"``.

    Returns:
        The chart with a y-axis in percent, one column group per swept
        value, one glyph per heuristic, and a legend.

    Raises:
        EvaluationError: for a non-positive height or an empty sweep.
    """
    if height <= 0:
        raise EvaluationError(f"height must be positive, got {height}")
    series = result.series(metric)
    if not series or not result.values:
        raise EvaluationError("cannot chart an empty sweep")

    names = list(series)
    peak = max(max(values) for values in series.values())
    top = max(0.05, peak)  # avoid a zero-height axis
    column_width = 3
    width = len(result.values) * column_width

    # grid[row][col]; row 0 is the top.
    grid = [[" "] * width for __ in range(height)]
    for series_index, name in enumerate(names):
        glyph = _GLYPHS[series_index % len(_GLYPHS)]
        for point_index, value in enumerate(series[name]):
            row = height - 1 - round((value / top) * (height - 1))
            col = point_index * column_width + 1
            if grid[row][col] == " ":
                grid[row][col] = glyph
            else:
                grid[row][col] = "*"  # collision: series overlap here

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        fraction = (height - 1 - row_index) / (height - 1)
        label = f"{fraction * top * 100:5.1f}% |"
        lines.append(label + "".join(row))
    axis = " " * 6 + " +" + "-" * width
    lines.append(axis)
    ticks = " " * 8
    for value in result.values:
        ticks += f"{value:g}"[:column_width].ljust(column_width)
    lines.append(ticks.rstrip() + f"   ({result.parameter})")
    legend = "  ".join(
        f"{_GLYPHS[index % len(_GLYPHS)]}={name}"
        for index, name in enumerate(names))
    lines.append("legend: " + legend + "   (*=overlap)")
    return "\n".join(lines) + "\n"
