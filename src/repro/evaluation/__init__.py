"""Evaluation: the paper's accuracy metric and experiment harness (§5).

* :mod:`repro.evaluation.subsequence` — the capture relation ``R ⊏ H``
  (contiguous subsequence / substring search over page sequences);
* :mod:`repro.evaluation.metrics` — real accuracy plus extended diagnostics;
* :mod:`repro.evaluation.harness` — run one simulated trial through any set
  of heuristics;
* :mod:`repro.evaluation.experiments` — the paper's literal examples
  (Figure 1, Tables 1/3) and the Figure 8/9/10 parameter sweeps;
* :mod:`repro.evaluation.report` — plain-text and CSV rendering.
"""

from repro.evaluation.experiments import (
    PAPER_DEFAULTS,
    fig8_sweep,
    fig9_sweep,
    fig10_sweep,
    paper_example_topology,
    paper_table1_stream,
    paper_table3_stream,
)
from repro.evaluation.harness import (
    TrialResult,
    run_trial,
    standard_heuristics,
    sweep,
)
from repro.evaluation.leaderboard import (
    LeaderboardRow,
    leaderboard,
    render_leaderboard,
)
from repro.evaluation.metrics import (
    AccuracyReport,
    evaluate_reconstruction,
    real_accuracy,
    session_captured,
)
from repro.evaluation.report import render_csv, render_sweep_table
from repro.evaluation.simcache import cached_simulation, simulation_cache_key
from repro.evaluation.spec import load_spec, run_spec
from repro.evaluation.statistics import SessionStatistics, describe, render_statistics
from repro.evaluation.ascii_chart import render_chart
from repro.evaluation.bootstrap import AccuracyInterval, bootstrap_accuracy
from repro.evaluation.comparison import McNemarResult, compare_heuristics
from repro.evaluation.similarity import (
    SimilarityReport,
    lcs_length,
    session_overlap,
    similarity_report,
)
from repro.evaluation.subsequence import contains, find
from repro.evaluation.svg_chart import render_svg, save_svg
from repro.evaluation.taxonomy import (
    ErrorCategory,
    classify_session,
    error_breakdown,
    render_breakdown,
)

__all__ = [
    "contains",
    "find",
    "session_captured",
    "real_accuracy",
    "evaluate_reconstruction",
    "AccuracyReport",
    "standard_heuristics",
    "run_trial",
    "sweep",
    "TrialResult",
    "PAPER_DEFAULTS",
    "paper_example_topology",
    "paper_table1_stream",
    "paper_table3_stream",
    "fig8_sweep",
    "fig9_sweep",
    "fig10_sweep",
    "render_sweep_table",
    "render_csv",
    "SessionStatistics",
    "describe",
    "render_statistics",
    "render_chart",
    "lcs_length",
    "session_overlap",
    "similarity_report",
    "SimilarityReport",
    "run_spec",
    "load_spec",
    "bootstrap_accuracy",
    "AccuracyInterval",
    "ErrorCategory",
    "classify_session",
    "error_breakdown",
    "render_breakdown",
    "compare_heuristics",
    "McNemarResult",
    "render_svg",
    "save_svg",
    "cached_simulation",
    "simulation_cache_key",
    "leaderboard",
    "render_leaderboard",
    "LeaderboardRow",
]
