"""Descriptive statistics of session sets.

Before comparing heuristics, analysts profile the sessions themselves —
length and duration distributions, page popularity, entry/exit pages.
:func:`describe` computes the profile; :func:`render_statistics` renders it
as the text block the CLI's ``stats`` command prints.  The same numbers
also make the simulator auditable: e.g. mean page-stay time of the ground
truth should match Table 5's 2.2 minutes (asserted in the test suite).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.exceptions import EvaluationError
from repro.sessions.model import SessionSet

__all__ = ["SessionStatistics", "describe", "render_statistics"]


@dataclass(frozen=True, slots=True)
class SessionStatistics:
    """Profile of a session set.

    Attributes:
        session_count: number of sessions.
        user_count: distinct users owning them.
        total_requests: sum of session lengths.
        mean_length / median_length / max_length: session length stats
            (requests per session).
        length_histogram: ``{length: count}``, ascending lengths.
        mean_duration / max_duration: session wall-clock stats, seconds.
        mean_gap: mean inter-request gap across all sessions, seconds
            (the empirical page-stay time).
        distinct_pages: size of the page vocabulary.
        top_pages: most requested pages with counts, descending.
        top_entry_pages: most common first pages with counts, descending.
        page_entropy: Shannon entropy (bits) of the page-visit
            distribution — how spread out the traffic is.
    """

    session_count: int
    user_count: int
    total_requests: int
    mean_length: float
    median_length: float
    max_length: int
    length_histogram: dict[int, int]
    mean_duration: float
    max_duration: float
    mean_gap: float
    distinct_pages: int
    top_pages: list[tuple[str, int]]
    top_entry_pages: list[tuple[str, int]]
    page_entropy: float


def describe(sessions: SessionSet, top: int = 5) -> SessionStatistics:
    """Compute the full profile of ``sessions``.

    Args:
        sessions: the set to profile; must contain at least one non-empty
            session.
        top: how many most-popular pages / entry pages to report.

    Raises:
        EvaluationError: for an empty set or a non-positive ``top``.
    """
    non_empty = [session for session in sessions if session]
    if not non_empty:
        raise EvaluationError("cannot profile an empty session set")
    if top <= 0:
        raise EvaluationError(f"top must be positive, got {top}")

    lengths = sorted(len(session) for session in non_empty)
    total_requests = sum(lengths)
    middle = len(lengths) // 2
    if len(lengths) % 2:
        median = float(lengths[middle])
    else:
        median = (lengths[middle - 1] + lengths[middle]) / 2.0

    durations = [session.duration for session in non_empty]
    gaps = [later.timestamp - earlier.timestamp
            for session in non_empty
            for earlier, later in zip(session.requests,
                                      session.requests[1:])]

    page_counts: Counter[str] = Counter(
        page for session in non_empty for page in session.pages)
    entry_counts: Counter[str] = Counter(
        session.pages[0] for session in non_empty)

    entropy = 0.0
    for count in page_counts.values():
        probability = count / total_requests
        entropy -= probability * math.log2(probability)

    return SessionStatistics(
        session_count=len(non_empty),
        user_count=len({session.user_id for session in non_empty}),
        total_requests=total_requests,
        mean_length=total_requests / len(non_empty),
        median_length=median,
        max_length=lengths[-1],
        length_histogram=dict(sorted(Counter(lengths).items())),
        mean_duration=sum(durations) / len(durations),
        max_duration=max(durations),
        mean_gap=sum(gaps) / len(gaps) if gaps else 0.0,
        distinct_pages=len(page_counts),
        top_pages=page_counts.most_common(top),
        top_entry_pages=entry_counts.most_common(top),
        page_entropy=entropy,
    )


def render_statistics(stats: SessionStatistics) -> str:
    """Render :class:`SessionStatistics` as an aligned text block."""
    lines = [
        f"sessions:        {stats.session_count} "
        f"({stats.user_count} users)",
        f"requests:        {stats.total_requests} over "
        f"{stats.distinct_pages} distinct pages "
        f"(entropy {stats.page_entropy:.2f} bits)",
        f"session length:  mean {stats.mean_length:.2f}, "
        f"median {stats.median_length:g}, max {stats.max_length}",
        f"session duration: mean {stats.mean_duration / 60:.2f} min, "
        f"max {stats.max_duration / 60:.2f} min",
        f"page-stay time:  mean {stats.mean_gap / 60:.2f} min",
        "top pages:       " + ", ".join(
            f"{page} ({count})" for page, count in stats.top_pages),
        "top entry pages: " + ", ".join(
            f"{page} ({count})" for page, count in stats.top_entry_pages),
    ]
    bars = []
    scale = max(stats.length_histogram.values())
    for length, count in list(stats.length_histogram.items())[:12]:
        bar = "#" * max(1, round(20 * count / scale))
        bars.append(f"  {length:>4}: {bar} {count}")
    return "\n".join(lines + ["length histogram:"] + bars) + "\n"
