"""Canonical benchmark datasets.

Downstream work comparing against Smart-SRA needs *fixed* inputs, not
"some random topology with seed 0 on my machine".  This module freezes
three named dataset tiers — topology, ground truth, CLF log, all from
pinned seeds — and writes them as a directory bundle:

====== ======= ======== ==============================================
tier   pages   agents   intended use
====== ======= ======== ==============================================
small  60      200      unit-test-speed experiments, tutorials
medium 300     2,000    Table 5-shaped development runs
large  300     10,000   the paper's full evaluation scale
====== ======= ======== ==============================================

A bundle directory contains ``topology.json``, ``ground_truth.json``,
``access.log`` (plain CLF) and ``access_combined.log`` (with Referer /
User-Agent), plus a ``MANIFEST.json`` recording the exact generation
parameters — enough for an independent implementation to verify it
regenerates the same bytes.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass

from repro.exceptions import ConfigurationError
from repro.logs.users import IdentityAddressMap
from repro.logs.writer import (
    requests_to_records,
    write_clf_file,
    write_combined_file,
)
from repro.simulator.config import SimulationConfig
from repro.simulator.population import SimulationResult, simulate_population
from repro.topology.generators import random_site
from repro.topology.graph import WebGraph
from repro.topology.io import save_graph

__all__ = ["DatasetSpec", "DATASET_TIERS", "build_dataset", "write_dataset"]

_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """Frozen generation parameters for one dataset tier."""

    name: str
    n_pages: int
    avg_out_degree: float
    n_agents: int
    topology_seed: int
    simulation_seed: int
    stp: float = 0.05
    lpp: float = 0.30
    nip: float = 0.30

    def topology(self) -> WebGraph:
        """The tier's pinned topology."""
        return random_site(self.n_pages, self.avg_out_degree,
                           seed=self.topology_seed)

    def simulation_config(self) -> SimulationConfig:
        """The tier's pinned simulation configuration."""
        return SimulationConfig(stp=self.stp, lpp=self.lpp, nip=self.nip,
                                n_agents=self.n_agents,
                                seed=self.simulation_seed)


#: the three frozen tiers.  Seeds are arbitrary but MUST never change —
#: they define the datasets.
DATASET_TIERS: dict[str, DatasetSpec] = {
    "small": DatasetSpec("small", n_pages=60, avg_out_degree=6,
                         n_agents=200, topology_seed=1001,
                         simulation_seed=2001),
    "medium": DatasetSpec("medium", n_pages=300, avg_out_degree=15,
                          n_agents=2_000, topology_seed=1002,
                          simulation_seed=2002),
    "large": DatasetSpec("large", n_pages=300, avg_out_degree=15,
                         n_agents=10_000, topology_seed=1003,
                         simulation_seed=2003),
}


def build_dataset(tier: str) -> tuple[DatasetSpec, WebGraph,
                                      SimulationResult]:
    """Generate a tier in memory.

    Raises:
        ConfigurationError: for an unknown tier name.
    """
    spec = DATASET_TIERS.get(tier)
    if spec is None:
        known = ", ".join(sorted(DATASET_TIERS))
        raise ConfigurationError(
            f"unknown dataset tier {tier!r}; known: {known}")
    topology = spec.topology()
    simulation = simulate_population(topology, spec.simulation_config())
    return spec, topology, simulation


def write_dataset(tier: str, directory: str) -> dict[str, object]:
    """Generate a tier and write the bundle to ``directory``.

    Returns:
        The manifest that was written (also saved as ``MANIFEST.json``).

    Raises:
        ConfigurationError: for an unknown tier.
    """
    spec, topology, simulation = build_dataset(tier)
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    save_graph(topology, str(path / "topology.json"))
    simulation.ground_truth.save(str(path / "ground_truth.json"))
    records = requests_to_records(simulation.log_requests,
                                  IdentityAddressMap())
    clf_lines = write_clf_file(str(path / "access.log"), records)
    write_combined_file(str(path / "access_combined.log"), records)

    manifest: dict[str, object] = {
        "format_version": _FORMAT_VERSION,
        "tier": asdict(spec),
        "statistics": {
            "real_sessions": len(simulation.ground_truth),
            "log_records": clf_lines,
            "cache_hit_rate": round(simulation.cache_hit_rate, 4),
            "pages": topology.page_count,
            "links": topology.edge_count,
        },
        "files": ["topology.json", "ground_truth.json", "access.log",
                  "access_combined.log"],
    }
    with open(path / "MANIFEST.json", "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1)
    return manifest
