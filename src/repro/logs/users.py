"""User identity handling for access logs.

Reactive strategies identify a "user" by the client IP (plus user agent
when logged — plain CLF has no user-agent field, so IP is all we have, and
the paper discusses exactly this weakness: all users behind one proxy share
an IP).

:class:`UserAddressMap` assigns deterministic synthetic IPs to simulated
agent identities.  By default the assignment is one-to-one; a
``proxy_group_size`` greater than one deliberately funnels several agents
through one IP, reproducing the proxy problem for stress experiments.

:func:`partition_by_user` groups cleaned log records into per-user
chronological request streams — the heuristics' unit of work.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.exceptions import LogFormatError
from repro.logs.clf import CLFRecord, url_to_page
from repro.sessions.model import Request

__all__ = ["UserAddressMap", "IdentityAddressMap", "partition_by_user"]


class UserAddressMap:
    """Deterministic agent-identity → synthetic-IP assignment.

    IPs are allocated in the ``10.0.0.0/8`` private block in order of first
    appearance: agent 0 gets ``10.0.0.1``, agent 1 gets ``10.0.0.2``, …
    (the host byte skips ``.0``).  With ``proxy_group_size=k``, agents are
    assigned in groups of ``k`` to one shared IP, modeling a caching proxy
    in front of ``k`` users.

    Args:
        proxy_group_size: number of distinct agents per IP (default 1).

    Raises:
        LogFormatError: for a non-positive group size, or when the address
            block is exhausted (more than ~16.6M distinct IPs requested).
    """

    def __init__(self, proxy_group_size: int = 1) -> None:
        if proxy_group_size <= 0:
            raise LogFormatError(
                f"proxy_group_size must be positive, got {proxy_group_size}")
        self.proxy_group_size = proxy_group_size
        self._ip_by_user: dict[str, str] = {}
        self._users_by_ip: dict[str, list[str]] = {}
        self._next_index = 0

    def ip_for(self, user_id: str) -> str:
        """The IP assigned to ``user_id`` (allocating on first sight)."""
        ip = self._ip_by_user.get(user_id)
        if ip is None:
            ip = self._index_to_ip(self._next_index // self.proxy_group_size)
            self._next_index += 1
            self._ip_by_user[user_id] = ip
            self._users_by_ip.setdefault(ip, []).append(user_id)
        return ip

    def users_for(self, ip: str) -> tuple[str, ...]:
        """All agent identities sharing ``ip`` (empty tuple if unknown)."""
        return tuple(self._users_by_ip.get(ip, ()))

    def __len__(self) -> int:
        return len(self._ip_by_user)

    @staticmethod
    def _index_to_ip(index: int) -> str:
        # Skip host byte 0 within each /24 for cosmetic realism.
        host = index % 254 + 1
        block = index // 254
        low = block % 256
        high = block // 256
        if high > 255:
            raise LogFormatError("synthetic IP block 10.0.0.0/8 exhausted")
        return f"10.{high}.{low}.{host}"


class IdentityAddressMap:
    """Address map that writes the agent identity as the CLF host field.

    CLF's first field may be a hostname rather than an IP, so using the
    simulated agent id directly is format-legal and makes the log round
    trip identity-preserving — ground-truth sessions and reconstructed
    sessions then share user ids without a translation table.  The CLI's
    ``simulate`` command uses this map by default.
    """

    proxy_group_size = 1

    def ip_for(self, user_id: str) -> str:
        """Return ``user_id`` unchanged."""
        return user_id

    def users_for(self, ip: str) -> tuple[str, ...]:
        """Trivially, the host *is* the user."""
        return (ip,)


def partition_by_user(records: Iterable[CLFRecord],
                      page_views_only: bool = True
                      ) -> dict[str, list[Request]]:
    """Group log records into per-user chronological request streams.

    Args:
        records: parsed log records, in any order.
        page_views_only: keep only records passing the classic page-view
            filter (successful GETs); set ``False`` when the caller has
            already cleaned the log.

    Returns:
        ``{ip: [Request, …]}`` with each list sorted by timestamp.  Request
        ``user_id`` is the record's host IP and ``page`` the URL mapped
        through :func:`~repro.logs.clf.url_to_page`.
    """
    streams: dict[str, list[Request]] = {}
    for record in records:
        if page_views_only and not record.is_page_view:
            continue
        streams.setdefault(record.host, []).append(
            Request(record.timestamp, record.host, url_to_page(record.url)))
    for stream in streams.values():
        stream.sort(key=lambda request: request.timestamp)
    return streams


def flatten_streams(streams: dict[str, Sequence[Request]]) -> list[Request]:
    """Merge per-user streams back into one time-sorted request list."""
    merged = [request for stream in streams.values() for request in stream]
    merged.sort(key=lambda request: (request.timestamp, request.user_id))
    return merged
