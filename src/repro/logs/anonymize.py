"""Privacy-preserving log anonymization.

Access logs are personal data: the host field identifies users.  Sharing a
log (or a reproduction dataset) requires anonymizing it *without breaking
session reconstruction*, which only needs a stable per-user pseudonym.
Two standard schemes are provided:

* **pseudonymize** — replace each host with a keyed truncated-SHA256
  pseudonym.  Stable within one key (joins across files work), and without
  the key the mapping is not invertible.
* **truncate** — zero the host bits below a prefix length (the classic
  "drop the last octet" of IPv4 privacy policy).  Coarser: users behind
  the same /24 collapse into one pseudo-user, degrading reconstruction the
  same way a proxy does — measurably, which is why the trade-off matters.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

from repro.exceptions import LogFormatError
from repro.logs.clf import CLFRecord

__all__ = ["pseudonymize_hosts", "truncate_ipv4_hosts"]


def pseudonymize_hosts(records: Iterable[CLFRecord], key: str,
                       label: str = "user") -> list[CLFRecord]:
    """Replace every host with a keyed stable pseudonym.

    Args:
        records: log records (order preserved; other fields untouched).
        key: secret HMAC-style key; the same key yields the same
            pseudonyms, so multi-file joins survive.
        label: pseudonym prefix (``user-3fa2b4c1`` by default).

    Raises:
        LogFormatError: for an empty key (an unkeyed hash is trivially
            re-identifiable by dictionary attack over the IPv4 space).
    """
    if not key:
        raise LogFormatError("anonymization key must be non-empty")
    pseudonyms: dict[str, str] = {}
    result = []
    for record in records:
        pseudonym = pseudonyms.get(record.host)
        if pseudonym is None:
            digest = hashlib.sha256(
                f"{key}:{record.host}".encode("utf-8")).hexdigest()[:8]
            pseudonym = f"{label}-{digest}"
            pseudonyms[record.host] = pseudonym
        result.append(CLFRecord(
            host=pseudonym, timestamp=record.timestamp,
            method=record.method, url=record.url,
            protocol=record.protocol, status=record.status,
            size=record.size, ident=record.ident,
            authuser=record.authuser, referrer=record.referrer,
            user_agent=record.user_agent))
    return result


def truncate_ipv4_hosts(records: Iterable[CLFRecord],
                        keep_octets: int = 3) -> list[CLFRecord]:
    """Zero the low octets of IPv4 hosts (non-IPv4 hosts pass unchanged).

    Args:
        records: log records (order preserved).
        keep_octets: how many leading octets to keep (1-3).

    Raises:
        LogFormatError: for ``keep_octets`` outside 1-3.
    """
    if not 1 <= keep_octets <= 3:
        raise LogFormatError(
            f"keep_octets must be in 1..3, got {keep_octets}")
    result = []
    for record in records:
        parts = record.host.split(".")
        if len(parts) == 4 and all(part.isdigit() for part in parts):
            kept = parts[:keep_octets] + ["0"] * (4 - keep_octets)
            host = ".".join(kept)
        else:
            host = record.host
        result.append(CLFRecord(
            host=host, timestamp=record.timestamp, method=record.method,
            url=record.url, protocol=record.protocol,
            status=record.status, size=record.size, ident=record.ident,
            authuser=record.authuser, referrer=record.referrer,
            user_agent=record.user_agent))
    return result
