"""Common Log Format record model, formatting and parsing.

A CLF line looks like::

    192.168.7.3 - - [04/Jul/2026:10:15:42 +0000] "GET /P13.html HTTP/1.1" 200 5120

carrying the paper's seven attributes: client IP, access date/time, request
method, URL, transfer protocol, status code and bytes transmitted.  The
timestamp is second-granular (like real CLF); simulated sub-second clock
values are floored on write, which is exactly the quantization a real
server would impose.
"""

from __future__ import annotations

import calendar
import re
from dataclasses import dataclass
from datetime import datetime, timezone

from repro.exceptions import LogFormatError

__all__ = [
    "CLFRecord",
    "format_clf_line",
    "parse_clf_line",
    "format_combined_line",
    "parse_combined_line",
    "parse_log_line",
    "page_to_url",
    "url_to_page",
]

#: month abbreviations in CLF dates, index 1-12.
_MONTHS = ("", "Jan", "Feb", "Mar", "Apr", "May", "Jun",
           "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")
_MONTH_NUMBER = {name: number for number, name in enumerate(_MONTHS) if name}

_CLF_BODY = (
    r'^(?P<host>\S+) (?P<ident>\S+) (?P<authuser>\S+) '
    r'\[(?P<day>\d{2})/(?P<month>[A-Za-z]{3})/(?P<year>\d{4}):'
    r'(?P<hour>\d{2}):(?P<minute>\d{2}):(?P<second>\d{2}) '
    r'(?P<tz_sign>[+-])(?P<tz_hours>\d{2})(?P<tz_minutes>\d{2})\] '
    r'"(?P<method>[A-Z]+) (?P<url>\S+) (?P<protocol>[^"]+)" '
    r'(?P<status>\d{3}) (?P<bytes>\d+|-)')

_CLF_PATTERN = re.compile(_CLF_BODY + r'$')
_COMBINED_PATTERN = re.compile(
    _CLF_BODY + r' "(?P<referrer>[^"]*)" "(?P<user_agent>[^"]*)"$')


@dataclass(frozen=True, slots=True)
class CLFRecord:
    """One access-log entry (the paper's seven CLF attributes).

    Attributes:
        host: client IP address.
        timestamp: access time as UTC epoch seconds.
        method: HTTP request method (``GET`` or ``POST`` in the paper).
        url: requested URL path.
        protocol: transfer protocol (``HTTP/1.0`` or ``HTTP/1.1``).
        status: HTTP status code.
        size: bytes transmitted (``None`` renders as CLF's ``-``).
        ident / authuser: the two rarely populated CLF identity fields.
        referrer: Referer header URL (Combined Log Format only; ``None``
            renders as ``"-"`` and means a direct entry).
        user_agent: User-Agent header (Combined Log Format only).
    """

    host: str
    timestamp: float
    method: str
    url: str
    protocol: str
    status: int
    size: int | None
    ident: str = "-"
    authuser: str = "-"
    referrer: str | None = None
    user_agent: str | None = None

    @property
    def is_page_view(self) -> bool:
        """Whether this record plausibly represents a user page view.

        A successful (2xx) GET is the classic page-view filter; everything
        else (POSTs, redirects, errors) is dropped during cleaning.
        """
        return self.method == "GET" and 200 <= self.status < 300


def format_clf_line(record: CLFRecord) -> str:
    """Render ``record`` as one CLF line (no trailing newline).

    The timestamp is floored to whole seconds and rendered in UTC.
    """
    moment = datetime.fromtimestamp(int(record.timestamp), tz=timezone.utc)
    date = (f"{moment.day:02d}/{_MONTHS[moment.month]}/{moment.year:04d}:"
            f"{moment.hour:02d}:{moment.minute:02d}:{moment.second:02d} "
            f"+0000")
    size = "-" if record.size is None else str(record.size)
    return (f"{record.host} {record.ident} {record.authuser} [{date}] "
            f'"{record.method} {record.url} {record.protocol}" '
            f"{record.status} {size}")


def parse_clf_line(line: str, line_number: int | None = None) -> CLFRecord:
    """Parse one CLF line into a :class:`CLFRecord`.

    Args:
        line: the raw log line (trailing newline tolerated).
        line_number: optional 1-based position, attached to errors.

    Raises:
        LogFormatError: if the line does not match CLF, names an impossible
            calendar date, or uses an unknown month abbreviation.
    """
    match = _CLF_PATTERN.match(line.rstrip("\n"))
    if match is None:
        raise LogFormatError("line does not match Common Log Format",
                             line_number=line_number, line=line)
    return _record_from_fields(match.groupdict(), line, line_number)


def format_combined_line(record: CLFRecord) -> str:
    """Render ``record`` as one Combined Log Format line.

    The Combined (a.k.a. NCSA extended) format appends the quoted Referer
    and User-Agent headers after the CLF fields; absent values render as
    ``"-"``.  Embedded double quotes are not supported (real servers
    escape them inconsistently; this writer rejects them outright).

    Raises:
        LogFormatError: if the referrer or user agent contains a double
            quote.
    """
    referrer = record.referrer if record.referrer is not None else "-"
    user_agent = record.user_agent if record.user_agent is not None else "-"
    for label, value in (("referrer", referrer), ("user agent", user_agent)):
        if '"' in value:
            raise LogFormatError(
                f"{label} may not contain a double quote: {value!r}")
    return f'{format_clf_line(record)} "{referrer}" "{user_agent}"'


def parse_combined_line(line: str,
                        line_number: int | None = None) -> CLFRecord:
    """Parse one Combined Log Format line.

    Raises:
        LogFormatError: if the line does not match the combined format.
    """
    match = _COMBINED_PATTERN.match(line.rstrip("\n"))
    if match is None:
        raise LogFormatError(
            "line does not match Combined Log Format",
            line_number=line_number, line=line)
    fields = match.groupdict()
    referrer = fields.pop("referrer")
    user_agent = fields.pop("user_agent")
    record = _record_from_fields(fields, line, line_number)
    return CLFRecord(
        host=record.host, timestamp=record.timestamp, method=record.method,
        url=record.url, protocol=record.protocol, status=record.status,
        size=record.size, ident=record.ident, authuser=record.authuser,
        referrer=None if referrer == "-" else referrer,
        user_agent=None if user_agent == "-" else user_agent,
    )


def parse_log_line(line: str, line_number: int | None = None) -> CLFRecord:
    """Parse a line in either format (combined first, then plain CLF).

    Raises:
        LogFormatError: if the line matches neither format.
    """
    try:
        return parse_combined_line(line, line_number)
    except LogFormatError:
        return parse_clf_line(line, line_number)


def _record_from_fields(fields: dict[str, str], line: str,
                        line_number: int | None) -> CLFRecord:
    """Assemble a record from the regex groups shared by both formats."""
    month = _MONTH_NUMBER.get(fields["month"].capitalize())
    if month is None:
        raise LogFormatError(
            f"unknown month abbreviation {fields['month']!r}",
            line_number=line_number, line=line)
    try:
        moment = datetime(int(fields["year"]), month, int(fields["day"]),
                          int(fields["hour"]), int(fields["minute"]),
                          int(fields["second"]))
    except ValueError as exc:
        raise LogFormatError(f"invalid date/time: {exc}",
                             line_number=line_number, line=line) from exc
    epoch = calendar.timegm(moment.timetuple())
    offset = (int(fields["tz_hours"]) * 3600 + int(fields["tz_minutes"]) * 60)
    if fields["tz_sign"] == "+":
        epoch -= offset
    else:
        epoch += offset
    size = None if fields["bytes"] == "-" else int(fields["bytes"])
    return CLFRecord(
        host=fields["host"],
        timestamp=float(epoch),
        method=fields["method"],
        url=fields["url"],
        protocol=fields["protocol"],
        status=int(fields["status"]),
        size=size,
        ident=fields["ident"],
        authuser=fields["authuser"],
    )


def page_to_url(page: str) -> str:
    """Map a page identifier to its URL path (``"P13"`` → ``"/P13.html"``)."""
    return f"/{page}.html"


def url_to_page(url: str) -> str:
    """Inverse of :func:`page_to_url`; foreign URLs pass through unchanged.

    ``"/P13.html"`` → ``"P13"``; query strings are stripped first, so
    ``"/P13.html?ref=mail"`` also maps to ``"P13"``.  A URL that does not
    follow the convention (e.g. ``"/img/logo.png"``) is returned as-is
    (minus the query string) so cleaning filters can still reason about it.
    """
    path = url.split("?", 1)[0]
    if path.startswith("/") and path.endswith(".html"):
        return path[1:-len(".html")]
    return path
