"""Following a growing access-log file (``tail -f`` for pipelines).

Connects the on-disk world to the streaming reconstructor: a server
appends to ``access.log``; :func:`follow_log` yields each new line's
parsed record as it lands, handling partially written lines (a record is
only emitted once its newline arrives), log rotation (both truncation in
place *and* rename-and-recreate, detected via the file's inode) and
transient read failures (bounded retry with exponential backoff).

Example — live session emission from a growing file::

    pipeline = streaming_smart_sra(topology)
    for record in follow_log("access.log", poll_interval=0.5,
                             idle_timeout=30.0):
        for request in records_to_requests([record]):
            for session in pipeline.feed(request):
                handle(session)
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.exceptions import IngestError, LogFormatError
from repro.logs.clf import CLFRecord, parse_log_line
from repro.logs.ingest import classify_fault
from repro.obs import Registry, get_registry, split_series

__all__ = ["follow_log", "FollowStats"]


@dataclass
class FollowStats:
    """Mutable accounting of one :func:`follow_log` run.

    Pass an instance in and inspect it at any time (the follower updates
    it in place as it yields).  The same counts are always published to
    the follower's metrics registry under the ``follow.*`` catalog, so a
    run's accounting is also visible to anyone holding the registry —
    :meth:`from_registry` rebuilds the aggregate view.

    Attributes:
        lines: completed lines seen (blank ones included).
        parsed: records successfully parsed and yielded.
        blank: whitespace-only lines.
        malformed: lines that failed to parse (skipped or raised).
        rotations: truncations / inode changes handled by restarting.
        retries: transient read failures that were retried.
        torn_tail_discards: partial trailing lines thrown away because
            the file rotated underneath them.
        fault_counts: malformed-line count per fault class, as
            :func:`repro.logs.ingest.classify_fault` buckets them.
    """

    lines: int = 0
    parsed: int = 0
    blank: int = 0
    malformed: int = 0
    rotations: int = 0
    retries: int = 0
    torn_tail_discards: int = 0
    fault_counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_registry(cls, registry: Registry | None = None
                      ) -> "FollowStats":
        """Rebuild the aggregate stats from a registry's ``follow.*``
        counters (the sum over every follower that reported to it).

        Args:
            registry: the registry to read; defaults to the ambient one.
        """
        if registry is None:
            registry = get_registry()
        stats = cls(
            lines=int(registry.value("follow.lines.total")),
            parsed=int(registry.value("follow.lines.parsed")),
            blank=int(registry.value("follow.lines.blank")),
            malformed=int(registry.value("follow.lines.malformed")),
            rotations=int(registry.value("follow.rotations")),
            retries=int(registry.value("follow.retries")),
            torn_tail_discards=int(
                registry.value("follow.torn_tail_discards")),
        )
        for series, value in sorted(
                registry.series("follow.faults").items()):
            fault = split_series(series)[1].get("class", "unknown")
            stats.fault_counts[fault] = int(value)
        return stats


def _read_chunk(path: str, offset: int, *, max_retries: int,
                backoff_base: float, _sleep: Callable[[float], None],
                stats: FollowStats,
                registry: Registry | None = None) -> tuple[str, int]:
    """Read from ``offset`` to EOF, retrying transient failures.

    Raises:
        IngestError: when ``max_retries`` consecutive attempts fail.
    """
    if registry is None:
        registry = get_registry()
    last_error: OSError | None = None
    for attempt in range(max_retries + 1):
        try:
            with open(path, encoding="utf-8", errors="replace") as handle:
                handle.seek(offset)
                chunk = handle.read()
                return chunk, handle.tell()
        except OSError as error:
            last_error = error
            if attempt < max_retries:
                stats.retries += 1
                registry.counter("follow.retries").inc()
                registry.event("follow.retry", path=path, attempt=attempt)
                _sleep(backoff_base * (2 ** attempt))
    raise IngestError(
        f"giving up on {path!r} after {max_retries} retries: {last_error}")


def follow_log(path: str, poll_interval: float = 0.5,
               idle_timeout: float | None = None,
               skip_malformed: bool = True,
               _sleep: Callable[[float], None] = time.sleep,
               *,
               on_malformed: Callable[[LogFormatError], None] | None = None,
               max_retries: int = 5,
               backoff_base: float = 0.05,
               stats: FollowStats | None = None,
               registry: Registry | None = None,
               ) -> Iterator[CLFRecord]:
    """Yield parsed records from ``path`` as the file grows.

    Args:
        path: the log file (may not exist yet; the follower waits).
        poll_interval: seconds between size checks when no data arrives.
        idle_timeout: stop after this many seconds without new data
            (``None`` follows forever — appropriate for daemons only).
        skip_malformed: drop unparsable lines instead of raising; drops
            are always counted in ``stats`` and surfaced via
            ``on_malformed``.
        _sleep: injection point for tests; leave default in production.
        on_malformed: called with each swallowed :class:`LogFormatError`
            when ``skip_malformed`` is ``True``.
        max_retries: transient read failures tolerated per read before
            giving up (exponential backoff between attempts).
        backoff_base: first retry delay in seconds; doubles per attempt.
        stats: optional mutable :class:`FollowStats`, updated in place.
        registry: metrics registry receiving the same accounting as
            ``stats`` under the ``follow.*`` catalog; defaults to the
            ambient :func:`repro.obs.get_registry` (free when disabled).

    Yields:
        One :class:`~repro.logs.clf.CLFRecord` per completed line, in file
        order.  On truncation or rotation (the path now names a different
        inode) the follower restarts from the beginning of the new file;
        a partial line torn by the rotation is discarded and counted.

    Raises:
        LogFormatError: on a malformed line when ``skip_malformed`` is
            ``False``.
        IngestError: when a read keeps failing after ``max_retries``
            backoff retries.
    """
    if stats is None:
        stats = FollowStats()
    if registry is None:
        registry = get_registry()
    m_lines = registry.counter("follow.lines.total")
    m_parsed = registry.counter("follow.lines.parsed")
    m_blank = registry.counter("follow.lines.blank")
    m_malformed = registry.counter("follow.lines.malformed")
    m_bytes = registry.counter("follow.bytes.total")
    offset = 0
    pending = ""
    idle = 0.0
    line_number = 0
    inode: int | None = None
    while True:
        try:
            status = os.stat(path)
            size, current_inode = status.st_size, status.st_ino
        except OSError:
            size, current_inode = 0, None
        rotated = (inode is not None and current_inode is not None
                   and current_inode != inode)
        if size < offset or rotated:    # truncated or replaced: start over
            offset = 0
            line_number = 0
            if pending:
                stats.torn_tail_discards += 1
                registry.counter("follow.torn_tail_discards").inc()
            pending = ""
            stats.rotations += 1
            registry.counter("follow.rotations").inc()
            registry.event("follow.rotation", path=path,
                           kind="rename" if rotated else "truncate")
        if current_inode is not None:
            inode = current_inode
        if size > offset:
            idle = 0.0
            chunk, offset = _read_chunk(
                path, offset, max_retries=max_retries,
                backoff_base=backoff_base, _sleep=_sleep, stats=stats,
                registry=registry)
            m_bytes.inc(len(chunk))
            pending += chunk
            *complete, pending = pending.split("\n")
            for line in complete:
                line_number += 1
                stats.lines += 1
                m_lines.inc()
                if not line.strip():
                    stats.blank += 1
                    m_blank.inc()
                    continue
                try:
                    yield parse_log_line(line, line_number=line_number)
                    stats.parsed += 1
                    m_parsed.inc()
                except LogFormatError as error:
                    stats.malformed += 1
                    m_malformed.inc()
                    fault = classify_fault(line, error)
                    stats.fault_counts[fault] = (
                        stats.fault_counts.get(fault, 0) + 1)
                    registry.counter("follow.faults",
                                     **{"class": fault}).inc()
                    if not skip_malformed:
                        raise
                    if on_malformed is not None:
                        on_malformed(error)
        else:
            if idle_timeout is not None and idle >= idle_timeout:
                return
            _sleep(poll_interval)
            idle += poll_interval
