"""Following a growing access-log file (``tail -f`` for pipelines).

Connects the on-disk world to the streaming reconstructor: a server
appends to ``access.log``; :func:`follow_log` yields each new line's
parsed record as it lands, handling partially written lines (a record is
only emitted once its newline arrives) and log truncation (rotation
resets the read offset).

Example — live session emission from a growing file::

    pipeline = streaming_smart_sra(topology)
    for record in follow_log("access.log", poll_interval=0.5,
                             idle_timeout=30.0):
        for request in records_to_requests([record]):
            for session in pipeline.feed(request):
                handle(session)
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Iterator

from repro.exceptions import LogFormatError
from repro.logs.clf import CLFRecord, parse_log_line

__all__ = ["follow_log"]


def follow_log(path: str, poll_interval: float = 0.5,
               idle_timeout: float | None = None,
               skip_malformed: bool = True,
               _sleep: Callable[[float], None] = time.sleep
               ) -> Iterator[CLFRecord]:
    """Yield parsed records from ``path`` as the file grows.

    Args:
        path: the log file (may not exist yet; the follower waits).
        poll_interval: seconds between size checks when no data arrives.
        idle_timeout: stop after this many seconds without new data
            (``None`` follows forever — appropriate for daemons only).
        skip_malformed: drop unparsable lines instead of raising.
        _sleep: injection point for tests; leave default in production.

    Yields:
        One :class:`~repro.logs.clf.CLFRecord` per completed line, in file
        order.  On truncation (rotation) the follower restarts from the
        beginning of the new file.

    Raises:
        LogFormatError: on a malformed line when ``skip_malformed`` is
            ``False``.
    """
    offset = 0
    pending = ""
    idle = 0.0
    line_number = 0
    while True:
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size < offset:           # truncated / rotated: start over
            offset = 0
            pending = ""
        if size > offset:
            idle = 0.0
            with open(path, encoding="utf-8") as handle:
                handle.seek(offset)
                chunk = handle.read()
                offset = handle.tell()
            pending += chunk
            *complete, pending = pending.split("\n")
            for line in complete:
                line_number += 1
                if not line.strip():
                    continue
                try:
                    yield parse_log_line(line, line_number=line_number)
                except LogFormatError:
                    if not skip_malformed:
                        raise
        else:
            if idle_timeout is not None and idle >= idle_timeout:
                return
            _sleep(poll_interval)
            idle += poll_interval
