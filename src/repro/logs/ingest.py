"""Resilient log ingestion: error policies, accounting and quarantine.

Real access logs carry truncated lines, mojibake, duplicated entries and
rotation tears.  :func:`ingest_lines` is the hardened counterpart of
:func:`repro.logs.reader.iter_clf_lines`: every input line is accounted
for in an :class:`IngestReport` (``parsed + blank + quarantined + dropped
== total_lines``, always), and what happens to a malformed line is decided
by an explicit :class:`ErrorPolicy` rather than a silent boolean:

* ``strict``     — raise the original :class:`LogFormatError` (byte-for-
  byte the same exception, line numbers included, as the legacy reader);
* ``skip``       — drop the line, but *count* it and keep a sample;
* ``quarantine`` — write the raw line verbatim to a quarantine sink for
  later inspection or replay, and keep going;
* ``repair``     — try the repair strategies below first; lines they
  cannot save fall back to quarantine (or a counted drop).

Repair strategies, in order:

1. ``strip-controls`` — remove embedded control bytes (NUL injection from
   encoding faults) and re-parse;
2. ``clf-prefix`` — a line whose Common Log Format body is intact but
   whose combined-format tail is torn or garbled is parsed from the CLF
   prefix alone.

The quarantine format is two lines per entry: a ``#``-prefixed metadata
line (input line number, fault class, parser message) followed by the
offending raw line, verbatim.  Because every fault injector in
:mod:`repro.faults` is seed-deterministic and this module draws no
randomness at all, the same seed yields a byte-identical quarantine file
on every run.
"""

from __future__ import annotations

import enum
import re
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from typing import IO

from repro.exceptions import ConfigurationError, LogFormatError
from repro.logs.clf import (
    _CLF_BODY,
    CLFRecord,
    _record_from_fields,
    parse_log_line,
)
from repro.obs import Registry, get_registry, split_series

__all__ = [
    "ErrorPolicy",
    "IngestReport",
    "IngestResult",
    "ingest_lines",
    "ingest_clf_file",
    "classify_fault",
    "attempt_repair",
    "report_from_registry",
]

#: number of offending lines an :class:`IngestReport` keeps verbatim.
MAX_SAMPLES = 5

#: a quarantine sink: anything with ``write`` (file-like) or a plain list.
QuarantineSink = IO[str] | list[str]

_CLF_PREFIX = re.compile(_CLF_BODY)
_DATE_OPEN = re.compile(r"^\S+ \S+ \S+ \[")


class ErrorPolicy(str, enum.Enum):
    """What :func:`ingest_lines` does with a line that fails to parse."""

    STRICT = "strict"
    SKIP = "skip"
    QUARANTINE = "quarantine"
    REPAIR = "repair"

    @classmethod
    def coerce(cls, value: "ErrorPolicy | str") -> "ErrorPolicy":
        """Accept an enum member or its string value.

        Raises:
            ConfigurationError: for an unknown policy name.
        """
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError as exc:
            known = ", ".join(policy.value for policy in cls)
            raise ConfigurationError(
                f"unknown error policy {value!r} (known: {known})") from exc


@dataclass
class IngestReport:
    """Complete accounting of one ingestion run.

    The invariant every run maintains — and :meth:`reconciles` checks — is
    that the four disjoint outcomes exactly cover the input::

        parsed + blank + quarantined + dropped == total_lines

    ``repaired`` counts the subset of ``parsed`` that only parsed after a
    repair strategy rewrote the line.

    Attributes:
        policy: the error policy the run used.
        total_lines: input lines seen (including blank ones).
        parsed: lines that yielded a record (repaired ones included).
        blank: whitespace-only lines (always tolerated).
        quarantined: malformed lines written to the quarantine sink.
        dropped: malformed lines counted but not preserved.
        repaired: lines rescued by a repair strategy.
        fault_counts: malformed-line count per fault class
            (``truncated`` / ``encoding`` / ``bad-timestamp`` /
            ``garbage``), plus ``repaired:<strategy>`` success counters.
        samples: up to :data:`MAX_SAMPLES` ``(line_number, raw line)``
            pairs of offending input, for error messages and debugging.
    """

    policy: str = ErrorPolicy.STRICT.value
    total_lines: int = 0
    parsed: int = 0
    blank: int = 0
    quarantined: int = 0
    dropped: int = 0
    repaired: int = 0
    fault_counts: dict[str, int] = field(default_factory=dict)
    samples: list[tuple[int, str]] = field(default_factory=list)

    @property
    def malformed(self) -> int:
        """Lines that failed to parse as-is (quarantined + dropped +
        repaired)."""
        return self.quarantined + self.dropped + self.repaired

    def reconciles(self) -> bool:
        """Whether every input line is accounted for exactly once."""
        return (self.parsed + self.blank + self.quarantined + self.dropped
                == self.total_lines)

    def _count(self, fault_class: str) -> None:
        self.fault_counts[fault_class] = (
            self.fault_counts.get(fault_class, 0) + 1)

    def _sample(self, line_number: int, line: str) -> None:
        if len(self.samples) < MAX_SAMPLES:
            self.samples.append((line_number, line))

    def summary(self) -> str:
        """Render the report as an indented human-readable block."""
        lines = [
            f"policy:      {self.policy}",
            f"input lines: {self.total_lines}",
            f"parsed:      {self.parsed}"
            + (f" ({self.repaired} repaired)" if self.repaired else ""),
            f"blank:       {self.blank}",
            f"quarantined: {self.quarantined}",
            f"dropped:     {self.dropped}",
        ]
        if self.fault_counts:
            faults = ", ".join(f"{name}={count}" for name, count
                               in sorted(self.fault_counts.items()))
            lines.append(f"faults:      {faults}")
        status = "ok" if self.reconciles() else "MISMATCH"
        lines.append(f"reconciled:  {status}")
        return "\n".join(lines)


@dataclass(frozen=True)
class IngestResult:
    """Records plus the accounting of the run that produced them."""

    records: list[CLFRecord]
    report: IngestReport


def classify_fault(line: str, error: LogFormatError) -> str:
    """Bucket a malformed line into a coarse fault class.

    Classes: ``encoding`` (embedded control bytes), ``bad-timestamp``
    (matched the format but named an impossible date), ``truncated``
    (a well-formed head that stops mid-record: unbalanced quotes, or an
    opened-but-unclosed ``[date]``), ``garbage`` (everything else).
    """
    stripped = line.rstrip("\r\n")
    if any(ord(ch) < 32 and ch not in "\t" for ch in stripped):
        return "encoding"
    message = str(error)
    if "invalid date/time" in message or "unknown month" in message:
        return "bad-timestamp"
    if stripped.count('"') % 2 == 1:
        return "truncated"
    if _DATE_OPEN.match(stripped) and "]" not in stripped:
        return "truncated"
    return "garbage"


def attempt_repair(line: str, line_number: int | None = None
                   ) -> tuple[CLFRecord, str] | None:
    """Try to recover a record from a malformed line.

    Returns:
        ``(record, strategy)`` on success — ``strategy`` names the repair
        that worked — or ``None`` when no strategy applies.
    """
    cleaned = "".join(ch for ch in line.rstrip("\n")
                      if ord(ch) >= 32 or ch == "\t")
    if cleaned != line.rstrip("\n"):
        try:
            return (parse_log_line(cleaned, line_number=line_number),
                    "strip-controls")
        except LogFormatError:
            pass
    match = _CLF_PREFIX.match(cleaned)
    if match is not None:
        try:
            return (_record_from_fields(match.groupdict(), line,
                                        line_number),
                    "clf-prefix")
        except LogFormatError:
            pass
    return None


def _write_quarantine(sink: QuarantineSink, line_number: int, line: str,
                      fault_class: str, error: LogFormatError) -> None:
    """Append one entry (metadata line + verbatim raw line) to the sink."""
    message = str(error.args[0] if error.args else error).split("\n")[0]
    entry = (f"# line {line_number} fault={fault_class}: {message}\n"
             f"{line.rstrip(chr(10))}\n")
    if isinstance(sink, list):
        sink.append(entry)
    else:
        sink.write(entry)


def ingest_lines(lines: Iterable[str], *,
                 policy: ErrorPolicy | str = ErrorPolicy.STRICT,
                 report: IngestReport | None = None,
                 quarantine: QuarantineSink | None = None,
                 on_malformed: Callable[[LogFormatError], None] | None = None,
                 registry: Registry | None = None,
                 ) -> Iterator[CLFRecord]:
    """Parse log lines lazily under an explicit error policy.

    Args:
        lines: raw log lines (either CLF or combined, per line).
        policy: what to do with malformed lines; see :class:`ErrorPolicy`.
        report: a mutable report filled in as the stream is consumed
            (construct an empty :class:`IngestReport` and pass it in);
            ``None`` keeps counts internally and discards them.
        quarantine: sink for raw offending lines (file-like or list).
            Required by the ``quarantine`` policy; optional under
            ``repair``, where it receives unrepairable lines.
        on_malformed: called with every :class:`LogFormatError` the policy
            swallows (never under ``strict``, which raises instead), after
            the line is counted.  Repaired lines do not trigger it.
        registry: metrics registry updated line by line under the
            ``ingest.*`` catalog (see ``docs/observability.md``); defaults
            to the ambient :func:`repro.obs.get_registry`, a no-op unless
            collection was enabled.  The registry's counters and the
            ``report`` reconcile exactly
            (:func:`report_from_registry`).

    Yields:
        One :class:`~repro.logs.clf.CLFRecord` per successfully parsed
        (or repaired) line, in input order.

    Raises:
        ConfigurationError: for an unknown policy, or ``quarantine``
            policy without a sink.
        LogFormatError: under ``strict``, for the first malformed line —
            the identical exception (line number, raw line) the legacy
            strict reader raises.
    """
    policy = ErrorPolicy.coerce(policy)
    if policy is ErrorPolicy.QUARANTINE and quarantine is None:
        raise ConfigurationError(
            "quarantine policy requires a quarantine sink")
    if report is None:
        report = IngestReport()
    report.policy = policy.value
    if registry is None:
        registry = get_registry()
    return _ingest(lines, policy, report, quarantine, on_malformed,
                   registry)


def _ingest(lines: Iterable[str], policy: ErrorPolicy,
            report: IngestReport, quarantine: QuarantineSink | None,
            on_malformed: Callable[[LogFormatError], None] | None,
            registry: Registry,
            ) -> Iterator[CLFRecord]:
    # Instrument handles are resolved once per run, and the per-line
    # updates sit behind one local bool so a disabled registry costs a
    # single truth test per line on the hot path.
    enabled = registry.enabled
    m_total = registry.counter("ingest.lines.total")
    m_bytes = registry.counter("ingest.bytes.total")
    m_parsed = registry.counter("ingest.lines.parsed")
    m_blank = registry.counter("ingest.lines.blank")
    m_quarantined = registry.counter("ingest.lines.quarantined")
    m_dropped = registry.counter("ingest.lines.dropped")
    m_repaired = registry.counter("ingest.lines.repaired")
    registry.counter("ingest.runs", policy=policy.value).inc()
    for line_number, line in enumerate(lines, start=1):
        report.total_lines += 1
        if enabled:
            m_total.inc()
            m_bytes.inc(len(line))
        if not line.strip():
            report.blank += 1
            m_blank.inc()
            continue
        try:
            yield parse_log_line(line, line_number=line_number)
            report.parsed += 1
            if enabled:
                m_parsed.inc()
            continue
        except LogFormatError as error:
            if policy is ErrorPolicy.STRICT:
                raise
            caught = error
        if policy is ErrorPolicy.REPAIR:
            rescue = attempt_repair(line, line_number)
            if rescue is not None:
                record, strategy = rescue
                report.parsed += 1
                report.repaired += 1
                report._count(f"repaired:{strategy}")
                m_parsed.inc()
                m_repaired.inc()
                registry.counter("ingest.faults",
                                 **{"class": f"repaired:{strategy}"}).inc()
                yield record
                continue
        fault_class = classify_fault(line, caught)
        report._count(fault_class)
        report._sample(line_number, line.rstrip("\n"))
        registry.counter("ingest.faults", **{"class": fault_class}).inc()
        if quarantine is not None and policy in (ErrorPolicy.QUARANTINE,
                                                 ErrorPolicy.REPAIR):
            _write_quarantine(quarantine, line_number, line, fault_class,
                              caught)
            report.quarantined += 1
            m_quarantined.inc()
        else:
            report.dropped += 1
            m_dropped.inc()
        if on_malformed is not None:
            on_malformed(caught)


def report_from_registry(registry: Registry | None = None) -> IngestReport:
    """Rebuild an :class:`IngestReport` from a registry's ``ingest.*``
    counters.

    The ingestion path maintains both accounting systems in lockstep, so
    for any sequence of ingestion runs collected into one registry this
    report's counts equal the field-by-field sum of the per-run reports
    (``samples`` excepted — the registry keeps no raw lines — and
    ``policy``, which is only filled in when every run used the same one).
    In particular :meth:`IngestReport.reconciles` holds whenever it held
    for each individual run.

    Args:
        registry: the registry to read; defaults to the ambient one.
    """
    if registry is None:
        registry = get_registry()
    report = IngestReport(
        total_lines=int(registry.value("ingest.lines.total")),
        parsed=int(registry.value("ingest.lines.parsed")),
        blank=int(registry.value("ingest.lines.blank")),
        quarantined=int(registry.value("ingest.lines.quarantined")),
        dropped=int(registry.value("ingest.lines.dropped")),
        repaired=int(registry.value("ingest.lines.repaired")),
    )
    for series, value in sorted(registry.series("ingest.faults").items()):
        fault_class = split_series(series)[1].get("class", "unknown")
        report.fault_counts[fault_class] = int(value)
    policies = sorted(
        split_series(series)[1].get("policy", "")
        for series in registry.series("ingest.runs"))
    report.policy = (policies[0] if len(set(policies)) == 1 and policies
                     else "mixed")
    return report


def ingest_clf_file(path: str, *,
                    policy: ErrorPolicy | str = ErrorPolicy.STRICT,
                    quarantine_path: str | None = None,
                    registry: Registry | None = None) -> IngestResult:
    """Read a whole log file under an error policy, with full accounting.

    Args:
        path: log file path.
        policy: see :class:`ErrorPolicy`.
        quarantine_path: where raw offending lines are written (created
            even when nothing is quarantined, so downstream tooling can
            rely on its existence).  Required by the ``quarantine``
            policy.
        registry: metrics registry, as :func:`ingest_lines`.

    Raises:
        ConfigurationError: ``quarantine`` policy without a path.
        LogFormatError: under ``strict``, as :func:`ingest_lines`.
    """
    policy = ErrorPolicy.coerce(policy)
    report = IngestReport()
    if quarantine_path is not None:
        with open(path, encoding="utf-8", errors="replace") as handle, \
                open(quarantine_path, "w", encoding="utf-8") as sink:
            records = list(ingest_lines(handle, policy=policy,
                                        report=report, quarantine=sink,
                                        registry=registry))
    else:
        with open(path, encoding="utf-8", errors="replace") as handle:
            records = list(ingest_lines(handle, policy=policy,
                                        report=report, registry=registry))
    return IngestResult(records=records, report=report)
