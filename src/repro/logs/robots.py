"""Behavioral robot detection.

The cleaning pipeline's host-prefix rule (:mod:`repro.logs.cleaning`)
stands in for a user-agent check, but real crawlers routinely spoof their
User-Agent.  The standard fallback is *behavioral*: crawlers request pages
much faster than humans, sweep far more of the site, and fetch
``robots.txt``.  :class:`RobotDetector` scores each host on those signals
and flags the ones that exceed the thresholds — the same idea used by the
classic log-preparation literature (Cooley et al., 1999), and a necessary
guard here because one undetected crawler's "session" pollutes every
downstream pattern.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.logs.clf import CLFRecord

__all__ = ["RobotDetector", "HostBehavior"]

_ROBOTS_TXT = "/robots.txt"


@dataclass(frozen=True, slots=True)
class HostBehavior:
    """Per-host behavioral summary extracted from a log.

    Attributes:
        host: the client host.
        requests: total requests.
        distinct_urls: distinct URLs touched.
        duration: seconds between the host's first and last request.
        mean_gap: mean inter-request gap, seconds (0.0 for single hits).
        fetched_robots_txt: whether the host requested ``/robots.txt``.
    """

    host: str
    requests: int
    distinct_urls: int
    duration: float
    mean_gap: float
    fetched_robots_txt: bool

    @property
    def request_rate(self) -> float:
        """Requests per second over the host's active span (0 if instant)."""
        if self.duration <= 0:
            return 0.0
        return self.requests / self.duration


class RobotDetector:
    """Flag hosts whose behavior looks automated.

    A host is flagged when **any** of these holds:

    * it fetched ``robots.txt`` (polite crawlers self-identify);
    * its mean inter-request gap is below ``min_human_gap`` seconds over at
      least ``min_requests`` requests (humans read pages);
    * it touched at least ``breadth_threshold`` distinct URLs with a mean
      gap under ``breadth_gap`` (site sweeps).

    Args:
        min_human_gap: fastest sustained cadence a human plausibly browses
            at, seconds (default 2s).
        min_requests: minimum sample size before cadence is trusted.
        breadth_threshold: distinct-URL count that marks a sweep.
        breadth_gap: cadence bound for the sweep rule, seconds.

    Raises:
        ConfigurationError: for non-positive thresholds.
    """

    def __init__(self, min_human_gap: float = 2.0, min_requests: int = 10,
                 breadth_threshold: int = 100,
                 breadth_gap: float = 30.0) -> None:
        for label, value in (("min_human_gap", min_human_gap),
                             ("min_requests", min_requests),
                             ("breadth_threshold", breadth_threshold),
                             ("breadth_gap", breadth_gap)):
            if value <= 0:
                raise ConfigurationError(
                    f"{label} must be positive, got {value}")
        self.min_human_gap = min_human_gap
        self.min_requests = min_requests
        self.breadth_threshold = breadth_threshold
        self.breadth_gap = breadth_gap

    def profile(self, records: Iterable[CLFRecord]) -> list[HostBehavior]:
        """Summarize every host's behavior, sorted by descending requests."""
        by_host: dict[str, list[CLFRecord]] = {}
        for record in records:
            by_host.setdefault(record.host, []).append(record)

        profiles = []
        for host, host_records in by_host.items():
            host_records.sort(key=lambda record: record.timestamp)
            times = [record.timestamp for record in host_records]
            gaps = [later - earlier
                    for earlier, later in zip(times, times[1:])]
            profiles.append(HostBehavior(
                host=host,
                requests=len(host_records),
                distinct_urls=len({record.url for record in host_records}),
                duration=times[-1] - times[0],
                mean_gap=sum(gaps) / len(gaps) if gaps else 0.0,
                fetched_robots_txt=any(
                    record.url.split("?", 1)[0] == _ROBOTS_TXT
                    for record in host_records),
            ))
        profiles.sort(key=lambda profile: (-profile.requests, profile.host))
        return profiles

    def is_robot(self, behavior: HostBehavior) -> bool:
        """Apply the three rules to one host profile."""
        if behavior.fetched_robots_txt:
            return True
        if (behavior.requests >= self.min_requests
                and 0 < behavior.mean_gap < self.min_human_gap):
            return True
        if (behavior.distinct_urls >= self.breadth_threshold
                and 0 < behavior.mean_gap < self.breadth_gap):
            return True
        return False

    def detect(self, records: Iterable[CLFRecord]) -> set[str]:
        """Hosts flagged as robots."""
        return {behavior.host for behavior in self.profile(records)
                if self.is_robot(behavior)}

    def filter(self, records: Iterable[CLFRecord]
               ) -> tuple[list[CLFRecord], set[str]]:
        """Drop all records of flagged hosts.

        Returns:
            ``(kept records, flagged hosts)``; input order is preserved.
        """
        materialized = list(records)
        robots = self.detect(materialized)
        kept = [record for record in materialized
                if record.host not in robots]
        return kept, robots
