"""Log cleaning — the filtering half of the paper's data-processing phase.

"In the data processing phase, first, relevant information is filtered from
the logs" (§1).  Real access logs are dominated by records that are not
user page views: embedded resources (images, stylesheets, scripts),
robot/crawler traffic, failed requests and non-GET methods.

:class:`NoiseInjector` adds a realistic mixture of such records to a clean
simulated log (so the pipeline has something to clean), and
:class:`LogCleaner` removes them again, reporting per-rule
:class:`CleaningStats`.  A default-configured cleaner exactly inverts a
default-configured injector — verified property-style in
``tests/property/test_cleaning_roundtrip.py``.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.logs.clf import CLFRecord

__all__ = ["NoiseInjector", "LogCleaner", "CleaningStats"]

#: path suffixes conventionally treated as embedded resources.
RESOURCE_SUFFIXES = (
    ".gif", ".jpg", ".jpeg", ".png", ".ico", ".css", ".js", ".swf",
)

#: user identities conventionally treated as robots.
ROBOT_HOST_PREFIX = "robot-"


@dataclass(frozen=True, slots=True)
class CleaningStats:
    """Counts of records removed by each cleaning rule."""

    kept: int = 0
    dropped_resources: int = 0
    dropped_errors: int = 0
    dropped_methods: int = 0
    dropped_robots: int = 0

    @property
    def dropped_total(self) -> int:
        """Total records removed."""
        return (self.dropped_resources + self.dropped_errors
                + self.dropped_methods + self.dropped_robots)


class LogCleaner:
    """Rule-based page-view filter for access-log records.

    Rules, applied in order per record:

    1. drop hosts with the robot prefix (``robot-*``) — in real pipelines
       this would be a user-agent/robots.txt check;
    2. drop non-GET methods;
    3. drop non-2xx statuses;
    4. drop URLs ending in an embedded-resource suffix.

    Args:
        resource_suffixes: URL suffixes to treat as embedded resources.
        drop_robots / drop_errors / drop_non_get: toggles for the other
            rules.
    """

    def __init__(self, resource_suffixes: Sequence[str] = RESOURCE_SUFFIXES,
                 drop_robots: bool = True, drop_errors: bool = True,
                 drop_non_get: bool = True) -> None:
        self.resource_suffixes = tuple(
            suffix.lower() for suffix in resource_suffixes)
        self.drop_robots = drop_robots
        self.drop_errors = drop_errors
        self.drop_non_get = drop_non_get

    def clean(self, records: Iterable[CLFRecord]
              ) -> tuple[list[CLFRecord], CleaningStats]:
        """Filter ``records``; returns (kept records, statistics)."""
        kept: list[CLFRecord] = []
        dropped_resources = dropped_errors = 0
        dropped_methods = dropped_robots = 0
        for record in records:
            if self.drop_robots and record.host.startswith(ROBOT_HOST_PREFIX):
                dropped_robots += 1
                continue
            if self.drop_non_get and record.method != "GET":
                dropped_methods += 1
                continue
            if self.drop_errors and not 200 <= record.status < 300:
                dropped_errors += 1
                continue
            url = record.url.split("?", 1)[0].lower()
            if url.endswith(self.resource_suffixes):
                dropped_resources += 1
                continue
            kept.append(record)
        stats = CleaningStats(
            kept=len(kept),
            dropped_resources=dropped_resources,
            dropped_errors=dropped_errors,
            dropped_methods=dropped_methods,
            dropped_robots=dropped_robots,
        )
        return kept, stats


@dataclass(slots=True)
class NoiseInjector:
    """Deterministic noise generator for clean simulated logs.

    For each genuine page view it may emit, immediately after it:

    * ``resources_per_page`` embedded-resource requests (images/css/js)
      from the same host;
    * an occasional failed request (404) with probability ``error_rate``;
    * an occasional POST with probability ``post_rate``.

    Independently, robot hosts sweep the site: ``robot_requests`` extra
    records from hosts named ``robot-N`` are interleaved at the end.

    Attributes:
        resources_per_page: embedded resources per page view.
        error_rate: probability of a 404 shadow request per page view.
        post_rate: probability of a POST shadow request per page view.
        robot_requests: total robot records appended.
        seed: RNG seed (noise is reproducible).

    Raises:
        ConfigurationError: for negative counts or rates outside [0, 1].
    """

    resources_per_page: int = 2
    error_rate: float = 0.05
    post_rate: float = 0.02
    robot_requests: int = 50
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.resources_per_page < 0:
            raise ConfigurationError(
                "resources_per_page must be >= 0, got "
                f"{self.resources_per_page}")
        for label, rate in (("error_rate", self.error_rate),
                            ("post_rate", self.post_rate)):
            if not 0 <= rate <= 1:
                raise ConfigurationError(
                    f"{label} must be in [0, 1], got {rate}")
        if self.robot_requests < 0:
            raise ConfigurationError(
                f"robot_requests must be >= 0, got {self.robot_requests}")
        self._rng = random.Random(self.seed)

    def inject(self, records: Sequence[CLFRecord]) -> list[CLFRecord]:
        """Return ``records`` with noise interleaved (input unchanged)."""
        noisy: list[CLFRecord] = []
        suffix_pool = RESOURCE_SUFFIXES
        for record in records:
            noisy.append(record)
            base = record.url.rsplit(".", 1)[0]
            for index in range(self.resources_per_page):
                suffix = suffix_pool[(index + len(base)) % len(suffix_pool)]
                noisy.append(CLFRecord(
                    host=record.host, timestamp=record.timestamp,
                    method="GET", url=f"{base}_asset{index}{suffix}",
                    protocol=record.protocol, status=200, size=256))
            if self._rng.random() < self.error_rate:
                noisy.append(CLFRecord(
                    host=record.host, timestamp=record.timestamp + 1,
                    method="GET", url=f"{base}_missing.html",
                    protocol=record.protocol, status=404, size=None))
            if self._rng.random() < self.post_rate:
                noisy.append(CLFRecord(
                    host=record.host, timestamp=record.timestamp + 1,
                    method="POST", url="/form.html",
                    protocol=record.protocol, status=200, size=64))
        last_time = records[-1].timestamp if records else 0.0
        for index in range(self.robot_requests):
            noisy.append(CLFRecord(
                host=f"{ROBOT_HOST_PREFIX}{index % 3}",
                timestamp=last_time + index,
                method="GET", url=f"/P{index}.html",
                protocol="HTTP/1.0", status=200, size=512))
        return noisy
