"""Reading rotated and compressed access-log sets.

Production servers rotate logs (``access.log``, ``access.log.1``,
``access.log.2.gz`` …); an analysis covering more than a day must stitch
the rotation set back together in chronological order.  This module reads
a whole rotation set — plain or gzip-compressed members, in any naming
scheme — into one time-sorted record list.
"""

from __future__ import annotations

import gzip
import pathlib
import re
from collections.abc import Iterator

from repro.exceptions import LogFormatError
from repro.logs.clf import CLFRecord
from repro.logs.reader import iter_clf_lines

__all__ = ["iter_log_file", "read_rotated_logs", "rotation_order"]

_ROTATION_INDEX = re.compile(r"\.(\d+)(?:\.gz)?$")


def iter_log_file(path: str, *,
                  skip_malformed: bool = False) -> Iterator[CLFRecord]:
    """Lazily parse one log file, transparently handling ``.gz``.

    Raises:
        LogFormatError: for malformed lines when ``skip_malformed`` is
            ``False``.
    """
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as handle:  # type: ignore[operator]
        yield from iter_clf_lines(handle, skip_malformed=skip_malformed)


def rotation_order(paths: list[str]) -> list[str]:
    """Order a rotation set oldest-first.

    Convention: higher rotation indices are older (``access.log.9`` is
    older than ``access.log.1``, which is older than ``access.log``), so
    the result lists indexed members by descending index, then unindexed
    members.
    """
    def key(path: str) -> tuple[int, str]:
        match = _ROTATION_INDEX.search(pathlib.Path(path).name)
        index = int(match.group(1)) if match else -1
        return (-index, path)

    return sorted(paths, key=key)


def read_rotated_logs(paths: list[str], *,
                      skip_malformed: bool = False) -> list[CLFRecord]:
    """Read a whole rotation set into one time-sorted record list.

    Args:
        paths: the rotation members, in any order.
        skip_malformed: silently drop unparsable lines.

    Returns:
        All records, sorted by ``(timestamp, host)`` — rotation boundaries
        never split a user's request stream once sorted.

    Raises:
        LogFormatError: if ``paths`` is empty, or (with
            ``skip_malformed=False``) on the first malformed line.
    """
    if not paths:
        raise LogFormatError("no log files given")
    records: list[CLFRecord] = []
    for path in rotation_order(paths):
        records.extend(iter_log_file(path, skip_malformed=skip_malformed))
    records.sort(key=lambda record: (record.timestamp, record.host))
    return records
