"""Parse access-log files back into records and request streams.

The reader auto-detects the line format: Combined Log Format lines (with
quoted Referer / User-Agent fields) are tried first, plain CLF second, so a
single code path ingests both kinds of files — and mixed files, which real
log rotations do produce.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import LogFormatError
from repro.logs.clf import CLFRecord, parse_log_line, url_to_page
from repro.sessions.model import Request

__all__ = ["read_clf_file", "iter_clf_lines", "records_to_requests"]


def iter_clf_lines(lines: Iterable[str], *,
                   skip_malformed: bool = False) -> Iterator[CLFRecord]:
    """Parse an iterable of log lines lazily (either format, per line).

    Blank lines are always skipped.

    Args:
        lines: raw log lines.
        skip_malformed: when ``True``, silently drop lines that fail to
            parse (real logs contain garbage); when ``False`` (default),
            raise on the first bad line.

    Raises:
        LogFormatError: for a malformed line when ``skip_malformed`` is
            ``False``; the error carries the 1-based line number.
    """
    for line_number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            yield parse_log_line(line, line_number=line_number)
        except LogFormatError:
            if not skip_malformed:
                raise


def read_clf_file(path: str, *,
                  skip_malformed: bool = False) -> list[CLFRecord]:
    """Read and parse a whole access-log file (plain CLF or combined).

    Args:
        path: log file path.
        skip_malformed: see :func:`iter_clf_lines`.

    Raises:
        LogFormatError: as :func:`iter_clf_lines`.
    """
    with open(path, encoding="utf-8") as handle:
        return list(iter_clf_lines(handle, skip_malformed=skip_malformed))


def records_to_requests(records: Iterable[CLFRecord],
                        page_views_only: bool = True) -> list[Request]:
    """Project log records onto the reconstruction-relevant fields.

    The inverse of :func:`repro.logs.writer.requests_to_records` up to user
    identity: the resulting ``user_id`` is the record's IP address.  A
    combined-format referrer survives as the request's ``referrer`` page.

    Args:
        records: parsed records, any order (preserved).
        page_views_only: drop records failing the page-view filter.
    """
    return [
        Request(record.timestamp, record.host, url_to_page(record.url),
                referrer=(url_to_page(record.referrer)
                          if record.referrer is not None else None))
        for record in records
        if not page_views_only or record.is_page_view
    ]
