"""Parse access-log files back into records and request streams.

The reader auto-detects the line format: Combined Log Format lines (with
quoted Referer / User-Agent fields) are tried first, plain CLF second, so a
single code path ingests both kinds of files — and mixed files, which real
log rotations do produce.

These are the *convenience* entry points.  They delegate to
:mod:`repro.logs.ingest`, which adds full error policies (quarantine,
repair) and per-fault accounting; use :func:`repro.logs.ingest.ingest_lines`
directly when you need more than strict-or-skip.  Skipped lines are never
silently lost: pass ``report`` and/or ``on_malformed`` to get an exact
account of every dropped line.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.exceptions import LogFormatError
from repro.logs.clf import CLFRecord, url_to_page
from repro.logs.ingest import ErrorPolicy, IngestReport, ingest_lines
from repro.sessions.model import Request

__all__ = ["read_clf_file", "iter_clf_lines", "iter_requests",
           "records_to_requests"]


def iter_clf_lines(lines: Iterable[str], *,
                   skip_malformed: bool = False,
                   report: IngestReport | None = None,
                   on_malformed: Callable[[LogFormatError], None] | None
                   = None) -> Iterator[CLFRecord]:
    """Parse an iterable of log lines lazily (either format, per line).

    Blank lines are always skipped.

    Args:
        lines: raw log lines.
        skip_malformed: when ``True``, drop lines that fail to parse (real
            logs contain garbage) — every drop is counted in ``report``
            and surfaced through ``on_malformed``, never discarded
            invisibly; when ``False`` (default), raise on the first bad
            line.
        report: optional mutable :class:`~repro.logs.ingest.IngestReport`
            filled in as the stream is consumed (drop counts, fault
            classes, sample offending lines).
        on_malformed: optional callback invoked with each swallowed
            :class:`LogFormatError` when ``skip_malformed`` is ``True``.

    Raises:
        LogFormatError: for a malformed line when ``skip_malformed`` is
            ``False``; the error carries the 1-based line number.
    """
    policy = ErrorPolicy.SKIP if skip_malformed else ErrorPolicy.STRICT
    return ingest_lines(lines, policy=policy, report=report,
                        on_malformed=on_malformed)


def read_clf_file(path: str, *,
                  skip_malformed: bool = False,
                  report: IngestReport | None = None,
                  on_malformed: Callable[[LogFormatError], None] | None
                  = None) -> list[CLFRecord]:
    """Read and parse a whole access-log file (plain CLF or combined).

    Args:
        path: log file path.
        skip_malformed: see :func:`iter_clf_lines`.
        report: see :func:`iter_clf_lines`.
        on_malformed: see :func:`iter_clf_lines`.

    Raises:
        LogFormatError: as :func:`iter_clf_lines`.
    """
    with open(path, encoding="utf-8") as handle:
        return list(iter_clf_lines(handle, skip_malformed=skip_malformed,
                                   report=report, on_malformed=on_malformed))


def records_to_requests(records: Iterable[CLFRecord],
                        page_views_only: bool = True, *,
                        watermark: float | None = None) -> list[Request]:
    """Project log records onto the reconstruction-relevant fields.

    The inverse of :func:`repro.logs.writer.requests_to_records` up to user
    identity: the resulting ``user_id`` is the record's IP address.  A
    combined-format referrer survives as the request's ``referrer`` page.

    Args:
        records: parsed records, any order (preserved).
        page_views_only: drop records failing the page-view filter.
        watermark: optional event-time lower bound the records were
            promised to respect (e.g. the streaming pipeline's flush
            watermark).  A record strictly older than it raises
            :class:`~repro.exceptions.LateEventError`; a record exactly
            *at* the watermark is fine (ties are legal).

    Raises:
        LateEventError: when ``watermark`` is given and a record predates
            it.
    """
    return list(iter_requests(records, page_views_only,
                              watermark=watermark))


def iter_requests(records: Iterable[CLFRecord],
                  page_views_only: bool = True, *,
                  watermark: float | None = None) -> Iterator[Request]:
    """Lazy :func:`records_to_requests`: one request out per record in.

    Composes with :func:`iter_clf_lines` into a fully incremental
    file-to-request pipeline — ``repro stream`` feeds a log this way so
    a live run (a pipe, a growing file) is processed as it arrives
    instead of after a full read.

    Raises:
        LateEventError: as :func:`records_to_requests`.
    """
    from repro.exceptions import LateEventError
    for record in records:
        if watermark is not None and record.timestamp < watermark:
            raise LateEventError(
                f"record from {record.host!r} at t={record.timestamp} "
                f"predates the watermark {watermark}")
        if not page_views_only or record.is_page_view:
            yield Request(record.timestamp, record.host,
                          url_to_page(record.url),
                          referrer=(url_to_page(record.referrer)
                                    if record.referrer is not None else None))
