"""Serialize simulated request streams to CLF access-log files.

The writer is the simulator-side half of the log round trip: it converts
:class:`~repro.sessions.model.Request` streams (what
:func:`~repro.simulator.population.simulate_population` produces) into
:class:`~repro.logs.clf.CLFRecord` lines a real analytics pipeline could
ingest.  Protocol and response-size fields — irrelevant to session
reconstruction but part of CLF — are filled deterministically from the
request content so files are stable across runs.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Sequence

from repro.logs.clf import (
    CLFRecord,
    format_clf_line,
    format_combined_line,
    page_to_url,
)
from repro.logs.users import IdentityAddressMap, UserAddressMap
from repro.sessions.model import Request

__all__ = ["requests_to_records", "write_clf_file", "write_combined_file",
           "USER_AGENT_POOL"]

#: representative browser signatures for the simulated population (era-
#: appropriate for the paper; content is cosmetic, only identity matters).
USER_AGENT_POOL = (
    "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",
    "Mozilla/5.0 (Windows; U; Windows NT 5.1) Gecko/20060111 Firefox/1.5",
    "Mozilla/5.0 (Macintosh; PPC Mac OS X) AppleWebKit/418 Safari/417.9.2",
    "Opera/8.54 (Windows NT 5.1; U; en)",
)


def _stable_hash(text: str) -> int:
    """Process-independent string hash (``hash()`` is salted per process)."""
    return zlib.crc32(text.encode("utf-8"))


def requests_to_records(requests: Iterable[Request],
                        address_map: UserAddressMap | IdentityAddressMap
                        | None = None) -> list[CLFRecord]:
    """Convert a request stream into CLF records.

    Args:
        requests: server-served requests (any order; preserved).
        address_map: agent→IP assignment; a fresh one-to-one map by default.
            Pass a shared map to keep IPs consistent across several calls,
            or one with ``proxy_group_size > 1`` to simulate proxies.

    Returns:
        One successful ``GET`` record per request.  Protocol and User-Agent
        are deterministic functions of the user, size of the page —
        mimicking a real mixed-client population without adding randomness.
        The request's ``referrer`` (when present) is mapped to its URL, so
        the records are ready for either log format.
    """
    if address_map is None:
        address_map = UserAddressMap()
    records = []
    for request in requests:
        user_hash = _stable_hash(request.user_id)
        protocol = "HTTP/1.1" if user_hash % 4 else "HTTP/1.0"
        size = 1024 + _stable_hash(request.page) % 65536
        referrer = (page_to_url(request.referrer)
                    if request.referrer is not None else None)
        records.append(CLFRecord(
            host=address_map.ip_for(request.user_id),
            timestamp=request.timestamp,
            method="GET",
            url=page_to_url(request.page),
            protocol=protocol,
            status=200,
            size=size,
            referrer=referrer,
            user_agent=USER_AGENT_POOL[user_hash % len(USER_AGENT_POOL)],
        ))
    return records


def write_clf_file(path: str, records: Sequence[CLFRecord]) -> int:
    """Write ``records`` to ``path`` as plain CLF lines.

    Referrer and user-agent fields are silently omitted — this is exactly
    the information loss the paper's reactive setting assumes.

    Returns:
        The number of lines written.
    """
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(format_clf_line(record))
            handle.write("\n")
    return len(records)


def write_combined_file(path: str, records: Sequence[CLFRecord]) -> int:
    """Write ``records`` to ``path`` in Combined Log Format.

    Returns:
        The number of lines written.
    """
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(format_combined_line(record))
            handle.write("\n")
    return len(records)
