"""Web server access-log substrate (Common Log Format).

The paper's data-processing pipeline starts from a server access log in
Common Log Format (CLF): one line per request with seven attributes (client
IP, date/time, method, URL, protocol, status, bytes).  Session
reconstruction needs only IP, timestamp and URL; everything else is
filtered out during cleaning.

This package provides the full round trip:

* :mod:`repro.logs.clf` — the :class:`~repro.logs.clf.CLFRecord` model and
  its line format/parse functions;
* :mod:`repro.logs.writer` — serialize simulated request streams to CLF
  files, with deterministic agent→IP assignment;
* :mod:`repro.logs.reader` — parse CLF files back into records;
* :mod:`repro.logs.ingest` — resilient ingestion: error policies
  (strict / skip / quarantine / repair), per-fault accounting and
  quarantine sinks for degraded real-world logs;
* :mod:`repro.logs.cleaning` — noise injection (embedded resources, errors,
  robots) and the filtering pipeline that removes it;
* :mod:`repro.logs.users` — partition cleaned records into per-user request
  streams ready for the heuristics.
"""

from repro.logs.clf import (
    CLFRecord,
    format_clf_line,
    format_combined_line,
    page_to_url,
    parse_clf_line,
    parse_combined_line,
    parse_log_line,
    url_to_page,
)
from repro.logs.anonymize import pseudonymize_hosts, truncate_ipv4_hosts
from repro.logs.cleaning import CleaningStats, LogCleaner, NoiseInjector
from repro.logs.ingest import (
    ErrorPolicy,
    IngestReport,
    IngestResult,
    ingest_clf_file,
    ingest_lines,
    report_from_registry,
)
from repro.logs.reader import iter_clf_lines, read_clf_file, records_to_requests
from repro.logs.robots import HostBehavior, RobotDetector
from repro.logs.rotation import iter_log_file, read_rotated_logs, rotation_order
from repro.logs.stream import FollowStats, follow_log
from repro.logs.users import IdentityAddressMap, UserAddressMap, partition_by_user
from repro.logs.writer import requests_to_records, write_clf_file, write_combined_file

__all__ = [
    "CLFRecord",
    "format_clf_line",
    "parse_clf_line",
    "format_combined_line",
    "parse_combined_line",
    "parse_log_line",
    "page_to_url",
    "url_to_page",
    "write_clf_file",
    "write_combined_file",
    "requests_to_records",
    "read_clf_file",
    "iter_clf_lines",
    "records_to_requests",
    "ErrorPolicy",
    "IngestReport",
    "IngestResult",
    "ingest_lines",
    "ingest_clf_file",
    "report_from_registry",
    "LogCleaner",
    "NoiseInjector",
    "CleaningStats",
    "UserAddressMap",
    "IdentityAddressMap",
    "partition_by_user",
    "RobotDetector",
    "HostBehavior",
    "read_rotated_logs",
    "iter_log_file",
    "rotation_order",
    "pseudonymize_hosts",
    "truncate_ipv4_hosts",
    "follow_log",
    "FollowStats",
]
