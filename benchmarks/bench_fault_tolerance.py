"""Extension A16 — fault tolerance: accuracy and cost under dirty logs.

Two questions the resilient ingestion layer must answer with numbers:

1. **Accuracy vs fault rate** — corrupt a simulated log with each fault
   model of :mod:`repro.faults` at increasing rates, ingest under the
   ``quarantine`` policy, reconstruct with Smart-SRA and score against the
   simulator's ground truth.  Faults that destroy lines (truncate, garble,
   rotation-split) cost sessions roughly in proportion to the lines lost;
   faults that keep lines parsable (clock-skew, duplicate, bot) degrade
   more subtly or not at all.
2. **Throughput overhead per error policy** — the price of accounting:
   line throughput of ``skip`` / ``quarantine`` / ``repair`` over a 5 %
   all-models chaos stream, against ``strict`` over the clean stream.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import BENCH_SEED, emit
from repro.core.smart_sra import SmartSRA
from repro.evaluation.experiments import PAPER_DEFAULTS, paper_topology
from repro.evaluation.metrics import real_accuracy
from repro.faults import FAULT_MODELS, chaos_stream
from repro.logs.clf import format_clf_line
from repro.logs.ingest import IngestReport, ingest_lines
from repro.logs.reader import records_to_requests
from repro.logs.users import IdentityAddressMap
from repro.logs.writer import requests_to_records
from repro.simulator.population import simulate_population

_AGENTS = 300
_RATES = (0.02, 0.05, 0.10)


@pytest.fixture(scope="module")
def workload():
    topology = paper_topology(seed=BENCH_SEED)
    config = PAPER_DEFAULTS.simulation_config(n_agents=_AGENTS,
                                              seed=BENCH_SEED)
    simulation = simulate_population(topology, config)
    records = requests_to_records(simulation.log_requests,
                                  IdentityAddressMap())
    lines = [format_clf_line(record) for record in records]
    return topology, simulation.ground_truth, lines


def _score(topology, ground_truth, lines):
    """Quarantine-ingest ``lines``, reconstruct, score — never raises."""
    report = IngestReport()
    records = list(ingest_lines(lines, policy="quarantine",
                                report=report, quarantine=[]))
    assert report.reconciles()
    requests = sorted(records_to_requests(records))
    sessions = SmartSRA(topology).reconstruct(requests)
    return real_accuracy(ground_truth, sessions), report


def test_accuracy_vs_fault_rate(workload, results_dir):
    topology, ground_truth, lines = workload
    baseline, _ = _score(topology, ground_truth, lines)
    assert baseline > 0.5

    rows = [f"  {'model':<15}" + "".join(f"{r:>9.0%}" for r in _RATES)]
    for name in sorted(FAULT_MODELS):
        cells = []
        for rate in _RATES:
            dirty = list(FAULT_MODELS[name](rate, seed=BENCH_SEED)
                         .apply(lines))
            accuracy, report = _score(topology, ground_truth, dirty)
            assert accuracy <= baseline + 0.02, (name, rate)
            cells.append(f"{accuracy:>9.3f}")
        rows.append(f"  {name:<15}" + "".join(cells))

    emit(results_dir, "fault_tolerance_accuracy",
         f"Extension A16 — Smart-SRA accuracy vs fault rate "
         f"[{_AGENTS} agents, quarantine policy]\n"
         f"  clean-log baseline: {baseline:.3f}\n"
         + "\n".join(rows) + "\n")


def test_policy_throughput_overhead(workload, results_dir):
    _, _, lines = workload
    specs = [(name, 0.05) for name in sorted(FAULT_MODELS)]
    dirty = list(chaos_stream(lines, specs=specs, seed=BENCH_SEED))

    def best_of(stream, policy, repeats=3):
        elapsed = []
        for _ in range(repeats):
            start = time.perf_counter()
            report = IngestReport()
            for _record in ingest_lines(stream, policy=policy,
                                        report=report, quarantine=[]):
                pass
            elapsed.append(time.perf_counter() - start)
            assert report.reconciles()
        return len(stream) / min(elapsed)

    strict_clean = best_of(lines, "strict")
    rows = [f"  {'policy':<12}{'lines/s':>12}{'vs strict':>12}",
            f"  {'strict*':<12}{strict_clean:>12,.0f}{'1.00x':>12}"]
    for policy in ("skip", "quarantine", "repair"):
        throughput = best_of(dirty, policy)
        rows.append(f"  {policy:<12}{throughput:>12,.0f}"
                    f"{throughput / strict_clean:>11.2f}x")

    emit(results_dir, "fault_tolerance_throughput",
         f"Extension A16 — ingestion throughput per error policy "
         f"[{len(dirty)} dirty lines, 5% all-models chaos]\n"
         "  (*strict measured on the clean stream — it raises on dirty)\n"
         + "\n".join(rows) + "\n")
